"""An interactive-style CBIR session: query, iterate feedback, accumulate log.

This example mirrors how the paper's CBIR system is actually used (and how
its feedback log was collected): a user issues a query, judges the returned
images round after round, and every round is recorded into the log database
— so the system gets better for *future* users as the log grows.

The "user" here is simulated from category ground truth with a little noise,
exactly like :mod:`repro.logdb.simulation` does for the log campaign.

Run with::

    python examples/interactive_retrieval_session.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CBIREngine,
    CorelDatasetConfig,
    ImageDatabase,
    LogSimulationConfig,
    SimulatedUser,
    build_corel_dataset,
    collect_feedback_log,
)
from repro.datasets.splits import relevance_ground_truth

NUM_ROUNDS = 3
TOP_K = 15


def precision(result, relevant) -> float:
    return float(np.mean(relevant[result.image_indices[:TOP_K]]))


def main() -> None:
    print("Building the corpus, features and an initial feedback log ...")
    dataset = build_corel_dataset(
        CorelDatasetConfig(num_categories=10, images_per_category=25, image_size=40, seed=19)
    )
    log = collect_feedback_log(
        dataset, LogSimulationConfig(num_sessions=50, images_per_session=15, seed=20)
    )
    database = ImageDatabase(dataset, log_database=log)

    # The engine refines with the paper's LRF-CSVM and records every round.
    engine = CBIREngine(database, algorithm="lrf-csvm", record_log=True)
    user = SimulatedUser(dataset, noise_rate=0.05, random_state=21)

    query_index = int(dataset.indices_of_category(3)[0])
    relevant = relevance_ground_truth(dataset, query_index)
    print(f"\nQuery: image {query_index} "
          f"(category '{dataset.category_name_of(query_index)}')")

    sessions_before = database.log_database.num_sessions
    result = engine.start_query(query_index, top_k=TOP_K)
    print(f"  round 0 (no learning)     P@{TOP_K} = {precision(result, relevant):.2f}")

    judged: set[int] = set()
    for round_index in range(1, NUM_ROUNDS + 1):
        # The user judges the newly shown images (skipping ones already judged).
        to_judge = [int(i) for i in result.image_indices if int(i) not in judged][:TOP_K]
        judgements = user.judge(query_index, to_judge)
        judged.update(judgements)
        result = engine.feedback(judgements, top_k=database.num_images)
        print(f"  round {round_index} (LRF-CSVM)        P@{TOP_K} = {precision(result, relevant):.2f} "
              f"({len(judged)} images judged so far)")

    recorded = database.log_database.num_sessions - sessions_before
    print(f"\nThe log database grew by {recorded} sessions during this query "
          f"(now {database.log_database.num_sessions} total) — future queries benefit from them.")


if __name__ == "__main__":
    main()
