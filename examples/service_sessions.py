"""Concurrent feedback sessions through the retrieval service.

This example shows the session-oriented API that replaced driving
:class:`CBIREngine` objects directly: several simulated users open sessions
against one shared database (their first-round searches are served by a
single micro-batched index pass), interleave feedback rounds, persist one
session to disk mid-flight and resume it in a "fresh process", and finally
close their sessions — which is the moment their rounds join the shared
feedback log and start helping future users.

Run with::

    python examples/service_sessions.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import (
    CorelDatasetConfig,
    FeedbackRequest,
    FileSessionStore,
    ImageDatabase,
    RetrievalService,
    SearchRequest,
    build_corel_dataset,
    collect_feedback_log,
)
from repro.datasets.splits import relevance_ground_truth

NUM_USERS = 6
TOP_K = 15
NUM_ROUNDS = 2


def judge(dataset, query_index, image_indices):
    relevant = relevance_ground_truth(dataset, int(query_index))
    return {int(i): (1 if relevant[int(i)] else -1) for i in image_indices}


def precision(indices, relevant) -> float:
    return float(np.mean(relevant[indices[:TOP_K]]))


def main() -> None:
    print("Building the corpus, features and an initial feedback log ...")
    dataset = build_corel_dataset(
        CorelDatasetConfig(num_categories=10, images_per_category=15, seed=11)
    )
    log = collect_feedback_log(dataset)
    database = ImageDatabase(dataset, log_database=log)

    service = RetrievalService(
        database, default_algorithm="lrf-csvm", log_policy="on_close"
    )

    # ---- a wave of users opens sessions: ONE batched first-round search --
    queries = [user * 15 for user in range(NUM_USERS)]  # one per category
    responses = service.open_sessions(
        [SearchRequest(query=q, top_k=TOP_K) for q in queries]
    )
    print(f"\nOpened {len(responses)} sessions "
          f"({service.scheduler.searches_served_} searches in "
          f"{service.scheduler.flushes_} flush)")

    # ---- interleaved feedback rounds ------------------------------------
    current = responses
    for round_number in range(1, NUM_ROUNDS + 1):
        requests = [
            FeedbackRequest(
                session_id=r.session_id,
                judgements=judge(dataset, q, r.image_indices),
                top_k=TOP_K,
            )
            for q, r in zip(queries, current)
        ]
        current = service.submit_feedback_batch(requests)
        mean_precision = np.mean([
            precision(r.image_indices, relevance_ground_truth(dataset, q))
            for q, r in zip(queries, current)
        ])
        print(f"round {round_number}: mean precision@{TOP_K} = {mean_precision:.3f}")

    # ---- persist one session, resume it in a "fresh process" ------------
    with tempfile.TemporaryDirectory() as tmp:
        store = FileSessionStore(tmp)
        keeper = service.store.get(current[0].session_id)
        store.put(keeper)
        resumed_service = RetrievalService(
            database, store=FileSessionStore(tmp), log_policy="off"
        )
        extra = resumed_service.submit_feedback(
            keeper.session_id,
            judge(dataset, queries[0], current[0].image_indices[:5]),
        )
        print(f"\nResumed session {keeper.session_id} from disk: "
              f"round {extra.round_index} ranked {len(extra.image_indices)} images")

    # ---- closing is what grows the shared log ---------------------------
    before = database.log_database.num_sessions
    service.close_sessions([r.session_id for r in responses])
    grown = database.log_database.num_sessions - before
    print(f"\nClosed {NUM_USERS} sessions; the shared log grew by {grown} "
          f"log sessions (now {database.log_database.num_sessions}).")


if __name__ == "__main__":
    main()
