"""Quickstart: build a corpus, run a feedback round with every scheme.

This example walks through the full public API in a couple of minutes:

1. render a small synthetic COREL-like corpus and extract the 36-d features;
2. simulate a user-feedback log (the long-term resource the paper exploits);
3. run one relevance-feedback round for a query with each of the paper's
   four retrieval schemes and compare their top-20 precision.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    CorelDatasetConfig,
    EuclideanFeedback,
    FeedbackContext,
    ImageDatabase,
    LRF2SVMs,
    LRFCSVM,
    LogSimulationConfig,
    Query,
    RFSVM,
    SearchEngine,
    build_corel_dataset,
    collect_feedback_log,
)
from repro.datasets.splits import relevance_ground_truth, relevance_labels


def main() -> None:
    # 1. A small 10-category corpus (the paper uses 20 and 50 categories of
    #    100 images each; this quickstart keeps it to ~1 minute of CPU).
    print("Rendering the synthetic corpus and extracting features ...")
    dataset = build_corel_dataset(
        CorelDatasetConfig(num_categories=10, images_per_category=25, image_size=40, seed=7)
    )
    print(f"  {dataset.num_images} images, {dataset.num_categories} categories, "
          f"{dataset.features.shape[1]}-d features")

    # 2. Simulate the user-feedback log: 60 historical feedback sessions.
    print("Simulating the user-feedback log ...")
    log = collect_feedback_log(
        dataset, LogSimulationConfig(num_sessions=60, images_per_session=15, seed=11)
    )
    print(f"  {log.num_sessions} sessions, {log.statistics()['num_judgements']:.0f} judgements, "
          f"coverage {log.coverage():.0%}")

    database = ImageDatabase(dataset, log_database=log)

    # 3. One relevance-feedback round for a query image.
    query_index = 0
    query = Query(query_index=query_index)
    search = SearchEngine(database)
    initial = search.search(query, top_k=15)
    labels = relevance_labels(dataset, query_index, initial.image_indices)
    if np.unique(labels).size < 2:
        labels[-1] = -labels[-1]
    context = FeedbackContext(
        database=database,
        query=query,
        labeled_indices=initial.image_indices,
        labels=labels,
    )
    relevant = relevance_ground_truth(dataset, query_index)

    schemes = {
        "Euclidean (no learning)": EuclideanFeedback(),
        "RF-SVM (visual only)": RFSVM(C=10.0),
        "LRF-2SVMs (visual + log, independent)": LRF2SVMs(),
        "LRF-CSVM (coupled SVM, the paper)": LRFCSVM(num_unlabeled=16, random_state=3),
    }

    print(f"\nQuery image {query_index} (category '{dataset.category_name_of(query_index)}'), "
          "precision of the top-20 after one feedback round:")
    for name, scheme in schemes.items():
        ranking = scheme.rank(context, top_k=20)
        precision = float(np.mean(relevant[ranking.image_indices]))
        print(f"  {name:<42} P@20 = {precision:.2f}")


if __name__ == "__main__":
    main()
