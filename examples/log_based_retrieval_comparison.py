"""Compare all four retrieval schemes over many queries (a mini Table 1).

This example runs the paper's evaluation protocol — the same one the
benchmark harness and ``python -m repro.experiments.corel20`` use — at a
small scale and prints the Table-1-style comparison with improvement
percentages over the RF-SVM baseline, plus the Figure-3-style series.

Run with::

    python examples/log_based_retrieval_comparison.py
"""

from __future__ import annotations

from repro import render_improvement_table, render_series
from repro.datasets.corel import CorelDatasetConfig
from repro.evaluation.protocol import ProtocolConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.pipeline import run_paper_experiment
from repro.logdb.simulation import LogSimulationConfig


def main() -> None:
    config = ExperimentConfig(
        dataset=CorelDatasetConfig(
            num_categories=15, images_per_category=30, image_size=44, seed=5
        ),
        log=LogSimulationConfig(num_sessions=75, images_per_session=20, seed=6),
        protocol=ProtocolConfig(num_queries=20, num_labeled=20, cutoffs=(20, 40, 60, 80, 100), seed=7),
        num_unlabeled=20,
    )
    print(
        f"Evaluating {len(config.algorithms)} schemes on "
        f"{config.dataset.total_images} images, {config.log.num_sessions} log sessions, "
        f"{config.protocol.num_queries} queries ...\n"
    )
    table = run_paper_experiment(config, show_progress=True)

    print()
    print(render_improvement_table(table, title="Mini Table 1 — average precision by scheme"))
    print()
    print(render_series(table, title="Mini Figure 3 — AP vs. number of images returned"))
    print()
    improvement = table.improvement_over_baseline("lrf-csvm")
    print(f"LRF-CSVM improves MAP over RF-SVM by {improvement:+.1%} on this workload.")


if __name__ == "__main__":
    main()
