"""Thread-pool serving: many client threads, one thread-safe service.

This demo drives one shared :class:`RetrievalService` from several client
threads at once — the scenario the service's lock discipline exists for:
striped per-session locks let disjoint sessions proceed in parallel, the
shared log database takes atomic appends from every closing session, and a
``scheduler="parallel"`` service additionally fans each wave's feedback
solves across its own worker pool.  At the end it prints the measured
throughput of the threaded run against a serial one-session-at-a-time
baseline, and verifies the rankings agree ranking-for-ranking.

Compare with ``examples/service_sessions.py`` (single-threaded waves) and
the tracked benchmark artifact ``BENCH_parallel.json`` (the 100k-pool
version of this measurement, asserted in CI).

Run with::

    python examples/parallel_service.py
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np

from repro import (
    CorelDatasetConfig,
    FeedbackRequest,
    ImageDatabase,
    RetrievalService,
    SearchRequest,
    build_corel_dataset,
    collect_feedback_log,
)
from repro.datasets.splits import relevance_ground_truth

NUM_CLIENT_THREADS = 8
SESSIONS_PER_THREAD = 4
NUM_ROUNDS = 2
TOP_K = 15


def judge(dataset, query_index, image_indices):
    relevant = relevance_ground_truth(dataset, int(query_index))
    return {int(i): (1 if relevant[int(i)] else -1) for i in image_indices}


def drive_session(service, dataset, query_index):
    """One complete session: open → feedback rounds → close."""
    response = service.open_session(SearchRequest(query=query_index, top_k=TOP_K))
    rankings = [np.asarray(response.image_indices)]
    for _ in range(NUM_ROUNDS):
        response = service.submit_feedback(
            FeedbackRequest(
                session_id=response.session_id,
                judgements=judge(dataset, query_index, response.image_indices),
                top_k=TOP_K,
            )
        )
        rankings.append(np.asarray(response.image_indices))
    service.close_session(response.session_id)
    return rankings


def main() -> None:
    print("Building the corpus, features and an initial feedback log ...")
    dataset = build_corel_dataset(
        CorelDatasetConfig(num_categories=10, images_per_category=15, seed=11)
    )
    queries = [
        (thread * SESSIONS_PER_THREAD + s) * 3 % dataset.num_images
        for thread in range(NUM_CLIENT_THREADS)
        for s in range(SESSIONS_PER_THREAD)
    ]
    total_sessions = len(queries)

    # ---- serial baseline: one session at a time --------------------------
    database = ImageDatabase(dataset, log_database=collect_feedback_log(dataset))
    serial_service = RetrievalService(database, default_algorithm="rf-svm")
    start = time.perf_counter()
    serial_rankings = [drive_session(serial_service, dataset, q) for q in queries]
    serial_seconds = time.perf_counter() - start

    # ---- threaded run: 8 client threads, one parallel-scheduler service --
    database = ImageDatabase(dataset, log_database=collect_feedback_log(dataset))
    service = RetrievalService(
        database, default_algorithm="rf-svm", scheduler="parallel"
    )
    threaded_rankings = {}
    barrier = threading.Barrier(NUM_CLIENT_THREADS)

    def client(thread_index: int) -> None:
        barrier.wait()
        for s in range(SESSIONS_PER_THREAD):
            serial = thread_index * SESSIONS_PER_THREAD + s
            threaded_rankings[serial] = drive_session(
                service, dataset, queries[serial]
            )

    threads = [
        threading.Thread(target=client, args=(i,))
        for i in range(NUM_CLIENT_THREADS)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    threaded_seconds = time.perf_counter() - start
    service.shutdown()

    # ---- the concurrency guarantee: same rankings, session for session ---
    for serial, rankings in enumerate(serial_rankings):
        for expected, threaded in zip(rankings, threaded_rankings[serial]):
            np.testing.assert_array_equal(expected, threaded)

    grown = database.log_database.num_sessions
    print(
        f"\n{total_sessions} sessions x {NUM_ROUNDS} rounds, "
        f"{NUM_CLIENT_THREADS} client threads:"
    )
    print(
        f"  serial    {serial_seconds:6.2f}s "
        f"({total_sessions / serial_seconds:5.2f} sessions/sec)"
    )
    print(
        f"  threaded  {threaded_seconds:6.2f}s "
        f"({total_sessions / threaded_seconds:5.2f} sessions/sec, "
        f"{serial_seconds / threaded_seconds:.2f}x)"
    )
    print(
        f"  rankings bit-identical to the serial run; "
        f"log grew to {grown} sessions with no lost records"
    )
    if (os.cpu_count() or 1) < 2:
        print(
            "  (single-core host: threading only adds overhead here — the "
            "fan-out wins on multi-core,\n   and wave-based batch calls win "
            "everywhere; see BENCH_parallel.json)"
        )
    else:
        print(
            "\n(The 100k-pool version of this measurement is tracked in "
            "BENCH_parallel.json.)"
        )


if __name__ == "__main__":
    main()
