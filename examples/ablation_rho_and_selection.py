"""Ablations: the ρ annealing threshold and the unlabeled-selection strategy.

Section 6.5 of the paper singles out two design choices of LRF-CSVM:

* the regularisation weight ρ of the unlabeled (transductive) samples, whose
  optimal value the paper leaves as an open question;
* the strategy for picking the unlabeled samples, where the intuitive
  active-learning choice (samples near the decision boundary) turned out to
  be unhelpful.

This example reproduces both studies on a small workload.

Run with::

    python examples/ablation_rho_and_selection.py
"""

from __future__ import annotations

from repro.datasets.corel import CorelDatasetConfig
from repro.evaluation.protocol import ProtocolConfig
from repro.experiments.ablations import run_rho_ablation, run_selection_ablation
from repro.experiments.config import ExperimentConfig
from repro.experiments.pipeline import build_environment
from repro.logdb.simulation import LogSimulationConfig


def main() -> None:
    config = ExperimentConfig(
        dataset=CorelDatasetConfig(
            num_categories=10, images_per_category=25, image_size=40, seed=13
        ),
        log=LogSimulationConfig(num_sessions=60, images_per_session=15, seed=14),
        protocol=ProtocolConfig(num_queries=12, num_labeled=15, cutoffs=(15, 30, 60), seed=15),
        num_unlabeled=16,
        algorithms=("lrf-csvm",),
    )

    print("Building the shared environment (corpus + features + log) ...")
    environment = build_environment(config)

    print("\nAblation 1 — unlabeled-data weight rho:")
    rho_result = run_rho_ablation(
        config, rho_values=(0.01, 0.02, 0.05, 0.1, 0.25), environment=environment
    )
    for row in rho_result.as_rows():
        print(f"  rho = {row['rho']:<5}  MAP = {row['map']:.3f}")
    print(f"  -> best rho on this workload: {rho_result.best_value()}")

    print("\nAblation 2 — unlabeled-sample selection strategy:")
    selection_result = run_selection_ablation(
        config, strategies=("near-labeled", "boundary", "random"), environment=environment
    )
    for strategy, score in zip(selection_result.values, selection_result.map_scores):
        print(f"  {strategy:<13}  MAP = {score:.3f}")
    print(
        "  -> the paper's near-labeled strategy should be at least as good as "
        "the boundary (active-learning) strategy."
    )


if __name__ == "__main__":
    main()
