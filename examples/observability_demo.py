"""Observability in action: metrics snapshot + one round's span tree.

This demo switches the process-wide :mod:`repro.obs` hub on (it is off —
and effectively free — by default), drives a small ``per_round`` workload
through a parallel-scheduler :class:`RetrievalService`, and prints what
the instrumentation saw:

* the full metrics snapshot — solver iterations, index candidates
  scanned, log append latency, scheduler wave occupancy, lock waits —
  rendered by :func:`repro.obs.render_snapshot`;
* the complete span tree of one feedback round's wave: the
  ``service.feedback_batch`` span, its per-session ``service.round``
  children (which ran on pool worker threads — context propagation
  carries parentage across the fan-out), and the SMO solves beneath.

The metric catalogue and span taxonomy are documented in
``docs/observability.md``; ``benchmarks/test_obs_overhead.py`` asserts
the disabled-mode overhead stays ≤2%.

Run with::

    python examples/observability_demo.py
"""

from __future__ import annotations

from repro import (
    CorelDatasetConfig,
    FeedbackRequest,
    ImageDatabase,
    RetrievalService,
    SearchRequest,
    build_corel_dataset,
    collect_feedback_log,
)
from repro.obs import (
    InMemoryExporter,
    build_span_tree,
    configure,
    disable,
    format_span_tree,
    render_snapshot,
)

NUM_SESSIONS = 6
NUM_ROUNDS = 2
TOP_K = 12


def judge(dataset, query_index, image_indices):
    category = dataset.category_of(int(query_index))
    return {
        int(i): (1 if dataset.category_of(int(i)) == category else -1)
        for i in image_indices
    }


def main() -> None:
    dataset = build_corel_dataset(
        CorelDatasetConfig(num_categories=5, images_per_category=12, seed=3)
    )
    log = collect_feedback_log(dataset)
    database = ImageDatabase(dataset, log_database=log)
    database.build_index("ivf")

    # ---- switch observability on (one call; layers pick it up live) ------
    exporter = InMemoryExporter()
    configure(exporters=[exporter])
    try:
        service = RetrievalService(
            database,
            default_algorithm="lrf-csvm",
            log_policy="per_round",
            scheduler="parallel",
            max_workers=4,
        )
        responses = service.open_sessions(
            [SearchRequest(query=i, top_k=TOP_K) for i in range(NUM_SESSIONS)]
        )
        for _ in range(NUM_ROUNDS):
            responses = service.submit_feedback_batch(
                [
                    FeedbackRequest(
                        session_id=response.session_id,
                        judgements=judge(dataset, i, response.image_indices),
                        top_k=TOP_K,
                    )
                    for i, response in enumerate(responses)
                ]
            )
        last = responses[0]
        service.close_sessions([r.session_id for r in responses])
        service.shutdown()

        print("=" * 72)
        print("metrics snapshot (render_snapshot):")
        print("=" * 72)
        print(render_snapshot())

        # ---- one feedback round's span tree ------------------------------
        batch_spans = [
            s for s in exporter.spans if s.name == "service.feedback_batch"
        ]
        last_batch = batch_spans[-1]
        tree_spans = [
            s
            for s in exporter.spans
            if s.trace_id == last_batch.trace_id
        ]
        print()
        print("=" * 72)
        print(f"span tree of the last feedback wave (trace {last_batch.trace_id}):")
        print("=" * 72)
        print(format_span_tree(tree_spans))
        print()
        print(
            f"{len(exporter.spans)} spans exported across "
            f"{len(build_span_tree(exporter.spans))} traces; last round's "
            f"solver stats: {last.solver_stats}"
        )
    finally:
        disable()  # back to the free default


if __name__ == "__main__":
    main()
