"""Graph feedback demo: label propagation, log-rich vs cold-start.

Builds one corpus, runs the ``"lrf-graph"`` family through the graph
ablation sweep under both log regimes — the environment's simulated
feedback log ("log-rich") and the same corpus with an empty log
("cold-start") — and prints the MAP comparison against LRF-CSVM at every
point.  The table makes the family's two claims visible side by side:
log co-relevance fusion (``eta > 0``) lifts the graph's MAP when there
is a log to fuse, and with no log the family degrades gracefully to
visual-only propagation instead of failing.

Run with::

    python examples/label_propagation.py
"""

from __future__ import annotations

from repro.datasets.corel import CorelDatasetConfig
from repro.evaluation.protocol import ProtocolConfig
from repro.experiments.ablations import run_graph_ablation
from repro.experiments.config import ExperimentConfig
from repro.logdb.simulation import LogSimulationConfig


def main() -> None:
    config = ExperimentConfig(
        dataset=CorelDatasetConfig(
            num_categories=10, images_per_category=25, image_size=44, seed=11
        ),
        log=LogSimulationConfig(num_sessions=60, images_per_session=20, seed=12),
        protocol=ProtocolConfig(num_queries=12, num_labeled=20, cutoffs=(20, 50), seed=13),
        graph_params={"k": 10, "method": "propagation"},
    )
    print(
        f"Sweeping lrf-graph over {config.dataset.total_images} images "
        f"({config.log.num_sessions} log sessions when log-rich, "
        f"{config.protocol.num_queries} queries) ...\n"
    )
    result = run_graph_ablation(config, eta_values=(0.0, 0.25, 0.5))

    header = f"{'regime':<12} {'eta':>5}   {'MAP lrf-graph':>13}   {'MAP lrf-csvm':>12}"
    print(header)
    print("-" * len(header))
    for (regime, eta), score, table in zip(
        result.values, result.map_scores, result.tables
    ):
        csvm = table.result("lrf-csvm").map_score
        print(f"{regime:<12} {eta:>5.2f}   {score:>13.4f}   {csvm:>12.4f}")

    log_rich = {
        eta: score
        for (regime, eta), score in zip(result.values, result.map_scores)
        if regime == "log-rich"
    }
    lift = log_rich[max(log_rich)] - log_rich[0.0]
    print(
        f"\nFusing the feedback log (eta={max(log_rich):.2f}) moves MAP by "
        f"{lift:+.4f} over visual-only propagation on this workload; "
        "cold-start rows are eta-invariant because there is no log to fuse."
    )


if __name__ == "__main__":
    main()
