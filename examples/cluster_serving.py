"""Cluster serving: one logical service over N worker processes.

This demo stands up a :class:`~repro.cluster.ClusterRouter` over a small
worker fleet, drives concurrent per-call clients through it, then
SIGKILLs one worker mid-traffic to show the failure semantics: the dead
worker's sessions re-route to survivors (rendezvous hashing over the
alive set), in-flight rounds reconcile against the shared on-disk
stores, and the feedback log still ends up with exactly one record per
round — nothing lost, nothing duplicated.

Compare with ``examples/parallel_service.py`` (threads in one process)
and the tracked soak benchmark ``benchmarks/test_cluster_soak.py`` /
``BENCH_cluster.json`` (the CI-asserted ≥2× throughput version of this
workload).  Topology and protocol: ``docs/cluster.md``.

Run with::

    python examples/cluster_serving.py
"""

from __future__ import annotations

import collections
import tempfile
import threading
import time
from pathlib import Path

from repro import FeedbackRequest
from repro.cbir.database import ImageDatabase
from repro.cluster import ClusterConfig, ClusterRouter
from repro.datasets.pool import GaussianPoolConfig, make_pool_dataset
from repro.logdb import FileLogStore

NUM_WORKERS = 3
NUM_CLIENT_THREADS = 6
SESSIONS_PER_THREAD = 2
NUM_ROUNDS = 2
TOP_K = 10


def drive_session(router, query_index):
    """One complete session through the router: open → rounds → close."""
    response = router.open_session(query_index, top_k=TOP_K,
                                   algorithm="euclidean")
    for _ in range(NUM_ROUNDS):
        judgements = {
            int(i): (1 if rank % 2 == 0 else -1)
            for rank, i in enumerate(response.image_indices)
        }
        response = router.submit_feedback(
            FeedbackRequest(session_id=response.session_id,
                            judgements=judgements, top_k=TOP_K)
        )
    router.close_session(response.session_id)


def main() -> None:
    print("Building the serving pool (shared copy-on-write by the fleet) ...")
    built, _ = make_pool_dataset(
        GaussianPoolConfig(num_vectors=5_000, dim=12, num_clusters=24,
                           num_queries=4, seed=7),
        name="cluster-demo-pool",
    )
    database = ImageDatabase(built)
    database.build_index("brute-force")

    with tempfile.TemporaryDirectory() as tmp:
        config = ClusterConfig(
            session_dir=Path(tmp) / "sessions",
            log_dir=Path(tmp) / "log",
            num_workers=NUM_WORKERS,
            default_algorithm="euclidean",
            coalesce_window=0.003,
        )
        total = NUM_CLIENT_THREADS * SESSIONS_PER_THREAD
        with ClusterRouter(lambda: database, config) as router:
            print(f"{NUM_WORKERS} workers up: {router.alive_worker_ids}")

            def client(thread_index: int) -> None:
                for s in range(SESSIONS_PER_THREAD):
                    drive_session(router, thread_index * SESSIONS_PER_THREAD + s)

            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(NUM_CLIENT_THREADS)
            ]
            victim = router.alive_worker_ids[0]
            chaos = threading.Timer(0.05, router.kill_worker, args=(victim,))
            start = time.perf_counter()
            for thread in threads:
                thread.start()
            chaos.start()
            for thread in threads:
                thread.join()
            chaos.join()
            seconds = time.perf_counter() - start

            deadline = time.time() + 5.0
            while victim in router.alive_worker_ids and time.time() < deadline:
                time.sleep(0.02)  # let the monitor notice the corpse
            print(
                f"killed worker {victim} mid-traffic; "
                f"survivors: {router.alive_worker_ids}"
            )
            print(
                f"{total} sessions x {NUM_ROUNDS} rounds in {seconds:.2f}s "
                f"({total / seconds:.1f} sessions/sec) — every session "
                "completed"
            )

        counts = collections.Counter(
            record.query_index
            for record in FileLogStore(config.log_dir).scan()
        )
        assert counts == {q: NUM_ROUNDS for q in range(total)}, counts
        print(
            f"log audit: {len(counts)} sessions, each with exactly "
            f"{NUM_ROUNDS} records — zero lost, zero duplicated"
        )


if __name__ == "__main__":
    main()
