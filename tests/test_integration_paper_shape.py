"""Integration tests: the full pipeline reproduces the paper's qualitative shape.

These tests run a miniature—but structurally identical—version of the paper's
protocol and assert the *ordering* results the paper reports:

* every learning scheme beats the Euclidean baseline;
* the log-based schemes (LRF-2SVMs and LRF-CSVM) beat the visual-only RF-SVM;
* the coupled SVM is at least as good as the naive two-SVM combination.

Absolute numbers differ from the paper (synthetic corpus, simulated users),
which is expected; the orderings are what the library promises to reproduce
(see EXPERIMENTS.md for the paper-scale runs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.corel import CorelDatasetConfig
from repro.evaluation.protocol import ProtocolConfig
from repro.experiments.config import ExperimentConfig
from repro.experiments.pipeline import build_environment, run_paper_experiment
from repro.logdb.simulation import LogSimulationConfig


@pytest.fixture(scope="module")
def shape_table():
    """Run the four-scheme comparison once on a small 10-category corpus."""
    config = ExperimentConfig(
        dataset=CorelDatasetConfig(
            num_categories=10, images_per_category=25, image_size=40, seed=7
        ),
        log=LogSimulationConfig(
            num_sessions=60, images_per_session=15, rounds_per_query=2, noise_rate=0.1, seed=8
        ),
        protocol=ProtocolConfig(num_queries=16, num_labeled=15, cutoffs=(15, 30, 60), seed=9),
        num_unlabeled=16,
    )
    return run_paper_experiment(config)


@pytest.mark.slow
class TestPaperShape:
    def test_all_four_schemes_present(self, shape_table):
        assert set(shape_table.methods) == {"euclidean", "rf-svm", "lrf-2svms", "lrf-csvm"}

    def test_learning_beats_euclidean(self, shape_table):
        euclidean = shape_table.result("euclidean").map_score
        for method in ("rf-svm", "lrf-2svms", "lrf-csvm"):
            assert shape_table.result(method).map_score > euclidean, method

    def test_log_based_schemes_beat_rf_svm(self, shape_table):
        baseline = shape_table.result("rf-svm").map_score
        assert shape_table.result("lrf-2svms").map_score > baseline
        assert shape_table.result("lrf-csvm").map_score > baseline

    def test_coupled_svm_at_least_matches_two_svms(self, shape_table):
        """The paper's headline: coupling outperforms the naive combination.

        A small tolerance absorbs the variance of the miniature protocol.
        """
        two_svms = shape_table.result("lrf-2svms").map_score
        coupled = shape_table.result("lrf-csvm").map_score
        assert coupled >= two_svms - 0.01

    def test_top20_improvement_positive(self, shape_table):
        improvement = shape_table.improvement_over_baseline("lrf-csvm", 15)
        assert improvement > 0.0

    def test_precision_decreases_with_cutoff(self, shape_table):
        """Precision at larger cutoffs cannot exceed the achievable fraction."""
        for method in shape_table.methods:
            result = shape_table.result(method)
            values = [result.precision_at(k) for k in (15, 30, 60)]
            # 25 relevant images exist; precision@60 is bounded by 25/60.
            assert values[-1] <= 25 / 60 + 1e-9


class TestColdStartIntegration:
    def test_pipeline_with_empty_log(self):
        """With zero log sessions the log-based schemes degrade gracefully."""
        config = ExperimentConfig(
            dataset=CorelDatasetConfig(
                num_categories=4, images_per_category=10, image_size=32, seed=31
            ),
            log=LogSimulationConfig(num_sessions=0, seed=32),
            protocol=ProtocolConfig(num_queries=3, num_labeled=8, cutoffs=(10, 20), seed=33),
            num_unlabeled=8,
        )
        table = run_paper_experiment(config)
        rf = table.result("rf-svm").map_score
        # Cold-start log-based schemes collapse to the visual-only baseline.
        assert table.result("lrf-2svms").map_score == pytest.approx(rf, abs=1e-9)
        assert table.result("lrf-csvm").map_score == pytest.approx(rf, abs=1e-9)

    def test_noisy_log_still_finishes(self):
        """A fully random log must not crash the pipeline (robustness)."""
        config = ExperimentConfig(
            dataset=CorelDatasetConfig(
                num_categories=4, images_per_category=10, image_size=32, seed=41
            ),
            log=LogSimulationConfig(num_sessions=12, images_per_session=8, noise_rate=0.5, seed=42),
            protocol=ProtocolConfig(num_queries=3, num_labeled=8, cutoffs=(10, 20), seed=43),
            num_unlabeled=8,
        )
        table = run_paper_experiment(config)
        for method in table.methods:
            assert 0.0 <= table.result(method).map_score <= 1.0
