"""Tests for the GramCache: single Gram computation, sign-flip Q updates."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.svm.gram_cache import GramCache
from repro.svm.kernels import LinearKernel, RBFKernel


def _toy_cache(seed=0, labeled=6, unlabeled=4):
    rng = np.random.default_rng(seed)
    x_l = rng.normal(size=(labeled, 3))
    x_u = rng.normal(size=(unlabeled, 3))
    return GramCache(RBFKernel(gamma=0.5), x_l, x_u), x_l, x_u


class TestGramCacheBasics:
    def test_gram_computed_once(self):
        cache, x_l, x_u = _toy_cache()
        assert cache.gram_computations == 1
        assert cache.kernel_evaluations == cache.num_samples ** 2
        expected = RBFKernel(gamma=0.5).gram(np.vstack([x_l, x_u]))
        np.testing.assert_allclose(cache.gram, expected)

    def test_counts_and_shapes(self):
        cache, _, _ = _toy_cache(labeled=6, unlabeled=4)
        assert cache.num_labeled == 6
        assert cache.num_unlabeled == 4
        assert cache.num_samples == 10
        assert cache.gram.shape == (10, 10)

    def test_dimensionality_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            GramCache(LinearKernel(), np.ones((3, 2)), np.ones((2, 5)))

    def test_scale_gamma_resolved_on_stacked_matrix(self):
        cache, x_l, x_u = _toy_cache()
        fitted = RBFKernel("scale").fit(np.vstack([x_l, x_u]))
        cache_scale = GramCache(RBFKernel("scale"), x_l, x_u)
        assert cache_scale.kernel.gamma_ == pytest.approx(fitted.gamma_)


class TestQMatrixSignFlips:
    def test_first_call_builds_full_q(self):
        cache, _, _ = _toy_cache()
        labels = np.concatenate([np.ones(6), -np.ones(4)])
        q = cache.q_matrix(labels)
        np.testing.assert_array_equal(q, cache.gram * np.outer(labels, labels))

    @given(seed=st.integers(0, 200), rounds=st.integers(1, 5))
    @settings(max_examples=25, deadline=None)
    def test_flip_updates_exactly_match_rebuild(self, seed, rounds):
        """Sign-flip maintenance is bit-exact against a fresh K * yy'."""
        rng = np.random.default_rng(seed)
        cache, _, _ = _toy_cache(seed=seed)
        labels = np.where(rng.random(cache.num_samples) > 0.5, 1.0, -1.0)
        cache.q_matrix(labels)
        for _ in range(rounds):
            flips = rng.random(cache.num_samples) > 0.7
            labels = np.where(flips, -labels, labels)
            q = cache.q_matrix(labels)
            np.testing.assert_array_equal(q, cache.gram * np.outer(labels, labels))

    def test_label_length_validated(self):
        cache, _, _ = _toy_cache()
        with pytest.raises(ValidationError):
            cache.q_matrix(np.ones(3))


class TestDecisionValues:
    def test_unlabeled_decisions_match_kernel_expansion(self):
        cache, x_l, x_u = _toy_cache(seed=3)
        rng = np.random.default_rng(3)
        labels = np.where(rng.random(cache.num_samples) > 0.5, 1.0, -1.0)
        alphas = rng.uniform(0.0, 1.0, size=cache.num_samples)
        bias = 0.25
        expected = (
            cache.kernel(x_u, np.vstack([x_l, x_u])) @ (alphas * labels) + bias
        )
        np.testing.assert_allclose(
            cache.unlabeled_decision_values(alphas, labels, bias), expected
        )

    def test_unlabeled_decisions_alignment_validated(self):
        cache, _, _ = _toy_cache()
        with pytest.raises(ValidationError):
            cache.unlabeled_decision_values(np.ones(3), np.ones(3), 0.0)
