"""Tests for the CBIR engine layer (repro.cbir)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cbir.database import ImageDatabase
from repro.cbir.engine import CBIREngine
from repro.cbir.query import Query, RetrievalResult
from repro.cbir.search import SearchEngine
from repro.cbir.similarity import (
    cosine_distances,
    euclidean_distances,
    make_distance,
    manhattan_distances,
)
from repro.exceptions import DatabaseError, ValidationError
from repro.feedback.rf_svm import RFSVM


class TestSimilarity:
    def test_euclidean_matches_numpy(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(3, 4)), rng.normal(size=(5, 4))
        expected = np.linalg.norm(a[:, None, :] - b[None, :, :], axis=2)
        np.testing.assert_allclose(euclidean_distances(a, b), expected, atol=1e-10)

    def test_manhattan_known_value(self):
        a = np.array([[0.0, 0.0]])
        b = np.array([[1.0, 2.0]])
        assert manhattan_distances(a, b)[0, 0] == pytest.approx(3.0)

    def test_cosine_orthogonal_vectors(self):
        a = np.array([[1.0, 0.0]])
        b = np.array([[0.0, 1.0]])
        assert cosine_distances(a, b)[0, 0] == pytest.approx(1.0)

    def test_cosine_identical_vectors(self):
        a = np.array([[1.0, 2.0]])
        assert cosine_distances(a, a)[0, 0] == pytest.approx(0.0, abs=1e-12)

    def test_make_distance_lookup(self):
        assert make_distance("euclidean") is euclidean_distances
        with pytest.raises(ValidationError):
            make_distance("mahalanobis")


class TestQueryAndResult:
    def test_query_requires_source(self):
        with pytest.raises(ValidationError):
            Query()

    def test_internal_query(self):
        query = Query(query_index=4)
        assert query.is_internal

    def test_external_query_vector(self):
        query = Query(feature_vector=[1.0, 2.0, 3.0])
        assert not query.is_internal
        assert query.feature_vector.shape == (3,)

    def test_result_alignment_enforced(self):
        with pytest.raises(ValidationError):
            RetrievalResult(
                image_indices=[1, 2, 3], scores=[0.5, 0.4], query=Query(query_index=0)
            )

    def test_result_top_and_score_of(self):
        result = RetrievalResult(
            image_indices=[5, 2, 9], scores=[0.9, 0.5, 0.1], query=Query(query_index=0)
        )
        np.testing.assert_array_equal(result.top(2), [5, 2])
        assert result.score_of(2) == pytest.approx(0.5)
        with pytest.raises(ValidationError):
            result.score_of(77)
        assert len(result) == 3


class TestImageDatabase:
    def test_requires_features(self, small_dataset):
        stripped = small_dataset.subset(range(small_dataset.num_images))
        stripped.features = None
        with pytest.raises(DatabaseError):
            ImageDatabase(stripped)

    def test_normalized_features(self, small_database):
        features = small_database.features
        np.testing.assert_allclose(features.mean(axis=0), 0.0, atol=1e-8)

    def test_log_vectors_alignment(self, small_database):
        vectors = small_database.log_vectors_of([0, 5])
        assert vectors.shape == (2, small_database.num_log_sessions)

    def test_feature_of_bounds(self, small_database):
        with pytest.raises(DatabaseError):
            small_database.feature_of(10_000)

    def test_log_size_mismatch_rejected(self, small_dataset):
        from repro.logdb.log_database import LogDatabase

        with pytest.raises(DatabaseError):
            ImageDatabase(small_dataset, log_database=LogDatabase(num_images=3))

    def test_external_feature_transform(self, small_database, small_dataset):
        raw = small_dataset.features[:2]
        transformed = small_database.transform_external_features(raw)
        np.testing.assert_allclose(transformed, small_database.features[:2], atol=1e-10)

    def test_external_feature_dimension_check(self, small_database):
        with pytest.raises(DatabaseError):
            small_database.transform_external_features(np.ones((1, 7)))


class TestSearchEngine:
    def test_query_image_ranked_first(self, small_database):
        engine = SearchEngine(small_database)
        result = engine.search(Query(query_index=7))
        assert result.image_indices[0] == 7

    def test_top_k_limits_results(self, small_database):
        engine = SearchEngine(small_database)
        result = engine.search(Query(query_index=0), top_k=5)
        assert len(result) == 5

    def test_scores_decreasing(self, small_database):
        engine = SearchEngine(small_database)
        result = engine.search(Query(query_index=3), top_k=10)
        assert np.all(np.diff(result.scores) <= 1e-12)

    def test_external_query(self, small_database, small_dataset):
        engine = SearchEngine(small_database)
        result = engine.search(
            Query(feature_vector=small_dataset.features[11]), top_k=3
        )
        assert result.image_indices[0] == 11

    def test_invalid_top_k(self, small_database):
        engine = SearchEngine(small_database)
        with pytest.raises(ValidationError):
            engine.search(Query(query_index=0), top_k=0)

    def test_initial_retrieval_better_than_random(self, small_database, small_dataset):
        """Same-category images should be over-represented in the top results."""
        engine = SearchEngine(small_database)
        precisions = []
        for query_index in range(0, small_dataset.num_images, 12):
            result = engine.search(Query(query_index=query_index), top_k=10)
            category = small_dataset.category_of(query_index)
            hits = np.mean(
                [small_dataset.category_of(int(i)) == category for i in result.image_indices]
            )
            precisions.append(hits)
        random_baseline = 12 / small_dataset.num_images
        assert np.mean(precisions) > 2 * random_baseline


class TestCBIREngine:
    def test_feedback_flow_and_logging(self, small_dataset, small_log):
        database = ImageDatabase(small_dataset, log_database=small_log)
        sessions_before = database.log_database.num_sessions
        engine = CBIREngine(database, algorithm=RFSVM(C=5.0))
        initial = engine.start_query(0, top_k=10)
        assert len(initial) == 10

        judgements = {
            int(i): (1 if small_dataset.category_of(int(i)) == small_dataset.category_of(0) else -1)
            for i in initial.image_indices
        }
        refined = engine.feedback(judgements)
        assert isinstance(refined, RetrievalResult)
        assert database.log_database.num_sessions == sessions_before + 1
        assert len(engine.rounds) == 1
        assert engine.accumulated_judgements == judgements

    def test_feedback_before_query_rejected(self, small_database):
        engine = CBIREngine(small_database, algorithm="rf-svm")
        with pytest.raises(ValidationError):
            engine.feedback({0: 1})

    def test_invalid_judgement_value_rejected(self, small_database):
        engine = CBIREngine(small_database, algorithm="rf-svm")
        engine.start_query(0)
        with pytest.raises(ValidationError):
            engine.feedback({0: 2})

    def test_judgements_accumulate_across_rounds(self, small_database, small_dataset):
        engine = CBIREngine(small_database, algorithm=RFSVM(C=5.0), record_log=False)
        initial = engine.start_query(0, top_k=6)
        first = {int(i): 1 if small_dataset.category_of(int(i)) == 0 else -1
                 for i in initial.image_indices[:3]}
        second = {int(i): 1 if small_dataset.category_of(int(i)) == 0 else -1
                  for i in initial.image_indices[3:]}
        engine.feedback(first)
        engine.feedback(second)
        assert len(engine.accumulated_judgements) == len({**first, **second})
        assert len(engine.rounds) == 2

    def test_record_log_disabled(self, small_dataset, small_log):
        database = ImageDatabase(small_dataset, log_database=small_log)
        before = database.log_database.num_sessions
        engine = CBIREngine(database, algorithm="euclidean", record_log=False)
        initial = engine.start_query(1, top_k=5)
        engine.feedback({int(initial.image_indices[0]): 1, int(initial.image_indices[1]): -1})
        assert database.log_database.num_sessions == before

    def test_reset_clears_session(self, small_database):
        engine = CBIREngine(small_database, algorithm="euclidean", record_log=False)
        engine.start_query(2, top_k=5)
        engine.reset()
        assert engine.active_query is None
        assert engine.rounds == []
