"""Tests for the ``repro.index`` ANN subsystem and its serving-layer wiring.

The load-bearing properties:

* every approximate backend at **exhaustive** settings (LSH ``num_bits=0``
  all-tables, IVF ``n_probe == n_clusters``, KD-tree which is always exact)
  reproduces the :class:`BruteForceIndex` ranking **bit-for-bit**;
* ``save`` → ``load`` round-trips produce identical search results;
* the serving layers (``SearchEngine``, ``ImageDatabase``, ``CBIREngine``,
  candidate-pruned ``LRFCSVM``) use the index without changing exact-path
  results, and fall back to the exact scan when no index fits.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cbir.database import ImageDatabase
from repro.cbir.engine import CBIREngine
from repro.cbir.query import Query
from repro.cbir.search import SearchEngine
from repro.cbir.similarity import manhattan_distances
from repro.core.lrf_csvm import LRFCSVM
from repro.datasets.pool import GaussianPoolConfig, make_gaussian_pool
from repro.datasets.splits import relevance_labels
from repro.exceptions import DatabaseError, ValidationError
from repro.feedback.base import FeedbackContext
from repro.index import (
    BruteForceIndex,
    IVFIndex,
    KDTreeIndex,
    LSHIndex,
    ShardedVectorIndex,
    VectorIndex,
    available_indexes,
    load_index,
    make_index,
)

#: Exhaustive-settings factory per backend: each must match brute force
#: bit-for-bit on any input.
EXHAUSTIVE_BACKENDS = {
    "kd-tree": lambda: KDTreeIndex(leaf_size=7),
    "lsh": lambda: LSHIndex(num_tables=3, num_bits=0),
    "ivf": lambda: IVFIndex(n_clusters=9, n_probe=9, kmeans_iters=3),
    "sharded": lambda: ShardedVectorIndex(num_shards=3),
}

#: Moderately approximate settings used by round-trip / wiring tests.
APPROXIMATE_BACKENDS = {
    "brute-force": lambda: BruteForceIndex(),
    "kd-tree": lambda: KDTreeIndex(leaf_size=16),
    "lsh": lambda: LSHIndex(num_tables=4, num_bits=6, seed=3),
    "ivf": lambda: IVFIndex(n_clusters=12, n_probe=3, seed=3),
    "sharded": lambda: ShardedVectorIndex(num_shards=4),
}


@pytest.fixture(scope="module")
def pool():
    """A clustered pool with a duplicated block to exercise tie-breaking."""
    vectors, queries = make_gaussian_pool(
        GaussianPoolConfig(num_vectors=400, dim=10, num_clusters=12, num_queries=12, seed=11)
    )
    vectors[50:60] = vectors[0:10]  # exact duplicates → distance ties
    return vectors, queries


@pytest.fixture(scope="module")
def oracle(pool):
    vectors, queries = pool
    index = BruteForceIndex().build(vectors)
    distances, indices = index.search(queries, 25)
    return index, distances, indices


class TestVectorIndexInterface:
    def test_registry_lists_all_backends(self):
        assert available_indexes() == [
            "brute-force", "ivf", "kd-tree", "lsh", "sharded",
        ]

    def test_registry_rejects_unknown_backend(self):
        with pytest.raises(ValidationError, match="unknown index backend"):
            make_index("annoy")

    def test_search_before_build_raises(self):
        with pytest.raises(ValidationError, match="not been built"):
            BruteForceIndex().search(np.zeros(3), 1)

    def test_build_rejects_empty_and_nonfinite(self):
        with pytest.raises(ValidationError):
            BruteForceIndex().build(np.empty((0, 4)))
        with pytest.raises(ValidationError, match="finite"):
            BruteForceIndex().build(np.array([[np.nan, 1.0]]))

    def test_k_and_dimension_validation(self, pool):
        vectors, queries = pool
        index = BruteForceIndex().build(vectors)
        with pytest.raises(ValidationError, match="k must be"):
            index.search(queries, 0)
        with pytest.raises(ValidationError, match="k must be"):
            index.search(queries, vectors.shape[0] + 1)
        with pytest.raises(ValidationError, match="dimension"):
            index.search(np.zeros(3), 1)

    def test_kd_tree_rejects_non_euclidean(self):
        with pytest.raises(ValidationError, match="euclidean"):
            KDTreeIndex(metric="cosine")

    def test_brute_force_matches_dense_scan(self, pool):
        vectors, queries = pool
        index = BruteForceIndex().build(vectors)
        distances, indices = index.search(queries[:3], 10)
        from repro.cbir.similarity import euclidean_distances

        dense = euclidean_distances(queries[:3], vectors)
        expected = np.argsort(dense, axis=1, kind="stable")[:, :10]
        np.testing.assert_array_equal(indices, expected)
        np.testing.assert_allclose(
            distances, np.take_along_axis(dense, expected, axis=1)
        )

    def test_batch_search_equals_search(self, pool, oracle):
        vectors, queries = pool
        index, distances, indices = oracle
        batch_d, batch_i = index.batch_search(queries, 25, chunk_size=5)
        np.testing.assert_array_equal(batch_i, indices)
        np.testing.assert_array_equal(batch_d, distances)

    def test_single_vector_query_shape(self, oracle, pool):
        vectors, queries = pool
        index = oracle[0]
        distances, indices = index.search(queries[0], 5)
        assert distances.shape == (1, 5) and indices.shape == (1, 5)

    def test_empty_query_batch(self, oracle, pool):
        vectors, _ = pool
        index = oracle[0]
        empty = np.empty((0, vectors.shape[1]))
        for method in (index.search, index.batch_search):
            distances, indices = method(empty, 5)
            assert distances.shape == (0, 5) and indices.shape == (0, 5)


class TestExhaustiveSettingsMatchBruteForce:
    @pytest.mark.parametrize("kind", sorted(EXHAUSTIVE_BACKENDS))
    def test_rankings_bit_for_bit(self, kind, pool, oracle):
        vectors, queries = pool
        _, oracle_distances, oracle_indices = oracle
        index = EXHAUSTIVE_BACKENDS[kind]().build(vectors)
        distances, indices = index.search(queries, 25)
        np.testing.assert_array_equal(indices, oracle_indices)
        np.testing.assert_allclose(distances, oracle_distances, rtol=0, atol=1e-9)

    @pytest.mark.parametrize("kind", sorted(EXHAUSTIVE_BACKENDS))
    def test_rankings_bit_for_bit_after_add(self, kind, pool, oracle):
        vectors, queries = pool
        oracle_indices = oracle[2]
        index = EXHAUSTIVE_BACKENDS[kind]().build(vectors[:250])
        index.add(vectors[250:])
        assert index.size == vectors.shape[0]
        _, indices = index.search(queries, 25)
        np.testing.assert_array_equal(indices, oracle_indices)

    def test_kd_tree_ranks_in_sqrt_domain(self):
        # Two squared distances that are distinct as floats but collapse to
        # the same double after sqrt: the oracle sees a tie (broken by
        # index), so the KD-tree must compare sqrt'd distances too.
        base = 1.5625
        eps = np.nextafter(base, 2.0) - base
        near, nearer = np.sqrt(base + 4 * eps), np.sqrt(base + 6 * eps)
        vectors = np.array([[near], [nearer], [5.0], [7.0]])
        queries = np.array([[0.0]])
        _, oracle_indices = BruteForceIndex().build(vectors).search(queries, 2)
        _, kd_indices = KDTreeIndex(leaf_size=1).build(vectors).search(queries, 2)
        np.testing.assert_array_equal(kd_indices, oracle_indices)

    def test_ivf_full_probe_property(self, pool):
        vectors, _ = pool
        index = IVFIndex(n_clusters=64, n_probe=64).build(vectors)
        # every database row appears in exactly one inverted list
        members = np.sort(np.concatenate(index._lists))
        np.testing.assert_array_equal(members, np.arange(vectors.shape[0]))

    @pytest.mark.parametrize("kind", sorted(EXHAUSTIVE_BACKENDS))
    @pytest.mark.parametrize("k", [1, 7, 25])
    def test_batch_search_indices_identical_across_backends(self, kind, k, pool):
        """The tie-rule property ``batch_search`` documents: exhaustive
        backends return bit-identical neighbour indices — over tie-heavy
        self-queries (the duplicated block makes distance-0 ties), at any
        chunking — while distances agree only up to roundoff."""
        vectors, _ = pool
        reference_d, reference_i = BruteForceIndex().build(vectors).batch_search(
            vectors, k
        )
        index = EXHAUSTIVE_BACKENDS[kind]().build(vectors)
        for chunk_size in (57, 1024):
            distances, indices = index.batch_search(vectors, k, chunk_size=chunk_size)
            np.testing.assert_array_equal(indices, reference_i)
            np.testing.assert_allclose(distances, reference_d, rtol=0, atol=1e-7)

    @pytest.mark.parametrize("kind", sorted(EXHAUSTIVE_BACKENDS))
    def test_knn_graphs_bit_identical_across_backends(self, kind, pool):
        """Derived-artifact half of the property: affinity graphs built over
        any exhaustive backend equal the exact-fallback graph bit for bit
        (edge weights are recomputed from the features, so they depend only
        on the backend-invariant neighbour indices)."""
        from repro.graph import KNNGraphBuilder

        vectors, _ = pool
        builder = KNNGraphBuilder(k=9)
        reference = builder.build(vectors).weights
        index = EXHAUSTIVE_BACKENDS[kind]().build(vectors)
        weights = builder.build(vectors, index=index).weights
        np.testing.assert_array_equal(weights.data, reference.data)
        np.testing.assert_array_equal(weights.indices, reference.indices)
        np.testing.assert_array_equal(weights.indptr, reference.indptr)


class TestApproximateBehaviour:
    def test_ivf_recall_improves_with_n_probe(self, pool, oracle):
        vectors, queries = pool
        oracle_indices = oracle[2][:, :10]
        index = IVFIndex(n_clusters=16, n_probe=1, seed=5).build(vectors)
        recalls = []
        for n_probe in (1, 4, 16):
            index.n_probe = n_probe
            _, indices = index.search(queries, 10)
            hits = [
                len(set(row.tolist()) & set(truth.tolist()))
                for row, truth in zip(indices, oracle_indices)
            ]
            recalls.append(sum(hits) / oracle_indices.size)
        assert recalls[0] <= recalls[1] <= recalls[2]
        assert recalls[2] == 1.0

    def test_lsh_exact_fallback_fills_k(self, pool):
        vectors, queries = pool
        # Aggressive hashing: buckets will often hold fewer than k members,
        # triggering the per-query exact fallback — results must still be k
        # valid, correctly ordered neighbours.
        index = LSHIndex(num_tables=1, num_bits=16, seed=0).build(vectors)
        distances, indices = index.search(queries, 50)
        assert indices.shape == (queries.shape[0], 50)
        assert np.all(indices >= 0) and np.all(indices < vectors.shape[0])
        assert np.all(np.diff(distances, axis=1) >= 0)


class TestPersistence:
    @pytest.mark.parametrize("kind", sorted(APPROXIMATE_BACKENDS))
    def test_save_load_round_trip(self, kind, pool, tmp_path):
        vectors, queries = pool
        index = APPROXIMATE_BACKENDS[kind]().build(vectors)
        path = index.save(tmp_path / f"{kind}.npz")
        loaded = load_index(path)
        assert isinstance(loaded, type(index))
        assert loaded.kind == kind and loaded.metric == index.metric
        assert loaded.size == index.size and loaded.dim == index.dim
        original_d, original_i = index.search(queries, 20)
        loaded_d, loaded_i = loaded.search(queries, 20)
        np.testing.assert_array_equal(loaded_i, original_i)
        np.testing.assert_array_equal(loaded_d, original_d)

    @pytest.mark.parametrize("kind", sorted(APPROXIMATE_BACKENDS))
    def test_round_trip_after_add_preserves_results(self, kind, pool, tmp_path):
        # An index grown via add() must round-trip too: LSH in particular
        # freezes its hashing centre at build time, so a naive rebuild over
        # the grown matrix would shift every bucket.
        vectors, queries = pool
        index = APPROXIMATE_BACKENDS[kind]().build(vectors[:300])
        index.add(vectors[300:])
        path = index.save(tmp_path / f"{kind}-grown.npz")
        loaded = load_index(path)
        original_d, original_i = index.search(queries, 20)
        loaded_d, loaded_i = loaded.search(queries, 20)
        np.testing.assert_array_equal(loaded_i, original_i)
        np.testing.assert_array_equal(loaded_d, original_d)

    def test_load_rejects_non_index_bundle(self, tmp_path):
        from repro.utils.io import save_array_bundle

        path = save_array_bundle({"vectors": np.ones((2, 2))}, tmp_path / "x.npz")
        with pytest.raises(ValidationError, match="not a serialised VectorIndex"):
            VectorIndex.load(path)

    def test_save_unbuilt_raises(self, tmp_path):
        with pytest.raises(ValidationError, match="unbuilt"):
            BruteForceIndex().save(tmp_path / "x.npz")


class TestManhattanChunking:
    def test_chunked_matches_naive_broadcast(self, rng):
        queries = rng.normal(size=(7, 33))
        database = rng.normal(size=(911, 33))
        expected = np.abs(queries[:, None, :] - database[None, :, :]).sum(axis=2)
        np.testing.assert_allclose(manhattan_distances(queries, database), expected)

    def test_chunk_step_is_bounded(self, rng, monkeypatch):
        import repro.cbir.similarity as similarity

        # Force a tiny budget so many chunks are exercised.
        monkeypatch.setattr(similarity, "_L1_CHUNK_ELEMENTS", 64)
        queries = rng.normal(size=(3, 5))
        database = rng.normal(size=(97, 5))
        expected = np.abs(queries[:, None, :] - database[None, :, :]).sum(axis=2)
        np.testing.assert_allclose(
            similarity.manhattan_distances(queries, database), expected
        )

    def test_query_axis_is_chunked_too(self, rng):
        # More queries than the per-block query limit: both loops must run.
        queries = rng.normal(size=(300, 4))
        database = rng.normal(size=(50, 4))
        expected = np.abs(queries[:, None, :] - database[None, :, :]).sum(axis=2)
        np.testing.assert_allclose(manhattan_distances(queries, database), expected)


class TestSearchEngineIndexing:
    def test_algorithm_reports_engine_distance(self, small_database):
        for name in ("euclidean", "manhattan", "cosine"):
            engine = SearchEngine(small_database, distance=name)
            result = engine.search(Query(query_index=0), top_k=5)
            assert result.algorithm == name

    def test_index_path_matches_dense_scan(self, small_database):
        dense = SearchEngine(small_database).search(Query(query_index=3), top_k=15)
        engine = SearchEngine(small_database, index="brute-force")
        indexed = engine.search(Query(query_index=3), top_k=15)
        np.testing.assert_array_equal(indexed.image_indices, dense.image_indices)
        np.testing.assert_allclose(indexed.scores, dense.scores)
        assert indexed.algorithm == dense.algorithm == "euclidean"

    def test_attached_index_is_used_when_metric_matches(self, small_dataset):
        database = ImageDatabase(small_dataset)
        assert SearchEngine(database).index is None
        database.build_index("kd-tree")
        engine = SearchEngine(database)
        assert engine.index is database.index
        # A cosine engine must NOT use the euclidean index.
        assert SearchEngine(database, distance="cosine").index is None
        database.detach_index()
        assert SearchEngine(database).index is None

    def test_full_ranking_bypasses_index(self, small_database):
        # top_k=None visits every image anyway: the engine must serve it by
        # the dense scan (identical result, no candidate-generation overhead).
        database = small_database
        database.build_index("ivf", n_clusters=6, n_probe=1)
        try:
            dense = SearchEngine(ImageDatabase(database.dataset)).search(
                Query(query_index=1)
            )
            full = SearchEngine(database).search(Query(query_index=1))
            assert len(full) == database.num_images
            np.testing.assert_array_equal(full.image_indices, dense.image_indices)
            # ... while an explicit top_k keeps going through the index (the
            # n_probe=1 approximation is allowed to differ from dense).
            engine = SearchEngine(database)
            assert engine.index is database.index
            top = engine.search(Query(query_index=1), top_k=10)
            assert len(top) == 10
        finally:
            database.detach_index()

    def test_mismatched_explicit_index_rejected(self, small_database, pool):
        vectors, _ = pool
        foreign = BruteForceIndex().build(vectors)
        with pytest.raises(ValidationError, match="index covers"):
            SearchEngine(small_database, index=foreign)

    def test_explicit_index_metric_must_match_engine(self, small_database):
        euclidean_index = BruteForceIndex().build(small_database.features)
        with pytest.raises(ValidationError, match="ranks by 'euclidean'"):
            SearchEngine(small_database, distance="cosine", index=euclidean_index)

    def test_named_index_with_custom_distance_callable_rejected(self, small_database):
        from repro.cbir.similarity import euclidean_distances

        def my_distance(queries, database):
            return euclidean_distances(queries, database)

        with pytest.raises(ValidationError, match="registered distance name"):
            SearchEngine(small_database, distance=my_distance, index="brute-force")

    def test_explicit_index_grown_after_construction_fails_fast(self, small_database):
        index = BruteForceIndex().build(small_database.features)
        engine = SearchEngine(small_database, index=index)
        index.add(np.zeros((1, small_database.feature_dimension)))
        with pytest.raises(ValidationError, match="rebuild the engine"):
            engine.search(Query(query_index=0), top_k=5)

    def test_annotations_resolve_at_runtime(self):
        import typing

        typing.get_type_hints(SearchEngine.__init__)
        typing.get_type_hints(ImageDatabase.build_index)
        typing.get_type_hints(CBIREngine.__init__)

    def test_experiment_config_index_knob_validation(self):
        from repro.exceptions import ConfigurationError
        from repro.experiments.config import ExperimentConfig

        with pytest.raises(ConfigurationError, match="unknown index backend"):
            ExperimentConfig(index_backend="annoy")
        with pytest.raises(ConfigurationError, match="index_params requires"):
            ExperimentConfig(index_params={"n_probe": 2})
        with pytest.raises(ConfigurationError, match="feedback_candidates requires"):
            ExperimentConfig(feedback_candidates=100)
        config = ExperimentConfig(
            index_backend="ivf", index_params={"n_probe": 2}, feedback_candidates=100
        )
        assert config.index_backend == "ivf"


class TestImageDatabaseIndex:
    def test_build_attach_detach(self, small_dataset):
        database = ImageDatabase(small_dataset)
        index = database.build_index("lsh", num_tables=2, num_bits=4)
        assert database.index is index and index.size == database.num_images
        detached = database.detach_index()
        assert detached is index and database.index is None
        database.attach_index(index)
        assert database.index is index
        database.detach_index()

    def test_attach_validates_shape(self, small_dataset, pool):
        vectors, _ = pool
        database = ImageDatabase(small_dataset)
        with pytest.raises(DatabaseError, match="index covers"):
            database.attach_index(BruteForceIndex().build(vectors))
        with pytest.raises(DatabaseError, match="unbuilt"):
            database.attach_index(BruteForceIndex())

    def test_attach_validates_contents(self, small_dataset):
        # Right shape, wrong vectors: a stale index must be rejected, not
        # silently serve neighbours of a different corpus.
        database = ImageDatabase(small_dataset)
        stale = BruteForceIndex().build(database.features + 1.0)
        with pytest.raises(DatabaseError, match="different vectors"):
            database.attach_index(stale)

    def test_save_and_load_index(self, small_dataset, tmp_path):
        database = ImageDatabase(small_dataset)
        with pytest.raises(DatabaseError, match="no index"):
            database.save_index(tmp_path / "idx.npz")
        database.build_index("ivf", n_clusters=5, n_probe=5)
        path = database.save_index(tmp_path / "idx.npz")
        fresh = ImageDatabase(small_dataset)
        loaded = fresh.load_index(path)
        assert fresh.index is loaded and loaded.kind == "ivf"
        query = Query(query_index=2)
        np.testing.assert_array_equal(
            SearchEngine(fresh).search(query, top_k=10).image_indices,
            SearchEngine(database).search(query, top_k=10).image_indices,
        )
        database.detach_index()

    def test_engine_index_kwarg_builds_and_attaches(self, small_dataset):
        database = ImageDatabase(small_dataset)
        engine = CBIREngine(database, algorithm="euclidean", index="brute-force")
        assert database.index is not None and database.index.kind == "brute-force"
        result = engine.start_query(0, top_k=10)
        assert len(result) == 10
        database.detach_index()


class TestCandidatePrunedFeedback:
    @pytest.fixture()
    def feedback_context(self, small_dataset, small_database):
        engine = SearchEngine(ImageDatabase(small_dataset, log_database=small_database.log_database))
        initial = engine.search(Query(query_index=0), top_k=20)
        labels = relevance_labels(small_dataset, 0, initial.image_indices)
        if np.unique(labels).size < 2:
            labels[-1] = -labels[-1]
        return FeedbackContext(
            database=engine.database,
            query=Query(query_index=0),
            labeled_indices=initial.image_indices,
            labels=labels,
        )

    def test_candidate_size_validation(self):
        with pytest.raises(ValidationError, match="candidate_size"):
            LRFCSVM(candidate_size=0)

    def test_exhaustive_pruning_is_bit_for_bit_exact(self, feedback_context):
        # A test double that keeps the restricted-pool machinery engaged at
        # full coverage: production short-circuits that case to the exact
        # path, which would leave the searchsorted position mapping, the
        # restricted fit and the score scatter untested here.
        class FullPoolPruned(LRFCSVM):
            def _candidate_set(self, context):
                return self._probe_candidates(context)

        database = feedback_context.database
        exact = LRFCSVM(random_state=7).score(feedback_context)
        database.build_index("ivf", n_clusters=6, n_probe=6)
        try:
            algorithm = FullPoolPruned(random_state=7, candidate_size=database.num_images)
            pruned = algorithm.score(feedback_context)
            # The exhaustive index really produced full coverage, so the
            # restricted branch ran over every image.
            assert algorithm._probe_candidates(feedback_context).size == database.num_images
        finally:
            database.detach_index()
        np.testing.assert_array_equal(pruned, exact)

    def test_full_coverage_short_circuits_to_exact_path(self, feedback_context):
        database = feedback_context.database
        database.build_index("brute-force")
        try:
            algorithm = LRFCSVM(random_state=7, candidate_size=database.num_images)
            assert algorithm._candidate_set(feedback_context) is None
        finally:
            database.detach_index()

    def test_pruning_without_index_falls_back_to_exact(self, feedback_context):
        exact = LRFCSVM(random_state=7).score(feedback_context)
        pruned = LRFCSVM(random_state=7, candidate_size=30).score(feedback_context)
        np.testing.assert_array_equal(pruned, exact)

    def test_pruned_scores_rank_noncandidates_last(self, feedback_context):
        database = feedback_context.database
        database.build_index("brute-force")
        try:
            algorithm = LRFCSVM(random_state=7, candidate_size=25)
            scores = algorithm.score(feedback_context)
        finally:
            database.detach_index()
        assert scores.shape == (database.num_images,)
        floor = scores.min()
        non_floor = scores[scores > floor]
        # The candidate frontier (query + positives probes ∪ labelled) is
        # scored individually; everything else shares the floor score.
        assert non_floor.size >= 25
        assert np.all(non_floor > floor)

    def test_tiny_candidate_budget_stays_exact(self, feedback_context):
        # candidate_size so small the transductive stage could not run: the
        # algorithm must silently use the exact path instead.
        database = feedback_context.database
        exact = LRFCSVM(random_state=7, num_unlabeled=50).score(feedback_context)
        database.build_index("brute-force")
        try:
            pruned = LRFCSVM(random_state=7, candidate_size=1, num_unlabeled=50).score(
                feedback_context
            )
        finally:
            database.detach_index()
        np.testing.assert_array_equal(pruned, exact)


class TestKDTreeDeferredRebuild:
    """add() marks the tree stale; the rebuild happens lazily at search."""

    def _pool(self):
        vectors, queries = make_gaussian_pool(
            GaussianPoolConfig(num_vectors=300, dim=5, num_clusters=8, num_queries=5, seed=31)
        )
        return vectors, queries

    def test_add_burst_costs_one_rebuild(self):
        vectors, queries = self._pool()
        index = KDTreeIndex(leaf_size=16).build(vectors[:200])
        assert index.rebuilds_ == 1
        for start in range(200, 300, 20):
            index.add(vectors[start : start + 20])
        # No rebuild yet: the adds only marked the tree stale.
        assert index.rebuilds_ == 1
        index.search(queries, 10)
        assert index.rebuilds_ == 2
        index.search(queries, 10)
        assert index.rebuilds_ == 2  # rebuilt once, then reused

    def test_search_after_adds_matches_brute_force(self):
        vectors, queries = self._pool()
        index = KDTreeIndex(leaf_size=16).build(vectors[:250])
        index.add(vectors[250:])
        oracle = BruteForceIndex().build(vectors)
        kd_distances, kd_indices = index.search(queries, 15)
        bf_distances, bf_indices = oracle.search(queries, 15)
        np.testing.assert_array_equal(kd_indices, bf_indices)
        np.testing.assert_allclose(kd_distances, bf_distances, atol=1e-12)

    def test_save_load_with_pending_rebuild(self, tmp_path):
        vectors, queries = self._pool()
        index = KDTreeIndex(leaf_size=16).build(vectors[:250])
        index.add(vectors[250:])
        path = index.save(tmp_path / "kd.npz")
        loaded = VectorIndex.load(path)
        l_distances, l_indices = loaded.search(queries, 10)
        e_distances, e_indices = index.search(queries, 10)
        np.testing.assert_array_equal(l_indices, e_indices)
        np.testing.assert_allclose(l_distances, e_distances, atol=1e-12)


class TestKDTreeIncrementalInsert:
    """add() inserts into leaf overflow lists instead of deferring a rebuild,
    until the overflow crosses ``rebuild_threshold`` (the escape hatch)."""

    def _pool(self):
        return make_gaussian_pool(
            GaussianPoolConfig(num_vectors=400, dim=4, num_clusters=6, num_queries=8, seed=77)
        )

    def test_small_adds_insert_without_rebuild(self):
        vectors, queries = self._pool()
        index = KDTreeIndex(leaf_size=16).build(vectors[:350])
        assert index.rebuilds_ == 1
        index.add(vectors[350:360])
        index.add(vectors[360:370])
        assert not index.needs_rebuild
        assert index.incremental_inserts_ == 20
        index.search(queries, 10)
        assert index.rebuilds_ == 1  # search never triggered a rebuild

    def test_incremental_results_bit_identical_to_brute_force(self):
        vectors, queries = self._pool()
        index = KDTreeIndex(leaf_size=16).build(vectors[:350])
        for start in range(350, 400, 10):
            index.add(vectors[start : start + 10])
        assert index.incremental_inserts_ == 50 and not index.needs_rebuild
        oracle = BruteForceIndex().build(vectors)
        for k in (1, 7, 25):
            kd_d, kd_i = index.search(queries, k)
            bf_d, bf_i = oracle.search(queries, k)
            np.testing.assert_array_equal(kd_i, bf_i)
            # Distances agree to the established KD tolerance (leaf-shaped
            # BLAS calls round differently from the full scan's).
            np.testing.assert_allclose(kd_d, bf_d, rtol=0, atol=1e-12)

    def test_threshold_escape_hatch_defers_rebuild(self):
        vectors, queries = self._pool()
        index = KDTreeIndex(leaf_size=16, rebuild_threshold=0.05).build(vectors[:300])
        index.add(vectors[300:310])  # 10 ≤ 0.05 * 310 → incremental
        assert not index.needs_rebuild and index.incremental_inserts_ == 10
        index.add(vectors[310:400])  # 10 + 90 > 0.05 * 400 → defer rebuild
        assert index.needs_rebuild
        index.search(queries, 5)
        assert not index.needs_rebuild
        assert index.rebuilds_ == 2
        # The rebuild absorbed the overflow: nothing left in the extras.
        assert index._num_extra == 0

    def test_zero_threshold_restores_deferred_only_behaviour(self):
        vectors, _ = self._pool()
        index = KDTreeIndex(leaf_size=16, rebuild_threshold=0.0).build(vectors[:390])
        index.add(vectors[390:])
        assert index.needs_rebuild and index.incremental_inserts_ == 0

    def test_rebuild_threshold_round_trips(self, tmp_path):
        vectors, _ = self._pool()
        index = KDTreeIndex(leaf_size=16, rebuild_threshold=0.5).build(vectors)
        loaded = VectorIndex.load(index.save(tmp_path / "kd.npz"))
        assert loaded.rebuild_threshold == 0.5

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValidationError, match="rebuild_threshold"):
            KDTreeIndex(rebuild_threshold=-0.1)
