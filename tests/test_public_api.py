"""Tests for the top-level public API surface of :mod:`repro`."""

from __future__ import annotations

import importlib

import pytest

import repro


class TestPublicAPI:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert len(repro.__version__.split(".")) == 3

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing attribute {name}"

    def test_key_classes_importable_from_top_level(self):
        for name in (
            "CoupledSVM",
            "LRFCSVM",
            "SVC",
            "ImageDatabase",
            "CBIREngine",
            "LogDatabase",
            "ExperimentRunner",
            "build_corel_dataset",
            "collect_feedback_log",
            "RetrievalService",
            "SearchRequest",
            "FeedbackRequest",
            "SessionView",
            "SessionStore",
            "FileSessionStore",
            "ShardedVectorIndex",
            "ClusterConfig",
            "ClusterRouter",
            "ClusterWorker",
            "AffinityGraph",
            "KNNGraphBuilder",
            "GraphCache",
            "LabelPropagationFeedback",
        ):
            assert hasattr(repro, name)

    def test_subpackages_importable(self):
        for module in (
            "repro.core",
            "repro.svm",
            "repro.imaging",
            "repro.synth",
            "repro.datasets",
            "repro.features",
            "repro.logdb",
            "repro.cbir",
            "repro.feedback",
            "repro.evaluation",
            "repro.experiments",
            "repro.service",
            "repro.index",
            "repro.obs",
            "repro.cluster",
            "repro.utils",
            "repro.graph",
        ):
            importlib.import_module(module)

    def test_exception_hierarchy(self):
        from repro.exceptions import (
            ClusterError,
            ClusterTimeoutError,
            ConfigurationError,
            DatabaseError,
            EvaluationError,
            FeatureExtractionError,
            LogDatabaseError,
            NoWorkersError,
            ReproError,
            SessionError,
            SolverError,
            ValidationError,
            WorkerDiedError,
        )

        for error in (
            ConfigurationError,
            ValidationError,
            FeatureExtractionError,
            SolverError,
            DatabaseError,
            LogDatabaseError,
            EvaluationError,
            SessionError,
            ClusterError,
        ):
            assert issubclass(error, ReproError)
        assert issubclass(ValidationError, ValueError)
        for error in (WorkerDiedError, ClusterTimeoutError, NoWorkersError):
            assert issubclass(error, ClusterError)
        assert issubclass(ClusterTimeoutError, TimeoutError)

    def test_version_info_tuple(self):
        from repro.version import VERSION_INFO

        assert VERSION_INFO == tuple(int(x) for x in repro.__version__.split("."))
