"""Tests for the coupled SVM, label switching and unlabeled selection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coupled_svm import CoupledSVM, CoupledSVMConfig
from repro.core.label_switching import (
    compute_slacks,
    coupled_hinge_objective,
    switch_labels,
)
from repro.core.unlabeled_selection import (
    BoundaryProximitySelection,
    NearLabeledSelection,
    RandomSelection,
    make_selection_strategy,
)
from repro.exceptions import ConfigurationError, SolverError, ValidationError


class TestLabelSwitching:
    def test_slacks_formula(self):
        decisions = np.array([2.0, 0.5, -1.0])
        labels = np.array([1.0, 1.0, 1.0])
        np.testing.assert_allclose(compute_slacks(decisions, labels), [0.0, 0.5, 2.0])

    def test_slack_alignment_enforced(self):
        with pytest.raises(ValidationError):
            compute_slacks(np.ones(3), np.ones(2))

    def test_no_flip_when_one_modality_agrees(self):
        labels = np.array([1.0])
        visual = np.array([2.0])   # agrees strongly -> xi = 0
        log = np.array([-3.0])     # disagrees -> eta = 4
        new_labels, flipped = switch_labels(labels, visual, log, delta=1.0)
        assert not flipped.any()
        np.testing.assert_array_equal(new_labels, labels)

    def test_flip_when_both_disagree_beyond_delta(self):
        labels = np.array([1.0])
        visual = np.array([-1.0])  # xi = 2
        log = np.array([-0.5])     # eta = 1.5
        new_labels, flipped = switch_labels(labels, visual, log, delta=1.0)
        assert flipped.all()
        np.testing.assert_array_equal(new_labels, [-1.0])

    def test_no_flip_below_delta(self):
        labels = np.array([1.0])
        visual = np.array([0.9])   # xi = 0.1
        log = np.array([0.8])      # eta = 0.2
        new_labels, flipped = switch_labels(labels, visual, log, delta=1.0)
        assert not flipped.any()

    def test_negative_delta_rejected(self):
        with pytest.raises(ValidationError):
            switch_labels(np.array([1.0]), np.array([0.0]), np.array([0.0]), delta=-1.0)

    def test_invalid_labels_rejected(self):
        with pytest.raises(ValidationError):
            switch_labels(np.array([0.5]), np.array([0.0]), np.array([0.0]))

    def test_flip_never_increases_objective_for_large_delta(self):
        """With Δ ≥ 2 the rule only flips genuinely misclassified samples.

        The Figure-1 rule is a heuristic: with a small Δ it may flip samples
        both modalities *weakly agree* with (ξ, η ∈ (0, 1)), which can
        increase the hinge objective — that is exactly why the paper
        introduces Δ "to avoid overlarge change in the label set".  For
        Δ ≥ 2 a flip requires ``y (f_w + f_u) < 0`` and therefore always
        decreases the per-sample coupled hinge loss.
        """
        rng = np.random.default_rng(0)
        for _ in range(50):
            size = int(rng.integers(1, 12))
            labels = np.where(rng.random(size) > 0.5, 1.0, -1.0)
            visual = rng.normal(scale=2.0, size=size)
            log = rng.normal(scale=2.0, size=size)
            before = coupled_hinge_objective(visual, log, labels)
            new_labels, _ = switch_labels(labels, visual, log, delta=2.0)
            after = coupled_hinge_objective(visual, log, new_labels)
            assert after <= before + 1e-9

    def test_small_delta_can_flip_weakly_agreeing_samples(self):
        """Documents the heuristic nature of the Δ-rule for small Δ."""
        labels = np.array([1.0])
        visual = np.array([0.5])  # xi = 0.5 (weakly agrees)
        log = np.array([0.3])     # eta = 0.7 (weakly agrees)
        _, flipped = switch_labels(labels, visual, log, delta=1.0)
        assert flipped.all()
        _, flipped_large_delta = switch_labels(labels, visual, log, delta=2.0)
        assert not flipped_large_delta.any()

    @given(
        st.integers(1, 10),
        st.floats(0.0, 3.0),
        st.integers(0, 10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_switch_labels_property(self, size, delta, seed):
        rng = np.random.default_rng(seed)
        labels = np.where(rng.random(size) > 0.5, 1.0, -1.0)
        visual = rng.normal(scale=2.0, size=size)
        log = rng.normal(scale=2.0, size=size)
        new_labels, flipped = switch_labels(labels, visual, log, delta=delta)
        # Output labels stay in {-1, +1} and only flipped entries changed.
        assert np.all(np.isin(new_labels, (-1.0, 1.0)))
        np.testing.assert_array_equal(new_labels[~flipped], labels[~flipped])
        np.testing.assert_array_equal(new_labels[flipped], -labels[flipped])


class TestUnlabeledSelection:
    def _scores(self):
        return np.array([5.0, 4.0, 3.0, 0.5, 0.1, -0.2, -3.0, -4.0, -5.0, 1.0])

    def test_near_labeled_picks_extremes(self):
        strategy = NearLabeledSelection()
        indices, labels = strategy.select(self._scores(), np.array([9]), 4)
        assert len(indices) == 4
        # Highest scores get +1, lowest get -1.
        assert set(indices[labels > 0]) <= {0, 1, 2}
        assert set(indices[labels < 0]) <= {6, 7, 8}

    def test_near_labeled_excludes_labeled(self):
        strategy = NearLabeledSelection()
        indices, _ = strategy.select(self._scores(), np.array([0, 8]), 4)
        assert 0 not in indices
        assert 8 not in indices

    def test_boundary_picks_small_magnitude(self):
        strategy = BoundaryProximitySelection()
        indices, labels = strategy.select(self._scores(), np.array([]), 4)
        assert set(indices) <= {3, 4, 5, 9}
        assert np.all(np.isin(labels, (-1.0, 1.0)))

    def test_random_selection_deterministic_with_seed(self):
        strategy = RandomSelection()
        first = strategy.select(self._scores(), np.array([0]), 4, random_state=3)
        second = strategy.select(self._scores(), np.array([0]), 4, random_state=3)
        np.testing.assert_array_equal(first[0], second[0])

    def test_both_classes_always_present(self):
        for name in ("near-labeled", "boundary", "random"):
            strategy = make_selection_strategy(name)
            indices, labels = strategy.select(self._scores(), np.array([]), 6, random_state=1)
            assert (labels > 0).any() and (labels < 0).any(), name

    def test_budget_capped_by_candidates(self):
        strategy = NearLabeledSelection()
        indices, _ = strategy.select(np.array([1.0, -1.0, 0.5]), np.array([2]), 10)
        assert len(indices) == 2

    def test_minimum_budget(self):
        with pytest.raises(ValidationError):
            NearLabeledSelection().select(self._scores(), np.array([]), 1)

    def test_unknown_strategy(self):
        with pytest.raises(ValidationError):
            make_selection_strategy("magic")


def _toy_coupled_problem(seed=0, labeled=16, unlabeled=10):
    """Two informative modalities whose classes agree."""
    rng = np.random.default_rng(seed)
    half = labeled // 2
    x_pos = rng.normal(loc=1.5, scale=0.7, size=(half, 3))
    x_neg = rng.normal(loc=-1.5, scale=0.7, size=(half, 3))
    r_pos = rng.normal(loc=1.0, scale=0.8, size=(half, 5))
    r_neg = rng.normal(loc=-1.0, scale=0.8, size=(half, 5))
    x_l = np.vstack([x_pos, x_neg])
    r_l = np.vstack([r_pos, r_neg])
    y_l = np.concatenate([np.ones(half), -np.ones(half)])

    u_half = unlabeled // 2
    x_u = np.vstack(
        [rng.normal(1.5, 0.7, size=(u_half, 3)), rng.normal(-1.5, 0.7, size=(u_half, 3))]
    )
    r_u = np.vstack(
        [rng.normal(1.0, 0.8, size=(u_half, 5)), rng.normal(-1.0, 0.8, size=(u_half, 5))]
    )
    true_u = np.concatenate([np.ones(u_half), -np.ones(u_half)])
    return x_l, r_l, y_l, x_u, r_u, true_u


class TestCoupledSVMConfig:
    def test_defaults_valid(self):
        config = CoupledSVMConfig()
        assert config.rho_start <= config.rho

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            CoupledSVMConfig(C_visual=0.0)
        with pytest.raises(ConfigurationError):
            CoupledSVMConfig(rho_start=0.5, rho=0.1)
        with pytest.raises(ConfigurationError):
            CoupledSVMConfig(delta=-0.5)
        with pytest.raises(ConfigurationError):
            CoupledSVMConfig(max_label_iterations=0)
        with pytest.raises(ConfigurationError):
            CoupledSVMConfig(tolerance=0.0)
        with pytest.raises(ConfigurationError):
            CoupledSVMConfig(max_iter=0)


class TestCoupledSVM:
    def test_fit_and_decision(self):
        x_l, r_l, y_l, x_u, r_u, _ = _toy_coupled_problem()
        model = CoupledSVM(CoupledSVMConfig(kernel="linear", log_kernel="linear"))
        model.fit(x_l, r_l, y_l, x_u, r_u, np.ones(x_u.shape[0]))
        assert model.is_fitted
        scores = model.decision_function(x_l, r_l)
        assert scores.shape == (x_l.shape[0],)
        # Training samples should be classified mostly correctly.
        assert np.mean(np.sign(scores) == y_l) >= 0.9

    def test_label_switching_corrects_bad_pseudo_labels(self):
        x_l, r_l, y_l, x_u, r_u, true_u = _toy_coupled_problem(seed=3)
        wrong = -true_u  # start from entirely wrong pseudo-labels
        model = CoupledSVM(
            CoupledSVMConfig(kernel="linear", log_kernel="linear", rho=0.1, delta=0.5)
        )
        model.fit(x_l, r_l, y_l, x_u, r_u, wrong)
        corrected = np.mean(model.result_.pseudo_labels == true_u)
        assert corrected >= 0.7
        assert model.result_.total_flips > 0

    def test_rho_annealing_schedule(self):
        x_l, r_l, y_l, x_u, r_u, true_u = _toy_coupled_problem(seed=5)
        config = CoupledSVMConfig(rho=0.08, rho_start=0.01, kernel="linear", log_kernel="linear")
        model = CoupledSVM(config)
        model.fit(x_l, r_l, y_l, x_u, r_u, true_u)
        schedule = model.result_.rho_schedule
        assert schedule[0] == pytest.approx(0.01)
        assert schedule[-1] == pytest.approx(0.08)
        assert all(b >= a for a, b in zip(schedule, schedule[1:]))

    def test_modality_decisions_sum_to_coupled(self):
        x_l, r_l, y_l, x_u, r_u, true_u = _toy_coupled_problem(seed=7)
        model = CoupledSVM(CoupledSVMConfig(kernel="linear", log_kernel="linear"))
        model.fit(x_l, r_l, y_l, x_u, r_u, true_u)
        visual, log = model.modality_decisions(x_l, r_l)
        np.testing.assert_allclose(visual + log, model.decision_function(x_l, r_l))

    def test_requires_both_classes(self):
        x_l, r_l, y_l, x_u, r_u, true_u = _toy_coupled_problem()
        with pytest.raises(SolverError):
            CoupledSVM().fit(x_l, r_l, np.ones_like(y_l), x_u, r_u, true_u)

    def test_requires_unlabeled_samples(self):
        x_l, r_l, y_l, _, _, _ = _toy_coupled_problem()
        with pytest.raises(ValidationError):
            CoupledSVM().fit(
                x_l, r_l, y_l, np.zeros((0, 3)), np.zeros((0, 5)), np.zeros(0)
            )

    def test_misaligned_modalities_rejected(self):
        x_l, r_l, y_l, x_u, r_u, true_u = _toy_coupled_problem()
        with pytest.raises(ValidationError):
            CoupledSVM().fit(x_l, r_l[:-1], y_l, x_u, r_u, true_u)

    def test_decision_before_fit_rejected(self):
        with pytest.raises(SolverError):
            CoupledSVM().decision_function(np.ones((1, 3)), np.ones((1, 5)))

    def test_invalid_pseudo_labels_rejected(self):
        x_l, r_l, y_l, x_u, r_u, _ = _toy_coupled_problem()
        with pytest.raises(ValidationError):
            CoupledSVM().fit(x_l, r_l, y_l, x_u, r_u, np.full(x_u.shape[0], 0.5))


class TestCoupledSVMWarmStart:
    """Regression contract of the warm-started, Gram-cached AO pipeline."""

    def _fit(self, warm_start, *, seed=3, tolerance=1e-8, start_from_wrong=True):
        x_l, r_l, y_l, x_u, r_u, true_u = _toy_coupled_problem(seed=seed)
        initial = (-true_u if start_from_wrong else true_u).copy()
        config = CoupledSVMConfig(
            rho=0.1, delta=0.5, warm_start=warm_start, tolerance=tolerance
        )
        model = CoupledSVM(config)
        model.fit(x_l, r_l, y_l, x_u, r_u, initial)
        return model, (x_l, r_l)

    def test_results_unchanged_by_warm_start(self):
        """Warm and cold paths agree on pseudo-labels and rankings."""
        warm, (x_l, r_l) = self._fit(True)
        cold, _ = self._fit(False)
        np.testing.assert_array_equal(
            warm.result_.pseudo_labels, cold.result_.pseudo_labels
        )
        np.testing.assert_allclose(
            warm.decision_function(x_l, r_l),
            cold.decision_function(x_l, r_l),
            atol=1e-6,
        )
        assert warm.result_.rho_schedule == cold.result_.rho_schedule
        assert warm.result_.label_flips == cold.result_.label_flips

    def test_gram_computed_once_per_modality(self):
        for warm_start in (True, False):
            model, _ = self._fit(warm_start)
            assert model.result_.visual_gram_computations == 1
            assert model.result_.log_gram_computations == 1

    def test_solver_iterations_recorded(self):
        model, _ = self._fit(True)
        iterations = model.result_.solver_iterations
        assert len(iterations) > 0
        assert all(count >= 0 for count in iterations)
        assert model.result_.total_solver_iterations == sum(iterations)
        # One solve per modality per rho* stage at minimum, plus the two
        # final packaging fits.
        assert len(iterations) >= 2 * len(model.result_.rho_schedule) + 2

    def test_warm_start_reduces_iterations(self):
        warm, _ = self._fit(True, tolerance=1e-3)
        cold, _ = self._fit(False, tolerance=1e-3)
        assert (
            warm.result_.total_solver_iterations
            < cold.result_.total_solver_iterations
        )

    def test_kernel_evaluations_counted(self):
        model, _ = self._fit(True)
        samples = model.result_.pseudo_labels.shape[0] + 16  # unlabeled + labelled
        assert model.result_.kernel_evaluations == 2 * samples * samples
