"""Tests for the session-oriented retrieval service (repro.service)."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.cbir.database import ImageDatabase
from repro.cbir.engine import CBIREngine
from repro.cbir.query import Query
from repro.cbir.search import SearchEngine
from repro.evaluation.protocol import EvaluationProtocol, ProtocolConfig
from repro.evaluation.runner import ExperimentRunner
from repro.exceptions import SessionError, ValidationError
from repro.feedback.base import FeedbackContext
from repro.feedback.euclidean import EuclideanFeedback
from repro.feedback.rf_svm import RFSVM
from repro.service import (
    FeedbackRequest,
    FileSessionStore,
    InMemorySessionStore,
    MicroBatchScheduler,
    RetrievalService,
    SearchRequest,
    SessionState,
)


@pytest.fixture()
def fresh_database(small_dataset, small_log):
    """A database the test may mutate (grow the log) without leaking state."""
    import copy

    return ImageDatabase(small_dataset, log_database=copy.deepcopy(small_log))


def _category_judgements(dataset, query_index, image_indices):
    """Deterministic ±1 judgements from category ground truth."""
    category = dataset.category_of(int(query_index))
    return {
        int(i): (1 if dataset.category_of(int(i)) == category else -1)
        for i in image_indices
    }


class TestDTOs:
    def test_search_request_coerces_queries(self):
        assert SearchRequest(query=3).query == Query(query_index=3)
        vector_request = SearchRequest(query=np.array([1.0, 2.0]))
        assert not vector_request.query.is_internal

    def test_search_request_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            SearchRequest(query=0, top_k=0)
        with pytest.raises(ValidationError):
            SearchRequest(query="zero")
        with pytest.raises(ValidationError):
            SearchRequest(query=0, session_id="../escape")
        with pytest.raises(ValidationError):
            SearchRequest(query=0, algorithm=RFSVM(), algorithm_params={"C": 1.0})

    def test_feedback_request_validates_judgements(self):
        with pytest.raises(ValidationError):
            FeedbackRequest(session_id="s1", judgements={})
        with pytest.raises(ValidationError):
            FeedbackRequest(session_id="s1", judgements={0: 2})
        with pytest.raises(ValidationError):
            FeedbackRequest(session_id="", judgements={0: 1})

    def test_feedback_request_preserves_order(self):
        request = FeedbackRequest(session_id="s1", judgements={9: 1, 2: -1, 5: 1})
        assert list(request.judgements) == [9, 2, 5]


class TestSessionLifecycle:
    def test_open_feedback_close_grows_log_on_close(self, small_dataset, fresh_database):
        service = RetrievalService(fresh_database, log_policy="on_close")
        before = fresh_database.log_database.num_sessions
        response = service.open_session(0, top_k=10)
        assert response.round_index == 0
        assert len(response.image_indices) == 10

        judgements = _category_judgements(small_dataset, 0, response.image_indices)
        refined = service.submit_feedback(response.session_id, judgements)
        assert refined.round_index == 1
        # on_close: nothing reaches the log until the session closes.
        assert fresh_database.log_database.num_sessions == before

        second = service.submit_feedback(
            response.session_id, {int(refined.image_indices[0]): 1}
        )
        assert second.round_index == 2

        view = service.close_session(response.session_id)
        assert view.closed and view.rounds_completed == 2
        assert fresh_database.log_database.num_sessions == before + 2
        recorded = fresh_database.log_database.sessions[-2]
        assert recorded.query_index == 0
        assert dict(recorded.judgements) == judgements
        assert response.session_id not in service.store

    def test_per_round_policy_logs_immediately(self, small_dataset, fresh_database):
        service = RetrievalService(fresh_database, log_policy="per_round")
        before = fresh_database.log_database.num_sessions
        response = service.open_session(1, top_k=6)
        service.submit_feedback(
            response.session_id,
            _category_judgements(small_dataset, 1, response.image_indices),
        )
        assert fresh_database.log_database.num_sessions == before + 1
        service.close_session(response.session_id)
        assert fresh_database.log_database.num_sessions == before + 1

    def test_off_policy_never_logs(self, small_dataset, fresh_database):
        service = RetrievalService(fresh_database, log_policy="off")
        before = fresh_database.log_database.num_sessions
        response = service.open_session(2, top_k=6)
        service.submit_feedback(
            response.session_id,
            _category_judgements(small_dataset, 2, response.image_indices),
        )
        service.close_session(response.session_id)
        assert fresh_database.log_database.num_sessions == before

    def test_unknown_and_closed_sessions_rejected(self, fresh_database):
        service = RetrievalService(fresh_database)
        with pytest.raises(SessionError):
            service.submit_feedback("nope", {0: 1})
        response = service.open_session(0, top_k=5)
        service.close_session(response.session_id)
        with pytest.raises(SessionError):
            service.submit_feedback(response.session_id, {0: 1})
        with pytest.raises(SessionError):
            service.close_session(response.session_id)

    def test_duplicate_session_id_rejected(self, fresh_database):
        service = RetrievalService(fresh_database)
        service.open_session(SearchRequest(query=0, top_k=5, session_id="mine"))
        with pytest.raises(SessionError):
            service.open_session(SearchRequest(query=1, top_k=5, session_id="mine"))

    def test_discard_session_records_nothing(self, small_dataset, fresh_database):
        service = RetrievalService(fresh_database, log_policy="on_close")
        before = fresh_database.log_database.num_sessions
        response = service.open_session(0, top_k=6)
        service.submit_feedback(
            response.session_id,
            _category_judgements(small_dataset, 0, response.image_indices),
        )
        service.discard_session(response.session_id)
        assert fresh_database.log_database.num_sessions == before
        assert service.num_open_sessions == 0

    def test_list_and_get_sessions(self, fresh_database):
        service = RetrievalService(fresh_database)
        ids = [service.open_session(i, top_k=5).session_id for i in range(3)]
        views = service.list_sessions()
        assert [view.session_id for view in views] == sorted(ids)
        single = service.get_session(ids[0])
        assert single.rounds_completed == 0 and not single.closed

    def test_external_query_session(self, small_dataset, fresh_database):
        service = RetrievalService(fresh_database)
        vector = small_dataset.features[7]
        response = service.open_session(SearchRequest(query=vector, top_k=5))
        assert response.image_indices[0] == 7


class TestTTLEviction:
    def test_idle_sessions_evicted(self, fresh_database):
        clock = {"now": 0.0}
        service = RetrievalService(
            fresh_database, session_ttl=10.0, clock=lambda: clock["now"]
        )
        stale = service.open_session(0, top_k=5).session_id
        clock["now"] = 5.0
        fresh = service.open_session(1, top_k=5).session_id
        clock["now"] = 12.0  # stale idle for 12 > 10; fresh idle for 7
        assert service.num_open_sessions == 2  # eviction runs on API entry
        ids = [view.session_id for view in service.list_sessions()]
        assert stale not in ids and fresh in ids
        with pytest.raises(SessionError):
            service.submit_feedback(stale, {0: 1})

    def test_activity_refreshes_ttl(self, small_dataset, fresh_database):
        clock = {"now": 0.0}
        service = RetrievalService(
            fresh_database, session_ttl=10.0, clock=lambda: clock["now"]
        )
        response = service.open_session(0, top_k=6)
        clock["now"] = 8.0
        service.submit_feedback(
            response.session_id,
            _category_judgements(small_dataset, 0, response.image_indices),
        )
        clock["now"] = 16.0  # idle only 8 since the feedback round
        assert response.session_id in [v.session_id for v in service.list_sessions()]

    def test_ttl_with_store_conflict_rejected(self, fresh_database):
        with pytest.raises(ValidationError):
            RetrievalService(
                fresh_database, store=InMemorySessionStore(), session_ttl=5.0
            )


class TestSessionStores:
    def _state(self):
        state = SessionState(
            session_id="abc",
            query=Query(query_index=4),
            algorithm="rf-svm",
            algorithm_params={"C": 5.0},
            top_k=10,
            created_at=1.0,
            last_active=2.0,
        )
        state.apply_round({9: 1, 2: -1})
        state.apply_round({5: 1})
        state.memory.set_arrays(
            warm_indices=np.array([9, 2, 5]),
            warm_alpha_visual=np.array([0.25, 1.75, 0.0]),
        )
        state.memory.meta["rounds_scored"] = 2
        return state

    def test_file_store_round_trip(self, tmp_path):
        store = FileSessionStore(tmp_path / "sessions")
        state = self._state()
        store.put(state)
        loaded = FileSessionStore(tmp_path / "sessions").get("abc")
        assert loaded.session_id == state.session_id
        assert loaded.algorithm == "rf-svm"
        assert loaded.algorithm_params == {"C": 5.0}
        assert list(loaded.judgements.items()) == [(9, 1), (2, -1), (5, 1)]
        assert loaded.round_judgements == [{9: 1, 2: -1}, {5: 1}]
        np.testing.assert_array_equal(
            loaded.memory.arrays["warm_alpha_visual"],
            state.memory.arrays["warm_alpha_visual"],
        )
        assert loaded.memory.meta["rounds_scored"] == 2
        assert loaded.last_active == 2.0

    def test_file_store_external_query_round_trip(self, tmp_path):
        store = FileSessionStore(tmp_path)
        state = SessionState(
            session_id="ext", query=Query(feature_vector=np.array([0.5, -1.5]))
        )
        store.put(state)
        loaded = store.get("ext")
        np.testing.assert_array_equal(
            loaded.query.feature_vector, state.query.feature_vector
        )

    def test_instance_backed_state_not_serialisable(self, tmp_path):
        state = SessionState(
            session_id="inst", query=Query(query_index=0), instance=RFSVM()
        )
        with pytest.raises(ValidationError):
            FileSessionStore(tmp_path).put(state)

    def test_stores_share_protocol(self, tmp_path):
        for store in (InMemorySessionStore(), FileSessionStore(tmp_path)):
            state = self._state()
            store.put(state)
            assert "abc" in store and len(store) == 1
            assert store.last_active_of("abc") == 2.0
            store.delete("abc")
            assert "abc" not in store
            with pytest.raises(SessionError):
                store.get("abc")


class TestSessionPersistence:
    def test_reloaded_session_resumes_bit_identically(
        self, small_dataset, fresh_database, tmp_path
    ):
        """Open → 2 rounds → save to disk → fresh service → round 3 is
        bit-identical to an uninterrupted 3-round session (the satellite)."""

        def run_round(service, session_id, judgements):
            return service.submit_feedback(session_id, judgements)

        # Uninterrupted reference session (in-memory store).
        reference = RetrievalService(fresh_database, log_policy="off")
        ref_open = reference.open_session(
            SearchRequest(query=0, top_k=10, algorithm="lrf-csvm")
        )
        round1 = _category_judgements(small_dataset, 0, ref_open.image_indices)
        ref_r1 = run_round(reference, ref_open.session_id, round1)
        round2 = _category_judgements(small_dataset, 0, ref_r1.image_indices[:6])
        ref_r2 = run_round(reference, ref_open.session_id, round2)
        round3 = _category_judgements(small_dataset, 0, ref_r2.image_indices[:4])
        ref_r3 = run_round(reference, ref_open.session_id, round3)

        # Interrupted session: two rounds, persisted, resumed elsewhere.
        store = FileSessionStore(tmp_path / "sessions")
        first = RetrievalService(fresh_database, store=store, log_policy="off")
        opened = first.open_session(
            SearchRequest(query=0, top_k=10, algorithm="lrf-csvm")
        )
        run_round(first, opened.session_id, round1)
        run_round(first, opened.session_id, round2)
        del first  # "process restart"

        resumed = RetrievalService(
            fresh_database,
            store=FileSessionStore(tmp_path / "sessions"),
            log_policy="off",
        )
        assert opened.session_id in resumed.store
        res_r3 = run_round(resumed, opened.session_id, round3)

        np.testing.assert_array_equal(res_r3.image_indices, ref_r3.image_indices)
        np.testing.assert_array_equal(res_r3.scores, ref_r3.scores)

    def test_memory_carries_warm_start_diagnostics(self, small_dataset, fresh_database):
        service = RetrievalService(fresh_database, log_policy="off")
        response = service.open_session(
            SearchRequest(query=0, top_k=10, algorithm="lrf-csvm")
        )
        service.submit_feedback(
            response.session_id,
            _category_judgements(small_dataset, 0, response.image_indices),
        )
        state = service.store.get(response.session_id)
        assert state.memory.meta["rounds_scored"] == 1
        assert "warm_indices" in state.memory.arrays
        assert "warm_alpha_visual" in state.memory.arrays


class TestMicroBatching:
    def test_open_sessions_single_flush(self, fresh_database):
        service = RetrievalService(fresh_database)
        flushes_before = service.scheduler.flushes_
        responses = service.open_sessions(
            [SearchRequest(query=i, top_k=8) for i in range(12)]
        )
        assert len(responses) == 12
        assert service.scheduler.flushes_ == flushes_before + 1
        assert service.scheduler.searches_served_ == 12

    def test_batched_first_round_matches_per_query(self, fresh_database):
        batched = RetrievalService(fresh_database).open_sessions(
            [SearchRequest(query=i, top_k=10) for i in range(20)]
        )
        per_query_service = RetrievalService(fresh_database)
        for i, response in enumerate(batched):
            solo = per_query_service.open_session(i, top_k=10)
            np.testing.assert_array_equal(
                response.image_indices, solo.image_indices
            )
            np.testing.assert_allclose(response.scores, solo.scores, atol=2e-6)

    def test_batched_first_round_through_index(self, fresh_database):
        fresh_database.build_index("brute-force")
        try:
            service = RetrievalService(fresh_database)
            responses = service.open_sessions(
                [SearchRequest(query=i, top_k=10) for i in range(10)]
            )
            engine = SearchEngine(fresh_database)
            for i, response in enumerate(responses):
                expected = engine.search(Query(query_index=i), top_k=10)
                np.testing.assert_array_equal(
                    response.image_indices, expected.image_indices
                )
        finally:
            fresh_database.detach_index()

    def test_search_engine_batch_matches_per_query(self, small_database):
        engine = SearchEngine(small_database)
        queries = [Query(query_index=i) for i in range(15)]
        batched = engine.batch_search(queries, top_k=12)
        for query, result in zip(queries, batched):
            solo = engine.search(query, top_k=12)
            np.testing.assert_array_equal(result.image_indices, solo.image_indices)
            np.testing.assert_allclose(result.scores, solo.scores, atol=2e-6)

    def test_euclidean_rank_batch_matches_rank(self, small_database):
        algorithm = EuclideanFeedback()
        contexts = [
            FeedbackContext(
                database=small_database,
                query=Query(query_index=i),
                labeled_indices=np.array([i]),
                labels=np.array([1.0]),
            )
            for i in range(10)
        ]
        batched = algorithm.rank_batch(contexts, top_k=15)
        for context, result in zip(contexts, batched):
            solo = algorithm.rank(context, top_k=15)
            np.testing.assert_array_equal(result.image_indices, solo.image_indices)
            np.testing.assert_allclose(result.scores, solo.scores, atol=2e-6)
            assert result.algorithm == "euclidean"

    def test_protocol_batched_contexts_match_per_query(self, small_dataset, small_database):
        config = ProtocolConfig(num_queries=8, num_labeled=8, cutoffs=(10,), seed=11)
        batched_protocol = EvaluationProtocol(small_dataset, small_database, config)
        queries = batched_protocol.sample_queries()
        contexts = batched_protocol.build_contexts([int(q) for q in queries])
        solo_protocol = EvaluationProtocol(small_dataset, small_database, config)
        solo_protocol.sample_queries()  # consume the sampling draw identically
        for query_index, context in zip(queries, contexts):
            solo = solo_protocol.build_context(int(query_index))
            np.testing.assert_array_equal(
                context.labeled_indices, solo.labeled_indices
            )
            np.testing.assert_array_equal(context.labels, solo.labels)

    def test_scheduler_counters(self, fresh_database):
        scheduler = MicroBatchScheduler(
            SearchEngine(fresh_database), fresh_database.log_database
        )
        assert scheduler.flush() == {}
        assert scheduler.flushes_ == 0  # empty flushes don't count
        scheduler.enqueue_search("a", Query(query_index=0), 5)
        scheduler.enqueue_search("b", Query(query_index=1), 5)
        results = scheduler.flush()
        assert set(results) == {"a", "b"}
        assert scheduler.pending == (0, 0)


class TestServiceEngineEquivalence:
    def test_interleaved_sessions_match_dedicated_engines(
        self, small_dataset, fresh_database
    ):
        """64 interleaved service sessions reproduce dedicated single-user
        CBIREngine runs ranking-for-ranking, and their closes grow the
        shared log (the PR's acceptance criterion, at test scale)."""
        num_sessions = 64
        algorithms = ["euclidean", "rf-svm", "lrf-2svms", "lrf-csvm"]
        service = RetrievalService(fresh_database, log_policy="on_close")

        requests = [
            SearchRequest(
                query=i % small_dataset.num_images,
                top_k=10,
                algorithm=algorithms[i % len(algorithms)],
            )
            for i in range(num_sessions)
        ]
        responses = service.open_sessions(requests)

        # Two interleaved feedback rounds: every session advances round 1
        # before any session starts round 2.
        round1 = [
            _category_judgements(
                small_dataset, i % small_dataset.num_images, r.image_indices
            )
            for i, r in enumerate(responses)
        ]
        first = service.submit_feedback_batch(
            [
                FeedbackRequest(session_id=r.session_id, judgements=j, top_k=10)
                for r, j in zip(responses, round1)
            ]
        )
        round2 = [
            _category_judgements(
                small_dataset, i % small_dataset.num_images, r.image_indices[:5]
            )
            for i, r in enumerate(first)
        ]
        second = service.submit_feedback_batch(
            [
                FeedbackRequest(session_id=r.session_id, judgements=j, top_k=10)
                for r, j in zip(first, round2)
            ]
        )

        # Dedicated single-user engines, same judgements, untouched log.
        # Rankings must agree index-for-index; scores of the learning
        # schemes are exact, while the distance-only euclidean scheme is
        # served batched (different BLAS accumulation order) so its scores
        # agree to numerical tolerance only.
        def assert_scores(scheme, served, dedicated):
            if scheme == "euclidean":
                np.testing.assert_allclose(served, dedicated, atol=2e-6, rtol=1e-9)
            else:
                np.testing.assert_array_equal(served, dedicated)

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            for i in range(num_sessions):
                scheme = algorithms[i % len(algorithms)]
                engine = CBIREngine(
                    fresh_database, algorithm=scheme, record_log=False
                )
                initial = engine.start_query(i % small_dataset.num_images, top_k=10)
                np.testing.assert_array_equal(
                    responses[i].image_indices, initial.image_indices
                )
                engine_r1 = engine.feedback(round1[i], top_k=10)
                np.testing.assert_array_equal(
                    first[i].image_indices, engine_r1.image_indices
                )
                assert_scores(scheme, first[i].scores, engine_r1.scores)
                engine_r2 = engine.feedback(round2[i], top_k=10)
                np.testing.assert_array_equal(
                    second[i].image_indices, engine_r2.image_indices
                )
                assert_scores(scheme, second[i].scores, engine_r2.scores)

        before = fresh_database.log_database.num_sessions
        service.close_sessions([r.session_id for r in responses])
        assert (
            fresh_database.log_database.num_sessions
            == before + 2 * num_sessions
        )

    def test_engine_is_service_backed(self, fresh_database):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            engine = CBIREngine(fresh_database, algorithm="euclidean", record_log=False)
        assert isinstance(engine.service, RetrievalService)
        engine.start_query(0, top_k=5)
        assert engine.session_id is not None
        assert engine.service.num_open_sessions == 1
        engine.reset()
        assert engine.service.num_open_sessions == 0

    def test_engine_emits_deprecation_warning(self, fresh_database):
        with pytest.warns(DeprecationWarning):
            CBIREngine(fresh_database, algorithm="euclidean", record_log=False)


class TestRunnerThroughService:
    def test_runner_matches_direct_algorithm_ranking(
        self, small_dataset, small_database
    ):
        config = ProtocolConfig(num_queries=4, num_labeled=6, cutoffs=(10, 20), seed=7)
        algorithm = RFSVM(C=5.0)
        runner = ExperimentRunner(small_dataset, small_database, protocol=config)
        table = runner.run({"rf-svm": algorithm})

        protocol = EvaluationProtocol(small_dataset, small_database, config)
        queries = protocol.sample_queries()
        from repro.evaluation.metrics import precision_curve

        for position, query_index in enumerate(queries):
            context = protocol.build_context(int(query_index))
            direct = algorithm.rank(context, top_k=20)
            expected = precision_curve(
                direct.image_indices, protocol.ground_truth(int(query_index)), (10, 20)
            )
            assert table.result("rf-svm").per_query[position] == expected

    def test_runner_leaves_log_untouched(self, small_dataset, fresh_database):
        config = ProtocolConfig(num_queries=3, num_labeled=6, cutoffs=(10,), seed=5)
        before = fresh_database.log_database.num_sessions
        runner = ExperimentRunner(small_dataset, fresh_database, protocol=config)
        runner.run(["euclidean", "rf-svm"])
        assert fresh_database.log_database.num_sessions == before
        assert runner.service.num_open_sessions == 0

    def test_runner_with_log_growing_service(self, small_dataset, fresh_database):
        config = ProtocolConfig(num_queries=3, num_labeled=6, cutoffs=(10,), seed=5)
        service = RetrievalService(fresh_database, log_policy="on_close")
        before = fresh_database.log_database.num_sessions
        runner = ExperimentRunner(
            small_dataset, fresh_database, protocol=config, service=service
        )
        runner.run(["euclidean"])
        # one round per query per scheme lands in the log at close time
        assert fresh_database.log_database.num_sessions == before + 3


class TestBatchRobustness:
    """Regression tests for wave/batch validation (code-review findings)."""

    def test_duplicate_wave_session_id_rejected_without_queue_leak(self, fresh_database):
        service = RetrievalService(fresh_database)
        with pytest.raises(SessionError, match="twice in one wave"):
            service.open_sessions(
                [
                    SearchRequest(query=0, top_k=5, session_id="dup"),
                    SearchRequest(query=1, top_k=5, session_id="dup"),
                ]
            )
        # Nothing half-opened, nothing queued for the next flush.
        assert service.num_open_sessions == 0
        assert service.scheduler.pending == (0, 0)

    def test_failed_wave_leaves_scheduler_queue_empty(self, fresh_database):
        service = RetrievalService(fresh_database)
        existing = service.open_session(SearchRequest(query=0, top_k=5, session_id="held"))
        with pytest.raises(SessionError):
            service.open_sessions(
                [
                    SearchRequest(query=1, top_k=5),
                    SearchRequest(query=2, top_k=5, session_id="held"),
                ]
            )
        assert service.scheduler.pending == (0, 0)
        assert [v.session_id for v in service.list_sessions()] == [existing.session_id]

    def test_duplicate_session_in_feedback_batch_rejected(self, small_dataset, fresh_database):
        service = RetrievalService(fresh_database)
        response = service.open_session(0, top_k=6)
        judgements = _category_judgements(small_dataset, 0, response.image_indices)
        with pytest.raises(SessionError, match="twice in one feedback batch"):
            service.submit_feedback_batch(
                [
                    FeedbackRequest(session_id=response.session_id, judgements=judgements),
                    FeedbackRequest(session_id=response.session_id, judgements=judgements),
                ]
            )
        # The rejection happened before any state mutation.
        assert service.get_session(response.session_id).rounds_completed == 0

    def test_out_of_range_judgement_does_not_poison_session(
        self, small_dataset, fresh_database
    ):
        service = RetrievalService(fresh_database)
        response = service.open_session(0, top_k=6)
        with pytest.raises(ValidationError, match="only has"):
            service.submit_feedback(response.session_id, {10**9: 1})
        # The bad round never touched the session: a valid round still works.
        assert service.get_session(response.session_id).rounds_completed == 0
        refined = service.submit_feedback(
            response.session_id,
            _category_judgements(small_dataset, 0, response.image_indices),
        )
        assert refined.round_index == 1

    def test_euclidean_batch_bypasses_approximate_index(self, fresh_database):
        # A deliberately lossy LSH index: the exact-by-definition baseline
        # must not silently turn approximate when batched.
        fresh_database.build_index("lsh", num_tables=1, num_bits=12)
        try:
            assert not fresh_database.index.is_exact
            algorithm = EuclideanFeedback()
            contexts = [
                FeedbackContext(
                    database=fresh_database,
                    query=Query(query_index=i),
                    labeled_indices=np.array([i]),
                    labels=np.array([1.0]),
                )
                for i in range(8)
            ]
            batched = algorithm.rank_batch(contexts, top_k=20)
            for context, result in zip(contexts, batched):
                solo = algorithm.rank(context, top_k=20)
                np.testing.assert_array_equal(result.image_indices, solo.image_indices)
        finally:
            fresh_database.detach_index()

    def test_index_exactness_flags(self):
        from repro.index import BruteForceIndex, IVFIndex, KDTreeIndex, LSHIndex

        assert BruteForceIndex().is_exact
        assert KDTreeIndex().is_exact
        assert LSHIndex(num_bits=0).is_exact
        assert not LSHIndex(num_bits=8).is_exact
        assert IVFIndex(n_clusters=4, n_probe=4).is_exact
        assert not IVFIndex(n_clusters=4, n_probe=1).is_exact
