"""Tests for repro.datasets (dataset container, corel builders, splits, cache)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.cache import FeatureCache
from repro.datasets.corel import CorelDatasetConfig, build_corel_dataset
from repro.datasets.dataset import ImageDataset
from repro.datasets.splits import QuerySampler, relevance_ground_truth, relevance_labels
from repro.exceptions import ConfigurationError, ValidationError


class TestImageDataset:
    def test_basic_properties(self, small_dataset):
        assert small_dataset.num_images == 60
        assert small_dataset.num_categories == 5
        assert small_dataset.has_features
        assert len(small_dataset) == 60

    def test_category_lookup(self, small_dataset):
        assert small_dataset.category_of(0) == 0
        assert small_dataset.category_name_of(0) == small_dataset.category_names[0]

    def test_indices_of_category(self, small_dataset):
        indices = small_dataset.indices_of_category(2)
        assert len(indices) == 12
        assert np.all(small_dataset.labels[indices] == 2)

    def test_indices_of_invalid_category(self, small_dataset):
        with pytest.raises(ValidationError):
            small_dataset.indices_of_category(99)

    def test_category_sizes(self, small_dataset):
        sizes = small_dataset.category_sizes()
        assert sizes == {c: 12 for c in range(5)}

    def test_subset_preserves_alignment(self, small_dataset):
        indices = [0, 13, 25, 37]
        subset = small_dataset.subset(indices)
        assert subset.num_images == 4
        np.testing.assert_array_equal(subset.labels, small_dataset.labels[indices])
        np.testing.assert_array_equal(subset.features, small_dataset.features[indices])

    def test_subset_empty_rejected(self, small_dataset):
        with pytest.raises(ValidationError):
            small_dataset.subset([])

    def test_misaligned_labels_rejected(self, small_dataset):
        with pytest.raises(ValidationError):
            ImageDataset(
                images=small_dataset.images[:5],
                labels=np.zeros(4, dtype=int),
                category_names=("a",),
            )

    def test_misaligned_features_rejected(self, small_dataset):
        with pytest.raises(ValidationError):
            small_dataset.with_features(np.zeros((3, 36)))

    def test_labels_must_index_category_names(self, small_dataset):
        with pytest.raises(ValidationError):
            ImageDataset(
                images=small_dataset.images[:2],
                labels=np.array([0, 7]),
                category_names=("a", "b"),
            )


class TestCorelBuilder:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            CorelDatasetConfig(num_categories=0)
        with pytest.raises(ConfigurationError):
            CorelDatasetConfig(num_categories=51)
        with pytest.raises(ConfigurationError):
            CorelDatasetConfig(images_per_category=1)
        with pytest.raises(ConfigurationError):
            CorelDatasetConfig(image_size=4)

    def test_names_and_sizes(self):
        config = CorelDatasetConfig(num_categories=4, images_per_category=3, image_size=24)
        assert config.total_images == 12
        assert config.name == "corel-4"

    def test_build_without_features(self):
        config = CorelDatasetConfig(
            num_categories=3, images_per_category=2, image_size=24, extract_features=False
        )
        dataset = build_corel_dataset(config)
        assert dataset.num_images == 6
        assert not dataset.has_features

    def test_build_is_deterministic(self):
        config = CorelDatasetConfig(
            num_categories=2, images_per_category=3, image_size=24, seed=17
        )
        first = build_corel_dataset(config)
        second = build_corel_dataset(config)
        np.testing.assert_allclose(first.features, second.features)

    def test_different_seed_differs(self):
        base = dict(num_categories=2, images_per_category=3, image_size=24)
        first = build_corel_dataset(CorelDatasetConfig(seed=1, **base))
        second = build_corel_dataset(CorelDatasetConfig(seed=2, **base))
        assert not np.allclose(first.features, second.features)


class TestSplits:
    def test_ground_truth_matches_category(self, small_dataset):
        relevant = relevance_ground_truth(small_dataset, 0)
        assert relevant.sum() == 12
        assert relevant[0]

    def test_ground_truth_invalid_query(self, small_dataset):
        with pytest.raises(ValidationError):
            relevance_ground_truth(small_dataset, 10_000)

    def test_relevance_labels(self, small_dataset):
        labels = relevance_labels(small_dataset, 0, [0, 1, 12, 13])
        np.testing.assert_array_equal(labels, [1.0, 1.0, -1.0, -1.0])

    def test_query_sampler_count_and_range(self, small_dataset):
        sampler = QuerySampler(small_dataset, random_state=0)
        queries = sampler.sample(17)
        assert queries.shape == (17,)
        assert queries.min() >= 0
        assert queries.max() < small_dataset.num_images

    def test_query_sampler_stratified_covers_categories(self, small_dataset):
        sampler = QuerySampler(small_dataset, random_state=1)
        queries = sampler.sample(10)
        categories = {small_dataset.category_of(int(q)) for q in queries}
        assert len(categories) == 5  # 10 queries over 5 categories -> all covered

    def test_query_sampler_deterministic(self, small_dataset):
        a = QuerySampler(small_dataset, random_state=3).sample(8)
        b = QuerySampler(small_dataset, random_state=3).sample(8)
        np.testing.assert_array_equal(a, b)

    def test_invalid_query_count(self, small_dataset):
        with pytest.raises(ValidationError):
            QuerySampler(small_dataset).sample(0)


class TestFeatureCache:
    def test_store_and_load(self, tmp_path, small_dataset):
        cache = FeatureCache(tmp_path)
        config = CorelDatasetConfig(num_categories=5, images_per_category=12, image_size=32, seed=3)
        assert not cache.contains(config)
        cache.store(config, small_dataset.features, small_dataset.labels)
        assert cache.contains(config)
        features, labels = cache.load(config)
        np.testing.assert_allclose(features, small_dataset.features)
        np.testing.assert_array_equal(labels, small_dataset.labels)

    def test_load_missing_returns_none(self, tmp_path):
        cache = FeatureCache(tmp_path)
        assert cache.load(CorelDatasetConfig(num_categories=2, images_per_category=2)) is None

    def test_key_depends_on_config(self, tmp_path):
        cache = FeatureCache(tmp_path)
        a = CorelDatasetConfig(num_categories=2, images_per_category=2, seed=1)
        b = CorelDatasetConfig(num_categories=2, images_per_category=2, seed=2)
        assert cache.key_for(a) != cache.key_for(b)
