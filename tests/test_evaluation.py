"""Tests for the evaluation harness (metrics, protocol, results, reporting)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.evaluation.metrics import (
    average_precision_at_cutoffs,
    mean_average_precision,
    precision_at_k,
    precision_curve,
    ranked_average_precision,
)
from repro.evaluation.protocol import EvaluationProtocol, ProtocolConfig
from repro.evaluation.reporting import render_improvement_table, render_series
from repro.evaluation.results import MethodResult, ResultsTable
from repro.evaluation.runner import ExperimentRunner
from repro.exceptions import ConfigurationError, EvaluationError


class TestMetrics:
    def test_precision_at_k_exact(self):
        relevant = np.zeros(10, dtype=bool)
        relevant[[0, 2, 4]] = True
        ranking = [0, 1, 2, 3, 4, 5, 6, 7, 8, 9]
        assert precision_at_k(ranking, relevant, 5) == pytest.approx(3 / 5)
        assert precision_at_k(ranking, relevant, 1) == pytest.approx(1.0)

    def test_precision_at_k_bounds(self):
        relevant = np.ones(4, dtype=bool)
        with pytest.raises(EvaluationError):
            precision_at_k([0, 1], relevant, 3)
        with pytest.raises(EvaluationError):
            precision_at_k([0, 1], relevant, 0)

    def test_precision_curve_keys(self):
        relevant = np.array([True] * 5 + [False] * 15)
        curve = precision_curve(list(range(20)), relevant, cutoffs=(5, 10, 20))
        assert curve == {5: 1.0, 10: 0.5, 20: 0.25}

    def test_average_over_queries(self):
        curves = [{10: 0.4, 20: 0.2}, {10: 0.6, 20: 0.4}]
        averaged = average_precision_at_cutoffs(curves, cutoffs=(10, 20))
        assert averaged[10] == pytest.approx(0.5)
        assert averaged[20] == pytest.approx(0.3)

    def test_average_requires_curves(self):
        with pytest.raises(EvaluationError):
            average_precision_at_cutoffs([], cutoffs=(10,))

    def test_map_is_mean_of_cutoffs(self):
        assert mean_average_precision({10: 0.4, 20: 0.2}) == pytest.approx(0.3)

    def test_ranked_average_precision_perfect(self):
        relevant = np.array([True, True, False, False])
        assert ranked_average_precision([0, 1, 2, 3], relevant) == pytest.approx(1.0)

    def test_ranked_average_precision_no_relevant(self):
        relevant = np.zeros(4, dtype=bool)
        assert ranked_average_precision([0, 1, 2, 3], relevant) == 0.0

    @given(st.integers(1, 50), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_precision_bounded_and_monotone_hits(self, size, seed):
        rng = np.random.default_rng(seed)
        relevant = rng.random(size) > 0.5
        ranking = rng.permutation(size)
        for k in (1, max(size // 2, 1), size):
            value = precision_at_k(ranking, relevant, k)
            assert 0.0 <= value <= 1.0
        # precision * k (number of hits) is non-decreasing in k.
        hits = [precision_at_k(ranking, relevant, k) * k for k in range(1, size + 1)]
        assert all(b >= a - 1e-9 for a, b in zip(hits, hits[1:]))


class TestResultsTable:
    def _table(self):
        table = ResultsTable(dataset_name="unit-test", baseline="rf-svm")
        table.add(MethodResult("euclidean", {20: 0.30, 50: 0.20}))
        table.add(MethodResult("rf-svm", {20: 0.40, 50: 0.30}))
        table.add(MethodResult("lrf-2svms", {20: 0.48, 50: 0.33}))
        table.add(MethodResult("lrf-csvm", {20: 0.56, 50: 0.36}))
        return table

    def test_map_and_improvement(self):
        table = self._table()
        assert table.result("rf-svm").map_score == pytest.approx(0.35)
        improvement = table.improvement_over_baseline("lrf-csvm", 20)
        assert improvement == pytest.approx((0.56 - 0.40) / 0.40)

    def test_cutoffs_common(self):
        assert self._table().cutoffs() == (20, 50)

    def test_missing_method_raises(self):
        with pytest.raises(EvaluationError):
            self._table().result("unknown")

    def test_as_rows_structure(self):
        rows = self._table().as_rows()
        assert len(rows) == 3  # two cutoffs + MAP row
        assert "lrf-csvm_improvement" in rows[0]
        assert "euclidean_improvement" not in rows[0]

    def test_improvement_requires_positive_baseline(self):
        table = ResultsTable(dataset_name="x", baseline="rf-svm")
        table.add(MethodResult("rf-svm", {10: 0.0}))
        table.add(MethodResult("lrf-csvm", {10: 0.5}))
        with pytest.raises(EvaluationError):
            table.improvement_over_baseline("lrf-csvm", 10)

    def test_to_dict_serialisable(self):
        import json

        document = self._table().to_dict()
        json.dumps(document)
        assert document["dataset"] == "unit-test"


class TestReporting:
    def test_improvement_table_contains_methods_and_percentages(self):
        table = ResultsTable(dataset_name="report", baseline="rf-svm")
        table.add(MethodResult("euclidean", {20: 0.3}))
        table.add(MethodResult("rf-svm", {20: 0.4}))
        table.add(MethodResult("lrf-csvm", {20: 0.6}))
        text = render_improvement_table(table, title="Table X")
        assert "Table X" in text
        assert "RF-SVM" in text and "LRF-CSVM" in text
        assert "+50.0%" in text
        assert "MAP" in text

    def test_series_lists_all_cutoffs(self):
        table = ResultsTable(dataset_name="series")
        table.add(MethodResult("euclidean", {20: 0.3, 40: 0.25}))
        table.add(MethodResult("rf-svm", {20: 0.4, 40: 0.31}))
        text = render_series(table)
        assert "@20" in text and "@40" in text
        assert "euclidean" in text and "rf-svm" in text


class TestProtocol:
    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            ProtocolConfig(num_queries=0)
        with pytest.raises(ConfigurationError):
            ProtocolConfig(num_labeled=1)
        with pytest.raises(ConfigurationError):
            ProtocolConfig(cutoffs=())
        with pytest.raises(ConfigurationError):
            ProtocolConfig(feedback_noise=1.2)

    def test_context_construction(self, small_dataset, small_database):
        config = ProtocolConfig(num_queries=4, num_labeled=8, cutoffs=(10, 20), seed=1)
        protocol = EvaluationProtocol(small_dataset, small_database, config)
        queries = protocol.sample_queries()
        assert queries.shape == (4,)
        context = protocol.build_context(int(queries[0]))
        assert context.num_labeled == 8
        assert context.has_both_classes
        relevant = protocol.ground_truth(int(queries[0]))
        assert relevant.shape == (small_dataset.num_images,)

    def test_feedback_noise_flips_labels(self, small_dataset, small_database):
        clean = EvaluationProtocol(
            small_dataset, small_database, ProtocolConfig(num_queries=2, num_labeled=8, cutoffs=(10,), seed=5)
        )
        noisy = EvaluationProtocol(
            small_dataset,
            small_database,
            ProtocolConfig(num_queries=2, num_labeled=8, cutoffs=(10,), feedback_noise=1.0, seed=5),
        )
        query = int(clean.sample_queries()[0])
        clean_labels = clean.build_context(query).labels
        noisy_labels = noisy.build_context(query).labels
        # With noise=1.0 every label is flipped relative to the clean ones
        # (up to the two-class guarantee adjustment on the last element).
        assert np.sum(clean_labels[:-1] != noisy_labels[:-1]) >= len(clean_labels) - 2

    def test_mismatched_dataset_and_database(self, small_dataset, small_database):
        subset = small_dataset.subset(range(24))
        with pytest.raises(EvaluationError):
            EvaluationProtocol(subset, small_database, ProtocolConfig(num_queries=1, cutoffs=(5,)))


class TestRunner:
    def test_runner_produces_table_for_all_methods(self, small_dataset, small_database):
        config = ProtocolConfig(num_queries=3, num_labeled=8, cutoffs=(10, 20), seed=2)
        runner = ExperimentRunner(small_dataset, small_database, protocol=config)
        table = runner.run(["euclidean", "rf-svm"])
        assert set(table.methods) == {"euclidean", "rf-svm"}
        assert table.cutoffs() == (10, 20)
        for method in table.methods:
            result = table.result(method)
            assert 0.0 <= result.map_score <= 1.0
            assert len(result.per_query) == 3

    def test_cutoff_larger_than_database_rejected(self, small_dataset, small_database):
        config = ProtocolConfig(num_queries=1, num_labeled=5, cutoffs=(10_000,), seed=0)
        runner = ExperimentRunner(small_dataset, small_database, protocol=config)
        with pytest.raises(EvaluationError):
            runner.run(["euclidean"])

    def test_empty_algorithm_list_rejected(self, small_dataset, small_database):
        runner = ExperimentRunner(
            small_dataset, small_database,
            protocol=ProtocolConfig(num_queries=1, num_labeled=5, cutoffs=(10,)),
        )
        with pytest.raises(EvaluationError):
            runner.run([])

    def test_runner_accepts_instances(self, small_dataset, small_database):
        from repro.feedback.euclidean import EuclideanFeedback

        runner = ExperimentRunner(
            small_dataset, small_database,
            protocol=ProtocolConfig(num_queries=2, num_labeled=6, cutoffs=(10,), seed=4),
        )
        table = runner.run({"baseline": EuclideanFeedback()})
        assert "baseline" in table.methods
