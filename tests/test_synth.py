"""Tests for the synthetic COREL-like corpus generator (repro.synth)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.synth.categories import (
    COREL_CATEGORY_NAMES,
    CategorySpec,
    corel_category_specs,
)
from repro.synth.generator import CorelLikeGenerator
from repro.synth.palettes import Palette, sample_palette_color
from repro.synth.shapes import draw_blob, draw_ellipse, draw_polygon, draw_stripes
from repro.synth.textures import (
    checkerboard_texture,
    gradient_texture,
    noise_texture,
    sinusoidal_texture,
)


class TestPalette:
    def test_sample_shapes(self):
        palette = Palette(anchors=((0.1, 0.5, 0.5), (0.6, 0.7, 0.8)))
        rng = np.random.default_rng(0)
        hsv = palette.sample_hsv(rng, 10)
        assert hsv.shape == (10, 3)
        assert np.all(hsv >= 0.0) and np.all(hsv <= 1.0)

    def test_rgb_in_range(self):
        palette = Palette(anchors=((0.9, 0.9, 0.9),))
        rgb = palette.sample_rgb(np.random.default_rng(1), 20)
        assert np.all(rgb >= 0.0) and np.all(rgb <= 1.0)

    def test_empty_palette_rejected(self):
        with pytest.raises(ValidationError):
            Palette(anchors=())

    def test_sample_palette_color_deterministic(self):
        palette = Palette(anchors=((0.2, 0.5, 0.5),))
        assert sample_palette_color(palette, 7) == sample_palette_color(palette, 7)


class TestTextures:
    def test_sinusoid_range_and_shape(self):
        texture = sinusoidal_texture(32, 48, frequency=5.0)
        assert texture.shape == (32, 48)
        assert texture.min() >= 0.0 and texture.max() <= 1.0

    def test_sinusoid_orientation_changes_pattern(self):
        horizontal = sinusoidal_texture(32, 32, frequency=4.0, orientation=0.0)
        diagonal = sinusoidal_texture(32, 32, frequency=4.0, orientation=np.pi / 4)
        assert not np.allclose(horizontal, diagonal)

    def test_noise_deterministic_with_seed(self):
        a = noise_texture(24, 24, scale=4, random_state=3)
        b = noise_texture(24, 24, scale=4, random_state=3)
        np.testing.assert_array_equal(a, b)

    def test_noise_range(self):
        texture = noise_texture(16, 16, random_state=0)
        assert texture.min() >= 0.0 and texture.max() <= 1.0

    def test_checkerboard_binary(self):
        board = checkerboard_texture(16, 16, cells=4)
        assert set(np.unique(board)) <= {0.0, 1.0}

    def test_gradient_monotone_along_axis(self):
        gradient = gradient_texture(8, 16, orientation=0.0)
        # orientation 0 -> varies along x only.
        assert np.all(np.diff(gradient, axis=1) >= -1e-12)
        np.testing.assert_allclose(gradient[:, 0], gradient[0, 0])

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            noise_texture(8, 8, scale=0)
        with pytest.raises(ValidationError):
            checkerboard_texture(8, 8, cells=0)


class TestShapes:
    def test_ellipse_contains_centre(self):
        mask = draw_ellipse(32, 32, center=(0.5, 0.5), radii=(0.3, 0.2))
        assert mask[16, 16]
        assert not mask[0, 0]

    def test_ellipse_area_scales_with_radius(self):
        small = draw_ellipse(64, 64, radii=(0.1, 0.1)).sum()
        large = draw_ellipse(64, 64, radii=(0.3, 0.3)).sum()
        assert large > small * 4

    def test_polygon_square(self):
        square = draw_polygon(
            32, 32, [(0.25, 0.25), (0.25, 0.75), (0.75, 0.75), (0.75, 0.25)]
        )
        assert square[16, 16]
        assert not square[2, 2]
        # Roughly half the canvas area.
        assert 0.15 < square.mean() < 0.35

    def test_polygon_needs_three_vertices(self):
        with pytest.raises(ValidationError):
            draw_polygon(16, 16, [(0.1, 0.1), (0.9, 0.9)])

    def test_blob_deterministic(self):
        a = draw_blob(32, 32, random_state=5)
        b = draw_blob(32, 32, random_state=5)
        np.testing.assert_array_equal(a, b)

    def test_blob_nonempty(self):
        assert draw_blob(32, 32, random_state=1).sum() > 10

    def test_stripes_duty_cycle(self):
        mask = draw_stripes(64, 64, count=8, duty_cycle=0.5)
        assert 0.35 < mask.mean() < 0.65

    def test_stripes_invalid_duty_cycle(self):
        with pytest.raises(ValidationError):
            draw_stripes(16, 16, duty_cycle=1.5)


class TestCategorySpecs:
    def test_fifty_unique_names(self):
        assert len(COREL_CATEGORY_NAMES) == 50
        assert len(set(COREL_CATEGORY_NAMES)) == 50

    def test_specs_for_20_and_50(self):
        assert len(corel_category_specs(20)) == 20
        assert len(corel_category_specs(50)) == 50

    def test_spec_names_match_order(self):
        specs = corel_category_specs(10)
        assert [spec.name for spec in specs] == list(COREL_CATEGORY_NAMES[:10])

    def test_out_of_range_rejected(self):
        with pytest.raises(ValidationError):
            corel_category_specs(0)
        with pytest.raises(ValidationError):
            corel_category_specs(51)

    def test_invalid_spec_parameters(self):
        palette = Palette(anchors=((0.5, 0.5, 0.5),))
        with pytest.raises(ValidationError):
            CategorySpec(name="bad", palette=palette, texture="unknown")
        with pytest.raises(ValidationError):
            CategorySpec(name="bad", palette=palette, shape="unknown")


class TestGenerator:
    def test_image_shape_and_metadata(self):
        generator = CorelLikeGenerator(image_size=32, random_state=0)
        spec = corel_category_specs(1)[0]
        image = generator.generate_image(spec, image_id=7, category=0)
        assert image.shape == (32, 32, 3)
        assert image.image_id == 7
        assert image.category == 0
        assert image.category_name == spec.name

    def test_corpus_counts_and_labels(self):
        generator = CorelLikeGenerator(image_size=24, random_state=1)
        specs = corel_category_specs(3)
        corpus = generator.generate_corpus(specs, 5)
        assert len(corpus) == 15
        assert [img.category for img in corpus] == [0] * 5 + [1] * 5 + [2] * 5
        assert [img.image_id for img in corpus] == list(range(15))

    def test_images_within_category_differ(self):
        generator = CorelLikeGenerator(image_size=24, random_state=2)
        spec = corel_category_specs(1)[0]
        images = generator.generate_category(spec, 2)
        assert not np.allclose(images[0].pixels, images[1].pixels)

    def test_determinism_with_same_seed(self):
        spec = corel_category_specs(1)[0]
        a = CorelLikeGenerator(image_size=24, random_state=9).generate_image(spec)
        b = CorelLikeGenerator(image_size=24, random_state=9).generate_image(spec)
        np.testing.assert_array_equal(a.pixels, b.pixels)

    def test_minimum_size_enforced(self):
        with pytest.raises(ValidationError):
            CorelLikeGenerator(image_size=8)

    def test_invalid_count(self):
        generator = CorelLikeGenerator(image_size=24, random_state=0)
        with pytest.raises(ValidationError):
            generator.generate_category(corel_category_specs(1)[0], 0)

    def test_categories_are_visually_distinct(self):
        """Mean pixel colour should separate e.g. 'forest' (green) from 'sunset' (warm)."""
        generator = CorelLikeGenerator(image_size=32, random_state=4)
        specs = {spec.name: spec for spec in corel_category_specs(50)}
        forest = generator.generate_category(specs["forest"], 5)
        sunset = generator.generate_category(specs["sunset"], 5)
        forest_green = np.mean([img.pixels[..., 1].mean() - img.pixels[..., 0].mean() for img in forest])
        sunset_green = np.mean([img.pixels[..., 1].mean() - img.pixels[..., 0].mean() for img in sunset])
        assert forest_green > sunset_green
