"""Tests for repro.utils.io and repro.utils.progress."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.utils.io import load_array_bundle, load_json, save_array_bundle, save_json
from repro.utils.progress import ProgressReporter, track


class TestJsonIO:
    def test_round_trip(self, tmp_path):
        document = {"name": "corel-20", "map": 0.471, "cutoffs": [20, 30]}
        path = save_json(document, tmp_path / "result.json")
        assert load_json(path) == document

    def test_numpy_values_serialised(self, tmp_path):
        document = {"value": np.float64(0.5), "count": np.int64(3), "row": np.arange(3)}
        path = save_json(document, tmp_path / "np.json")
        loaded = load_json(path)
        assert loaded["value"] == 0.5
        assert loaded["count"] == 3
        assert loaded["row"] == [0, 1, 2]

    def test_creates_parent_directories(self, tmp_path):
        path = save_json({"a": 1}, tmp_path / "nested" / "deep" / "doc.json")
        assert path.exists()


class TestArrayBundleIO:
    def test_round_trip(self, tmp_path):
        arrays = {
            "features": np.random.default_rng(0).normal(size=(10, 4)),
            "labels": np.arange(10),
        }
        path = save_array_bundle(arrays, tmp_path / "bundle.npz")
        loaded = load_array_bundle(path)
        np.testing.assert_array_equal(loaded["features"], arrays["features"])
        np.testing.assert_array_equal(loaded["labels"], arrays["labels"])

    def test_keys_preserved(self, tmp_path):
        path = save_array_bundle({"a": np.ones(2), "b": np.zeros(3)}, tmp_path / "x.npz")
        assert set(load_array_bundle(path)) == {"a", "b"}

    @pytest.mark.parametrize("name", ["bare", "corel.index", "weird.tar"])
    def test_returned_path_exists_for_any_suffix(self, tmp_path, name):
        # numpy appends ".npz" to (not replaces) a foreign suffix; the
        # returned path must point at the file actually written.
        path = save_array_bundle({"a": np.ones(2)}, tmp_path / name)
        assert path.exists()
        assert set(load_array_bundle(path)) == {"a"}


class TestProgress:
    def test_reporter_writes_final_line(self):
        stream = io.StringIO()
        reporter = ProgressReporter(3, label="work", stream=stream, min_interval=0.0)
        for _ in range(3):
            reporter.update()
        output = stream.getvalue()
        assert "3/3" in output
        assert output.endswith("\n")

    def test_disabled_reporter_is_silent(self):
        stream = io.StringIO()
        reporter = ProgressReporter(2, stream=stream, enabled=False)
        reporter.update()
        reporter.update()
        assert stream.getvalue() == ""

    def test_track_yields_all_items(self):
        items = list(track([1, 2, 3], enabled=False))
        assert items == [1, 2, 3]
