"""Shared fixtures for the test suite.

The expensive fixtures (rendered corpora, feature matrices, populated
databases) are session-scoped: they are built once with small but
non-degenerate sizes and reused by every test module that needs them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cbir.database import ImageDatabase
from repro.datasets.corel import CorelDatasetConfig, build_corel_dataset
from repro.logdb.simulation import LogSimulationConfig, collect_feedback_log
from repro.synth.categories import corel_category_specs
from repro.synth.generator import CorelLikeGenerator


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """A deterministic RNG for ad-hoc randomness inside tests."""
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_images():
    """A handful of rendered images from three different categories."""
    specs = corel_category_specs(3)
    generator = CorelLikeGenerator(image_size=32, random_state=5)
    return generator.generate_corpus(specs, 4)


@pytest.fixture(scope="session")
def small_dataset():
    """A small 5-category corpus with extracted features (session-scoped)."""
    config = CorelDatasetConfig(
        num_categories=5, images_per_category=12, image_size=32, seed=3
    )
    return build_corel_dataset(config)


@pytest.fixture(scope="session")
def small_log(small_dataset):
    """A simulated feedback log for the small corpus."""
    config = LogSimulationConfig(num_sessions=30, images_per_session=10, noise_rate=0.1, seed=9)
    return collect_feedback_log(small_dataset, config)


@pytest.fixture(scope="session")
def small_database(small_dataset, small_log):
    """An :class:`ImageDatabase` combining the small corpus and its log."""
    return ImageDatabase(small_dataset, log_database=small_log)


@pytest.fixture()
def empty_log_database(small_dataset):
    """A database with no feedback log (cold start)."""
    return ImageDatabase(small_dataset)


@pytest.fixture(scope="session")
def linearly_separable():
    """A tiny linearly separable 2-class problem for SVM tests."""
    generator = np.random.default_rng(0)
    positives = generator.normal(loc=2.0, scale=0.6, size=(25, 2))
    negatives = generator.normal(loc=-2.0, scale=0.6, size=(25, 2))
    features = np.vstack([positives, negatives])
    labels = np.concatenate([np.ones(25), -np.ones(25)])
    return features, labels
