"""Tests for the feature extractors (repro.features)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import FeatureExtractionError, ValidationError
from repro.features.color_moments import ColorMomentsExtractor
from repro.features.composite import CompositeExtractor
from repro.features.edge_histogram import EdgeDirectionHistogramExtractor
from repro.features.normalization import FeatureNormalizer
from repro.features.wavelet_texture import WaveletTextureExtractor
from repro.imaging.image import Image


def _solid_image(rgb, size=32):
    pixels = np.zeros((size, size, 3))
    pixels[..., 0], pixels[..., 1], pixels[..., 2] = rgb
    return Image(pixels=pixels)


def _vertical_edge_image(size=32):
    pixels = np.zeros((size, size, 3))
    pixels[:, size // 2 :, :] = 1.0
    return Image(pixels=pixels)


class TestColorMoments:
    def test_dimension(self):
        assert ColorMomentsExtractor().dimension == 9

    def test_solid_color_moments(self):
        extractor = ColorMomentsExtractor()
        vector = extractor.extract(_solid_image((1.0, 0.0, 0.0)))
        # Solid red: hue mean 0, hue std 0, skew 0; sat mean 1; value mean 1.
        assert vector[0] == pytest.approx(0.0)
        assert vector[1] == pytest.approx(0.0)
        assert vector[3] == pytest.approx(1.0)
        assert vector[6] == pytest.approx(1.0)

    def test_different_colors_differ(self):
        extractor = ColorMomentsExtractor()
        red = extractor.extract(_solid_image((1.0, 0.0, 0.0)))
        blue = extractor.extract(_solid_image((0.0, 0.0, 1.0)))
        assert not np.allclose(red, blue)

    def test_finite_on_random_image(self):
        rng = np.random.default_rng(0)
        image = Image(pixels=rng.random((24, 24, 3)))
        vector = ColorMomentsExtractor().extract(image)
        assert vector.shape == (9,)
        assert np.all(np.isfinite(vector))


class TestEdgeHistogram:
    def test_dimension(self):
        assert EdgeDirectionHistogramExtractor().dimension == 18

    def test_histogram_sums_to_one(self):
        vector = EdgeDirectionHistogramExtractor().extract(_vertical_edge_image())
        assert vector.sum() == pytest.approx(1.0)

    def test_vertical_edge_concentrates_mass(self):
        # A vertical edge produces gradients along x: directions near 0 or 180 deg.
        vector = EdgeDirectionHistogramExtractor().extract(_vertical_edge_image())
        bins_near_0_or_180 = vector[0] + vector[8] + vector[9] + vector[17]
        assert bins_near_0_or_180 > 0.9

    def test_flat_image_uniform_histogram(self):
        vector = EdgeDirectionHistogramExtractor().extract(_solid_image((0.5, 0.5, 0.5)))
        np.testing.assert_allclose(vector, 1.0 / 18.0)

    def test_custom_bin_count(self):
        extractor = EdgeDirectionHistogramExtractor(bins=36)
        assert extractor.dimension == 36
        assert extractor.extract(_vertical_edge_image()).shape == (36,)


class TestWaveletTexture:
    def test_dimension(self):
        assert WaveletTextureExtractor().dimension == 9

    def test_flat_image_zero_entropy(self):
        vector = WaveletTextureExtractor().extract(_solid_image((0.3, 0.3, 0.3)))
        np.testing.assert_allclose(vector, 0.0, atol=1e-9)

    def test_textured_image_positive_entropy(self):
        rng = np.random.default_rng(1)
        image = Image(pixels=rng.random((48, 48, 3)))
        vector = WaveletTextureExtractor().extract(image)
        assert np.all(vector >= 0.0)
        assert vector.max() > 0.5

    def test_small_image_padded(self):
        image = Image(pixels=np.random.default_rng(2).random((16, 16, 3)))
        vector = WaveletTextureExtractor(levels=3).extract(image)
        assert vector.shape == (9,)

    def test_invalid_levels(self):
        with pytest.raises(ValueError):
            WaveletTextureExtractor(levels=0)


class TestComposite:
    def test_default_dimension_is_36(self):
        assert CompositeExtractor().dimension == 36

    def test_extract_batch_shape(self, small_images):
        features = CompositeExtractor().extract_batch(small_images)
        assert features.shape == (len(small_images), 36)
        assert np.all(np.isfinite(features))

    def test_component_slices_cover_vector(self):
        extractor = CompositeExtractor()
        slices = extractor.component_slices()
        assert slices["color_moments"] == slice(0, 9)
        assert slices["edge_direction_histogram"] == slice(9, 27)
        assert slices["wavelet_texture"] == slice(27, 36)

    def test_empty_batch_rejected(self):
        with pytest.raises(FeatureExtractionError):
            CompositeExtractor().extract_batch([])

    def test_same_category_closer_than_different(self, small_images):
        """Images of one category should be closer in feature space on average."""
        extractor = CompositeExtractor()
        features = extractor.extract_batch(small_images)
        labels = np.array([img.category for img in small_images])
        # Standardise columns so no single feature dominates.
        features = (features - features.mean(axis=0)) / (features.std(axis=0) + 1e-9)
        same, different = [], []
        for i in range(len(small_images)):
            for j in range(i + 1, len(small_images)):
                distance = np.linalg.norm(features[i] - features[j])
                (same if labels[i] == labels[j] else different).append(distance)
        assert np.mean(same) < np.mean(different)


class TestFeatureNormalizer:
    def test_transform_standardises(self):
        rng = np.random.default_rng(3)
        matrix = rng.normal(3.0, 2.0, size=(100, 5))
        normalizer = FeatureNormalizer()
        scaled = normalizer.fit_transform(matrix)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-10)

    def test_transform_before_fit_raises(self):
        with pytest.raises(ValidationError):
            FeatureNormalizer().transform(np.ones((2, 3)))

    def test_out_of_sample_uses_fit_statistics(self):
        rng = np.random.default_rng(4)
        train = rng.normal(size=(50, 3))
        normalizer = FeatureNormalizer().fit(train)
        row = np.array([[10.0, 10.0, 10.0]])
        scaled = normalizer.transform(row)
        expected = (row - train.mean(axis=0)) / train.std(axis=0)
        np.testing.assert_allclose(scaled, expected)

    def test_is_fitted_flag(self):
        normalizer = FeatureNormalizer()
        assert not normalizer.is_fitted
        normalizer.fit(np.random.default_rng(5).normal(size=(10, 2)))
        assert normalizer.is_fitted
