"""Concurrency tests: parallel serving, thread-safe stores, atomic writes.

The headline stress test drives one shared :class:`RetrievalService` (one
store, one log database) from many threads with interleaved
open / feedback / close traffic and asserts the PR's guarantees:

* no lost or duplicated log records,
* no duplicate session ids,
* every session's per-round rankings bit-identical to a serial replay.

The rest of the module pins the individual mechanisms: striped locks and
the read-write lock, lock-aware TTL eviction that cannot race a live round,
atomic crash-safe ``FileSessionStore`` writes, the KD-tree deferred-rebuild
guard, and :class:`ParallelScheduler` ≡ :class:`MicroBatchScheduler`
bit-identity.
"""

from __future__ import annotations

import json
import threading
from collections import Counter

import numpy as np
import pytest

from repro.cbir.database import ImageDatabase
from repro.cbir.query import Query
from repro.exceptions import SessionError, ValidationError
from repro.index.kd_tree import KDTreeIndex
from repro.service import (
    FeedbackRequest,
    FileSessionStore,
    InMemorySessionStore,
    ParallelScheduler,
    RetrievalService,
    SearchRequest,
    SessionState,
)
from repro.utils.concurrency import ReadWriteLock, StripedLockMap

NUM_THREADS = 8
SESSIONS_PER_THREAD = 3
NUM_ROUNDS = 2

#: Log-independent schemes: their rankings do not read the shared log, so a
#: serial replay is bit-identical no matter how the concurrent run grew it.
STRESS_ALGORITHMS = ("euclidean", "rf-svm")


@pytest.fixture()
def fresh_database(small_dataset, small_log):
    import copy

    return ImageDatabase(small_dataset, log_database=copy.deepcopy(small_log))


def _category_judgements(dataset, query_index, image_indices):
    category = dataset.category_of(int(query_index))
    return {
        int(i): (1 if dataset.category_of(int(i)) == category else -1)
        for i in image_indices
    }


def _drive_session(service, dataset, query_index, algorithm, session_id=None):
    """Open → NUM_ROUNDS feedback rounds → close; returns per-round rankings
    and the judgement dicts submitted (the expected log records)."""
    request = SearchRequest(
        query=query_index, top_k=10, algorithm=algorithm, session_id=session_id
    )
    response = service.open_session(request)
    rankings = [np.asarray(response.image_indices).copy()]
    submitted = []
    for round_number in range(NUM_ROUNDS):
        judgements = _category_judgements(
            dataset, query_index, response.image_indices[: 10 - 2 * round_number]
        )
        submitted.append(judgements)
        response = service.submit_feedback(
            FeedbackRequest(
                session_id=response.session_id, judgements=judgements, top_k=10
            )
        )
        rankings.append(np.asarray(response.image_indices).copy())
    service.close_session(response.session_id)
    return response.session_id, rankings, submitted


class TestConcurrentServiceStress:
    """≥8 threads hammering one service: logs, ids, and bit-identity."""

    def _run_stress(self, dataset, database, *, scheduler="micro-batch", **kwargs):
        service = RetrievalService(
            database, log_policy="on_close", scheduler=scheduler, **kwargs
        )
        results = {}
        errors = []
        barrier = threading.Barrier(NUM_THREADS)

        def worker(thread_index):
            try:
                barrier.wait(timeout=30)
                for s in range(SESSIONS_PER_THREAD):
                    serial = thread_index * SESSIONS_PER_THREAD + s
                    query_index = serial % dataset.num_images
                    algorithm = STRESS_ALGORITHMS[serial % len(STRESS_ALGORITHMS)]
                    sid, rankings, submitted = _drive_session(
                        service, dataset, query_index, algorithm
                    )
                    results[serial] = (sid, query_index, algorithm, rankings, submitted)
            except BaseException as error:  # noqa: BLE001 - reported to the test
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(NUM_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        service.shutdown()
        assert not errors, f"worker raised: {errors[0]!r}"
        assert not any(thread.is_alive() for thread in threads), "worker deadlocked"
        return service, results

    @pytest.mark.parametrize(
        "scheduler_kwargs",
        [{"scheduler": "micro-batch"}, {"scheduler": "parallel", "max_workers": 4}],
        ids=["micro-batch", "parallel"],
    )
    def test_stress_no_lost_logs_no_duplicate_ids_bit_identical(
        self, small_dataset, fresh_database, scheduler_kwargs
    ):
        log_before = fresh_database.log_database.num_sessions
        service, results = self._run_stress(
            small_dataset, fresh_database, **scheduler_kwargs
        )
        total_sessions = NUM_THREADS * SESSIONS_PER_THREAD

        # -- no duplicate session ids, store drained -----------------------
        session_ids = [sid for sid, *_ in results.values()]
        assert len(results) == total_sessions
        assert len(set(session_ids)) == total_sessions
        assert service.num_open_sessions == 0

        # -- no lost or duplicated log records -----------------------------
        log = fresh_database.log_database
        assert log.num_sessions == log_before + total_sessions * NUM_ROUNDS
        recorded = Counter(
            (session.query_index, json.dumps(dict(session.judgements), sort_keys=True))
            for session in log.sessions[log_before:]
        )
        expected = Counter(
            (query_index, json.dumps(judgements, sort_keys=True))
            for _, query_index, _, _, submitted in results.values()
            for judgements in submitted
        )
        assert recorded == expected

        # -- per-session rankings bit-identical to a serial replay ---------
        replay_service = RetrievalService(fresh_database, log_policy="off")
        for serial in sorted(results):
            _, query_index, algorithm, rankings, submitted = results[serial]
            response = replay_service.open_session(
                SearchRequest(query=query_index, top_k=10, algorithm=algorithm)
            )
            np.testing.assert_array_equal(response.image_indices, rankings[0])
            for round_number, judgements in enumerate(submitted, start=1):
                response = replay_service.submit_feedback(
                    FeedbackRequest(
                        session_id=response.session_id,
                        judgements=judgements,
                        top_k=10,
                    )
                )
                np.testing.assert_array_equal(
                    response.image_indices, rankings[round_number]
                )
            replay_service.discard_session(response.session_id)

    def test_stress_on_file_store(self, small_dataset, fresh_database, tmp_path):
        """The on-disk backend survives the same interleaving (atomic files)."""
        service, results = self._run_stress(
            small_dataset,
            fresh_database,
            store=FileSessionStore(tmp_path / "sessions"),
        )
        assert service.num_open_sessions == 0
        assert len({sid for sid, *_ in results.values()}) == (
            NUM_THREADS * SESSIONS_PER_THREAD
        )
        # No temp droppings left behind by the atomic writes.
        assert not list((tmp_path / "sessions").glob("*tmp*"))

    def test_concurrent_opens_with_same_client_id_yield_one_winner(
        self, fresh_database
    ):
        service = RetrievalService(fresh_database)
        outcomes = []
        barrier = threading.Barrier(4)

        def opener():
            barrier.wait(timeout=10)
            try:
                service.open_session(
                    SearchRequest(query=0, top_k=5, session_id="contested")
                )
                outcomes.append("won")
            except SessionError:
                outcomes.append("lost")

        threads = [threading.Thread(target=opener) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert sorted(outcomes) == ["lost", "lost", "lost", "won"]
        assert service.num_open_sessions == 1


class TestParallelScheduler:
    def test_parallel_results_bit_identical_to_micro_batch(
        self, small_dataset, fresh_database
    ):
        """Same waves, both schedulers: rankings agree index-for-index."""
        algorithms = ["euclidean", "rf-svm", "lrf-csvm", "lrf-2svms"]
        waves = {}
        for name, kwargs in (
            ("serial", {"scheduler": "micro-batch"}),
            ("parallel", {"scheduler": "parallel", "max_workers": 4}),
        ):
            service = RetrievalService(fresh_database, log_policy="off", **kwargs)
            requests = [
                SearchRequest(
                    query=i % small_dataset.num_images,
                    top_k=10,
                    algorithm=algorithms[i % len(algorithms)],
                )
                for i in range(12)
            ]
            responses = service.open_sessions(requests)
            rounds = [[np.asarray(r.image_indices).copy() for r in responses]]
            for _ in range(2):
                batch = [
                    FeedbackRequest(
                        session_id=r.session_id,
                        judgements=_category_judgements(
                            small_dataset,
                            i % small_dataset.num_images,
                            r.image_indices,
                        ),
                        top_k=10,
                    )
                    for i, r in enumerate(responses)
                ]
                responses = service.submit_feedback_batch(batch)
                rounds.append([np.asarray(r.image_indices).copy() for r in responses])
            service.close_sessions([r.session_id for r in responses])
            service.shutdown()
            waves[name] = rounds
        for serial_round, parallel_round in zip(waves["serial"], waves["parallel"]):
            for serial_ranking, parallel_ranking in zip(serial_round, parallel_round):
                np.testing.assert_array_equal(serial_ranking, parallel_ranking)

    def test_max_workers_requires_parallel_scheduler(self, fresh_database):
        with pytest.raises(ValidationError):
            RetrievalService(fresh_database, max_workers=4)
        with pytest.raises(ValidationError):
            RetrievalService(fresh_database, scheduler="warp-drive")

    def test_run_jobs_preserves_order_and_raises_first_error(self, fresh_database):
        from repro.cbir.search import SearchEngine

        scheduler = ParallelScheduler(
            SearchEngine(fresh_database),
            fresh_database.log_database,
            max_workers=4,
        )
        with scheduler:
            assert scheduler.run_jobs([lambda i=i: i * i for i in range(20)]) == [
                i * i for i in range(20)
            ]

            def boom():
                raise RuntimeError("job failed")

            with pytest.raises(RuntimeError, match="job failed"):
                scheduler.run_jobs([lambda: 1, boom, lambda: 3])

    def test_single_flush_discipline_preserved(self, fresh_database):
        service = RetrievalService(
            fresh_database, scheduler="parallel", max_workers=2
        )
        flushes_before = service.scheduler.flushes_
        responses = service.open_sessions(
            [SearchRequest(query=i, top_k=8) for i in range(12)]
        )
        assert len(responses) == 12
        assert service.scheduler.flushes_ == flushes_before + 1
        service.shutdown()


class TestFlushAndLogRobustness:
    """Regression tests for review findings on the atomic-append discipline."""

    def test_failed_search_flush_keeps_queued_log_appends(self, fresh_database):
        """A search wave that raises must not discard other callers' queued
        log records — they stay queued for the next flush."""
        from repro.cbir.search import SearchEngine
        from repro.logdb.session import LogSession
        from repro.service import MicroBatchScheduler

        scheduler = MicroBatchScheduler(
            SearchEngine(fresh_database), fresh_database.log_database
        )
        log_before = fresh_database.log_database.num_sessions
        scheduler.enqueue_log_append(LogSession(judgements={0: 1}))
        # A query with the wrong dimensionality makes batch_search raise.
        scheduler.enqueue_search(
            "bad", Query(feature_vector=np.ones(3)), 5
        )
        with pytest.raises(Exception):
            scheduler.flush()
        assert scheduler.pending == (0, 1)  # the append survived
        assert fresh_database.log_database.num_sessions == log_before
        scheduler.flush()
        assert fresh_database.log_database.num_sessions == log_before + 1

    def test_log_extend_is_all_or_nothing(self, fresh_database):
        from repro.exceptions import LogDatabaseError
        from repro.logdb.session import LogSession

        log = fresh_database.log_database
        before = log.num_sessions
        with pytest.raises(LogDatabaseError):
            log.extend(
                [
                    LogSession(judgements={0: 1}),
                    LogSession(judgements={10**9: 1}),  # out of range
                ]
            )
        assert log.num_sessions == before  # nothing half-applied

    def test_scoring_failure_rolls_back_every_session_in_batch(
        self, small_dataset, fresh_database
    ):
        """A strategy blowing up mid-batch must leave no phantom rounds or
        half-mutated memory on any session of the batch."""
        from repro.feedback.base import RelevanceFeedbackAlgorithm

        class Exploding(RelevanceFeedbackAlgorithm):
            name = "exploding"

            def score(self, context):
                raise RuntimeError("solver blew up")

        service = RetrievalService(fresh_database, log_policy="on_close")
        good = service.open_session(SearchRequest(query=0, top_k=6, algorithm="rf-svm"))
        bad = service.open_session(
            SearchRequest(query=1, top_k=6, algorithm=Exploding())
        )
        judgements = _category_judgements(small_dataset, 0, good.image_indices)
        with pytest.raises(RuntimeError, match="solver blew up"):
            service.submit_feedback_batch(
                [
                    FeedbackRequest(session_id=good.session_id, judgements=judgements),
                    FeedbackRequest(
                        session_id=bad.session_id,
                        judgements={int(bad.image_indices[0]): 1},
                    ),
                ]
            )
        # Both sessions rolled back: no recorded rounds, nothing queued.
        assert service.get_session(good.session_id).rounds_completed == 0
        assert service.get_session(bad.session_id).rounds_completed == 0
        assert service.scheduler.pending == (0, 0)
        # The good session still works — and its close logs exactly one round.
        before = fresh_database.log_database.num_sessions
        service.submit_feedback(good.session_id, judgements)
        service.close_session(good.session_id)
        assert fresh_database.log_database.num_sessions == before + 1

    def test_log_copy_is_a_consistent_snapshot(self, fresh_database):
        import copy

        from repro.logdb.session import LogSession

        log = fresh_database.log_database
        cloned = copy.deepcopy(log)
        sessions_at_copy = cloned.num_sessions
        log.record_session(LogSession(judgements={0: 1}))
        # The clone shares nothing with the original ...
        assert cloned.num_sessions == sessions_at_copy
        # ... and its lazily-rebuilt matrix matches its own session count.
        assert cloned.relevance_matrix().tocsr().shape[0] == sessions_at_copy

    def test_file_store_id_containing_tmp_is_visible(self, tmp_path):
        store = FileSessionStore(tmp_path)
        state = SessionState(session_id="job.tmp-1", query=Query(query_index=0))
        store.put(state)
        assert "job.tmp-1" in store
        assert store.session_ids() == ["job.tmp-1"]

    def test_close_wave_prevalidates_before_mutating(self, small_dataset, fresh_database):
        """A bad id mid-wave must not close earlier sessions or strand
        their log records on the scheduler queue."""
        service = RetrievalService(fresh_database, log_policy="on_close")
        log_before = fresh_database.log_database.num_sessions
        response = service.open_session(0, top_k=6)
        service.submit_feedback(
            response.session_id,
            _category_judgements(small_dataset, 0, response.image_indices),
        )
        with pytest.raises(SessionError):
            service.close_sessions([response.session_id, "bogus"])
        # Nothing mutated: the session is still open, nothing queued/logged.
        assert response.session_id in service.store
        assert service.scheduler.pending == (0, 0)
        assert fresh_database.log_database.num_sessions == log_before
        with pytest.raises(SessionError, match="twice in one close wave"):
            service.close_sessions([response.session_id, response.session_id])
        # A clean close still works and logs exactly once.
        service.close_session(response.session_id)
        assert fresh_database.log_database.num_sessions == log_before + 1

    def test_open_wave_rejects_unstorable_state_before_serving(
        self, fresh_database, tmp_path
    ):
        """An instance-backed request against the file store fails the wave
        up front — no sibling session is persisted."""
        from repro.feedback.rf_svm import RFSVM

        service = RetrievalService(
            fresh_database, store=FileSessionStore(tmp_path / "sessions")
        )
        with pytest.raises(ValidationError, match="instance-backed"):
            service.open_sessions(
                [
                    SearchRequest(query=0, top_k=5),
                    SearchRequest(query=1, top_k=5, algorithm=RFSVM()),
                ]
            )
        assert service.num_open_sessions == 0
        assert service.scheduler.pending == (0, 0)

    def test_shutdown_during_wave_does_not_fail_submissions(self, fresh_database):
        """shutdown() racing an in-flight run_jobs waits instead of killing
        the wave's remaining submissions."""
        from repro.cbir.search import SearchEngine

        scheduler = ParallelScheduler(
            SearchEngine(fresh_database), fresh_database.log_database, max_workers=2
        )
        release = threading.Event()
        started = threading.Event()

        def slow_job(i):
            started.set()
            release.wait(timeout=30)
            return i

        outcome = {}

        def wave():
            outcome["results"] = scheduler.run_jobs(
                [lambda i=i: slow_job(i) for i in range(6)]
            )

        wave_thread = threading.Thread(target=wave)
        wave_thread.start()
        assert started.wait(timeout=10)
        shutdown_thread = threading.Thread(target=scheduler.shutdown)
        shutdown_thread.start()
        release.set()
        wave_thread.join(timeout=30)
        shutdown_thread.join(timeout=30)
        assert outcome["results"] == list(range(6))

    def test_skewed_payload_pair_degrades_to_cold_memory(self):
        """A crash between the store's two renames (bundle one round ahead
        of the document) resumes from the committed round, scratch dropped."""
        newer = SessionState(session_id="s", query=Query(query_index=1))
        newer.apply_round({0: 1, 3: -1})
        newer.apply_round({5: 1})
        newer.memory.set_arrays(warm_indices=np.array([0, 3, 5]))
        newer.last_indices = np.array([5, 0])
        newer.last_scores = np.array([0.9, 0.1])
        _, newer_arrays = newer.to_payload()

        older = SessionState(session_id="s", query=Query(query_index=1))
        older.apply_round({0: 1, 3: -1})
        older_document, _ = older.to_payload()

        resumed = SessionState.from_payload(older_document, newer_arrays)
        assert resumed.rounds_completed == 1  # the committed round wins
        assert resumed.memory.arrays == {}  # skewed scratch dropped
        assert resumed.last_result() is None


class TestLockAwareEviction:
    def test_busy_session_is_skipped_not_evicted(self, fresh_database):
        """Eviction try-locks a session's stripe: a held stripe (a live round
        in another thread) makes eviction skip it until the next tick."""
        clock = {"now": 0.0}
        service = RetrievalService(
            fresh_database, session_ttl=10.0, clock=lambda: clock["now"]
        )
        session_id = service.open_session(0, top_k=5).session_id
        clock["now"] = 100.0  # long expired

        stripe = service._session_locks.lock_for(session_id)
        release = threading.Event()
        holding = threading.Event()

        def hold_stripe():
            with stripe:
                holding.set()
                release.wait(timeout=30)

        holder = threading.Thread(target=hold_stripe)
        holder.start()
        assert holding.wait(timeout=10)
        try:
            # Eviction runs on API entry but must skip the busy session.
            assert service.store.evict_expired(
                clock["now"], locks=service._session_locks
            ) == []
            assert session_id in service.store
        finally:
            release.set()
            holder.join(timeout=10)

        # Stripe free again: the next tick evicts it.
        assert service.store.evict_expired(
            clock["now"], locks=service._session_locks
        ) == [session_id]
        assert session_id not in service.store

    def test_eviction_without_locks_still_works(self, tmp_path):
        store = FileSessionStore(tmp_path, ttl=5.0)
        state = SessionState(
            session_id="old", query=Query(query_index=0), last_active=0.0
        )
        store.put(state)
        assert store.evict_expired(10.0) == ["old"]
        assert "old" not in store


class TestAtomicFileStore:
    def _state(self, session_id="abc"):
        state = SessionState(
            session_id=session_id,
            query=Query(query_index=4),
            algorithm="rf-svm",
            algorithm_params={"C": 5.0},
            top_k=10,
            created_at=1.0,
            last_active=2.0,
        )
        state.apply_round({9: 1, 2: -1})
        state.memory.set_arrays(warm_indices=np.array([9, 2]))
        return state

    def test_crash_mid_json_write_preserves_previous_state(
        self, tmp_path, monkeypatch
    ):
        """Kill the JSON serialisation midway: the committed session must
        survive untouched (the satellite's crash test)."""
        store = FileSessionStore(tmp_path)
        first = self._state()
        store.put(first)

        import repro.utils.io as io_module

        real_dump = io_module.json.dump
        calls = {"n": 0}

        def dying_dump(obj, handle, **kwargs):
            handle.write('{"version": 1, "session_id": "ab')  # truncated junk
            handle.flush()
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(io_module.json, "dump", dying_dump)
        second = self._state()
        second.apply_round({5: 1})
        second.last_active = 99.0
        with pytest.raises(OSError, match="simulated crash"):
            store.put(second)
        monkeypatch.setattr(io_module.json, "dump", real_dump)

        # Same process: the read cache still holds the committed state —
        # fully consistent, warm scratch included (the commit record on
        # disk is unchanged, so the cached entry is exactly it).
        loaded = store.get("abc")
        assert loaded.last_active == 2.0
        assert loaded.round_judgements == [{9: 1, 2: -1}]
        assert loaded.memory.arrays["warm_indices"].tolist() == [9, 2]

        # Fresh process (new store, cold cache): the committed JSON
        # survives and the session loads; the npz had already landed one
        # round ahead, so the skew guard drops the warm scratch (cold
        # resume) rather than pairing mismatched rounds.  No temp files
        # remain.
        reloaded = FileSessionStore(tmp_path).get("abc")
        assert reloaded.last_active == 2.0
        assert reloaded.round_judgements == [{9: 1, 2: -1}]
        assert reloaded.memory.arrays == {}
        assert not list(tmp_path.glob("*tmp*"))

    def test_crash_mid_npz_write_preserves_previous_state(
        self, tmp_path, monkeypatch
    ):
        store = FileSessionStore(tmp_path)
        store.put(self._state())

        import repro.utils.io as io_module

        def dying_savez(path, **arrays):
            with open(path, "wb") as handle:
                handle.write(b"PK\x03\x04 truncated")
            raise OSError("simulated crash mid-write")

        monkeypatch.setattr(io_module.np, "savez_compressed", dying_savez)
        with pytest.raises(OSError, match="simulated crash"):
            store.put(self._state())
        monkeypatch.undo()

        loaded = store.get("abc")
        assert loaded.round_judgements == [{9: 1, 2: -1}]
        assert not list(tmp_path.glob("*tmp*"))

    def test_concurrent_writers_of_distinct_sessions(self, tmp_path):
        """8 threads × distinct ids: every committed session loads complete."""
        store = FileSessionStore(tmp_path)
        errors = []
        barrier = threading.Barrier(NUM_THREADS)

        def writer(thread_index):
            try:
                barrier.wait(timeout=10)
                for version in range(5):
                    state = self._state(session_id=f"s{thread_index}")
                    state.last_active = float(version)
                    store.put(state)
                    loaded = store.get(f"s{thread_index}")
                    assert loaded.session_id == f"s{thread_index}"
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [
            threading.Thread(target=writer, args=(i,)) for i in range(NUM_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, f"writer raised: {errors[0]!r}"
        assert len(store) == NUM_THREADS
        for thread_index in range(NUM_THREADS):
            assert store.get(f"s{thread_index}").last_active == 4.0

    def test_in_memory_store_concurrent_mutation(self):
        store = InMemorySessionStore()
        errors = []

        def churn(thread_index):
            try:
                for version in range(200):
                    sid = f"t{thread_index}-{version % 10}"
                    store.put(SessionState(session_id=sid, query=Query(query_index=0)))
                    store.session_ids()
                    store.delete(sid)
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=churn, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, f"churn raised: {errors[0]!r}"


class TestKDTreeRebuildGuard:
    def test_deferred_rebuild_races_one_rebuild_many_searchers(self, rng):
        """After an add() burst, N racing searchers trigger exactly one
        rebuild and every ranking matches the post-rebuild oracle."""
        vectors = rng.normal(size=(400, 6))
        extra = rng.normal(size=(50, 6))
        # rebuild_threshold=0.0 forces the always-defer path: without it
        # a 50-point burst is absorbed by incremental leaf inserts and no
        # rebuild ever races the searchers.
        index = KDTreeIndex(leaf_size=16, rebuild_threshold=0.0).build(vectors)
        rebuilds_after_build = index.rebuilds_
        index.add(extra)
        assert index.needs_rebuild

        oracle = KDTreeIndex(leaf_size=16).build(np.vstack([vectors, extra]))
        queries = rng.normal(size=(24, 6))
        expected_d, expected_i = oracle.search(queries, 5)

        outputs = {}
        errors = []
        barrier = threading.Barrier(NUM_THREADS)

        def searcher(thread_index):
            try:
                barrier.wait(timeout=10)
                outputs[thread_index] = index.search(queries, 5)
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [
            threading.Thread(target=searcher, args=(i,)) for i in range(NUM_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, f"searcher raised: {errors[0]!r}"
        assert index.rebuilds_ == rebuilds_after_build + 1
        assert not index.needs_rebuild
        for distances, indices in outputs.values():
            np.testing.assert_array_equal(indices, expected_i)
            np.testing.assert_array_equal(distances, expected_d)

    def test_service_drains_rebuild_before_wave(self, fresh_database):
        index = fresh_database.build_index("kd-tree")
        try:
            # Simulate an add-burst leaving the attached tree stale.
            index._pending_rebuild = True
            rebuilds_before = index.rebuilds_
            service = RetrievalService(fresh_database)
            service.open_sessions([SearchRequest(query=i, top_k=5) for i in range(4)])
            assert not index.needs_rebuild
            assert index.rebuilds_ == rebuilds_before + 1
        finally:
            fresh_database.detach_index()


class TestConcurrencyPrimitives:
    def test_striped_lock_map_all_of_is_deadlock_free(self):
        locks = StripedLockMap(num_stripes=4)
        keys_a = [f"a{i}" for i in range(10)]
        keys_b = list(reversed(keys_a))
        done = []

        def waver(keys):
            for _ in range(200):
                with locks.all_of(keys):
                    pass
            done.append(True)

        threads = [
            threading.Thread(target=waver, args=(keys,))
            for keys in (keys_a, keys_b, keys_a[::2], keys_b[::2])
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(done) == 4

    def test_striped_try_lock(self):
        locks = StripedLockMap(num_stripes=2)
        with locks.holding("key"):
            # Same thread re-enters (RLock) ...
            with locks.try_lock("key") as held:
                assert held
        # ... but another thread is refused while the stripe is held.
        refused = threading.Event()
        entered = threading.Event()
        release = threading.Event()

        def holder():
            with locks.holding("key"):
                entered.set()
                release.wait(timeout=30)

        thread = threading.Thread(target=holder)
        thread.start()
        assert entered.wait(timeout=10)

        def prober():
            with locks.try_lock("key") as held:
                if not held:
                    refused.set()

        prober_thread = threading.Thread(target=prober)
        prober_thread.start()
        prober_thread.join(timeout=10)
        release.set()
        thread.join(timeout=10)
        assert refused.is_set()

    def test_read_write_lock_excludes_writers(self):
        lock = ReadWriteLock()
        log = []
        reading = threading.Event()
        release_readers = threading.Event()

        def reader():
            with lock.read_locked():
                reading.set()
                release_readers.wait(timeout=30)
                log.append("read")

        def writer():
            reading.wait(timeout=30)
            with lock.write_locked():
                log.append("write")

        threads = [threading.Thread(target=reader) for _ in range(3)]
        write_thread = threading.Thread(target=writer)
        for thread in threads:
            thread.start()
        write_thread.start()
        release_readers.set()
        for thread in threads + [write_thread]:
            thread.join(timeout=30)
        assert log[-1] == "write" and log.count("read") == 3

    def test_read_write_lock_misuse_raises(self):
        lock = ReadWriteLock()
        with pytest.raises(RuntimeError):
            lock.release_read()
        with pytest.raises(RuntimeError):
            lock.release_write()
