"""Tests of idempotent log appends: ``LogStore.extend_once`` token dedup.

The durable close protocol leans entirely on this primitive: however many
times a close is replayed (worker restart, router re-send, explicit
recovery), the session's records must land in the shared log exactly once.
"""

from __future__ import annotations

import pickle

import pytest

from repro.exceptions import LogDatabaseError
from repro.logdb import (
    FileLogStore,
    InMemoryLogStore,
    LogDatabase,
    LogSession,
)
from repro.logdb.store import LogStore
from repro.utils.io import load_json


def _session(judgements, query=None):
    return LogSession(judgements=judgements, query_index=query)


@pytest.fixture(params=["memory", "file"])
def store(request, tmp_path):
    if request.param == "memory":
        return InMemoryLogStore(num_images=20)
    return FileLogStore(tmp_path / "log", num_images=20)


class TestExtendOnce:
    def test_first_call_commits_and_mints_ids(self, store):
        stored = store.extend_once([_session({0: 1}), _session({1: -1})], "t1")
        assert [s.session_id for s in stored] == [0, 1]
        assert len(store) == 2
        assert store.has_token("t1")

    def test_replay_is_a_no_op(self, store):
        store.extend_once([_session({0: 1})], "t1")
        assert store.extend_once([_session({0: 1})], "t1") == []
        assert len(store) == 1
        # A different token commits independently.
        assert store.extend_once([_session({2: 1})], "t2") != []
        assert len(store) == 2

    def test_has_token_is_per_token(self, store):
        assert not store.has_token("t1")
        store.extend_once([_session({0: 1})], "t1")
        assert store.has_token("t1")
        assert not store.has_token("t2")

    def test_rejects_empty_batch_and_bad_token(self, store):
        with pytest.raises(LogDatabaseError):
            store.extend_once([], "t1")
        with pytest.raises(LogDatabaseError):
            store.extend_once([_session({0: 1})], "")
        with pytest.raises(LogDatabaseError):
            store.extend_once([_session({0: 1})], None)

    def test_plain_extend_never_dedups(self, store):
        store.extend([_session({0: 1})])
        store.extend([_session({0: 1})])
        assert len(store) == 2

    def test_base_class_default_refuses(self):
        class Minimal(LogStore):
            kind = "minimal"

            def __len__(self):
                return 0

            def extend(self, sessions):
                return []

            def scan(self, start=0, stop=None):
                return []

        with pytest.raises(LogDatabaseError, match="idempotent"):
            Minimal(num_images=5).extend_once([_session({0: 1})], "t")


class TestFileStoreDurability:
    def test_token_commits_atomically_with_segment(self, tmp_path):
        store = FileLogStore(tmp_path / "log", num_images=20)
        store.extend_once([_session({0: 1})], "t1")
        manifest = load_json(tmp_path / "log" / "manifest.json")
        assert manifest["applied_tokens"] == ["t1"]
        assert len(manifest["segments"]) == 1

    def test_tokens_survive_reopen_and_compaction(self, tmp_path):
        store = FileLogStore(tmp_path / "log", num_images=20)
        store.extend_once([_session({0: 1})], "t1")
        store.extend([_session({1: 1})])
        store.compact()
        reopened = FileLogStore(tmp_path / "log")
        assert reopened.has_token("t1")
        assert reopened.extend_once([_session({0: 1})], "t1") == []
        assert len(reopened) == 2

    def test_orphan_segment_is_overwritten_on_replay(self, tmp_path):
        # Simulate a crash between segment write and manifest commit: the
        # segment exists but neither manifest entry nor token does.  The
        # replayed call must commit cleanly over the orphan.
        store = FileLogStore(tmp_path / "log", num_images=20)
        manifest = store._read_manifest()
        store._append_locked(manifest, [_session({0: 1})])  # no save_json
        assert not store.has_token("t1")
        assert len(store) == 0
        stored = store.extend_once([_session({0: 1})], "t1")
        assert [s.session_id for s in stored] == [0]
        assert len(store) == 1
        assert store.scan()[0].judgements == {0: 1}

    def test_cross_process_visibility(self, tmp_path):
        writer = FileLogStore(tmp_path / "log", num_images=20)
        writer.extend_once([_session({0: 1})], "t1")
        other = FileLogStore(tmp_path / "log")  # a second "process"
        assert other.extend_once([_session({0: 1})], "t1") == []
        assert len(other) == 1

    def test_memory_store_tokens_survive_pickling(self):
        store = InMemoryLogStore(num_images=20)
        store.extend_once([_session({0: 1})], "t1")
        clone = pickle.loads(pickle.dumps(store))
        assert clone.has_token("t1")
        assert clone.extend_once([_session({0: 1})], "t1") == []


class TestLogDatabasePassthrough:
    def test_extend_once_via_log_database(self):
        database = LogDatabase(store=InMemoryLogStore(num_images=20))
        stored = database.extend_once([_session({0: 1})], "t1")
        assert len(stored) == 1
        assert database.extend_once([_session({0: 1})], "t1") == []
        assert database.num_sessions == 1
