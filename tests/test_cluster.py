"""Tests of the :mod:`repro.cluster` tier: routing, lifecycle, failure.

The load-bearing guarantees:

* a cluster serves the same rankings as a single-process service
  (bit-identical indices — workers run the exact same stack);
* rendezvous hashing is deterministic and minimally disruptive (killing a
  worker only re-routes the sessions that lived on it);
* a SIGKILLed worker mid-feedback-wave degrades gracefully — requests
  re-route or fail with typed errors, nothing hangs, and after recovery
  the shared log holds **exactly one** record per completed round (no
  losses, no duplicates);
* the whole fleet dying surfaces :class:`NoWorkersError`, not a deadlock.
"""

from __future__ import annotations

import collections
import threading
import time

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ClusterRouter
from repro.cluster.messages import WorkerRequest
from repro.datasets.pool import GaussianPoolConfig, make_pool_dataset
from repro.exceptions import (
    ClusterError,
    NoWorkersError,
    SessionError,
    ValidationError,
    WorkerDiedError,
)
from repro.logdb import FileLogStore
from repro.obs import configure, get_hub
from repro.service import RetrievalService, SearchRequest
from repro.service.store import FileSessionStore
from repro.cbir.database import ImageDatabase

POOL_CONFIG = GaussianPoolConfig(
    num_vectors=300, dim=6, num_clusters=5, num_queries=4, seed=11
)


def _factory():
    dataset, _ = make_pool_dataset(POOL_CONFIG, name="cluster-test")
    return dataset


def _config(tmp_path, **overrides):
    defaults = dict(
        session_dir=tmp_path / "sessions",
        log_dir=tmp_path / "log",
        num_workers=2,
        coalesce_window=0.002,
        request_timeout=20.0,
        retry_limit=3,
        poll_interval=0.02,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


@pytest.fixture(params=["queue", "socket"])
def cluster(request, tmp_path):
    # Every test using this fixture runs once per transport: the socket
    # framing must be behaviourally indistinguishable from the queue pair.
    router = ClusterRouter(_factory, _config(tmp_path, transport=request.param))
    yield router
    router.stop()


class TestConfigValidation:
    def test_rejects_bad_values(self, tmp_path):
        good = dict(session_dir=tmp_path / "s", log_dir=tmp_path / "l")
        with pytest.raises(ValidationError, match="num_workers"):
            ClusterConfig(num_workers=0, **good)
        with pytest.raises(ValidationError, match="log_policy"):
            ClusterConfig(log_policy="sometimes", **good)
        with pytest.raises(ValidationError, match="scheduler"):
            ClusterConfig(scheduler="cosmic", **good)
        with pytest.raises(ValidationError, match="coalesce_window"):
            ClusterConfig(coalesce_window=-1, **good)
        with pytest.raises(ValidationError, match="max_wave"):
            ClusterConfig(max_wave=0, **good)
        with pytest.raises(ValidationError, match="retry_limit"):
            ClusterConfig(retry_limit=-1, **good)

    def test_rejects_unknown_op(self):
        with pytest.raises(ValidationError, match="unknown cluster op"):
            WorkerRequest(1, "frobnicate", ())


class TestRouting:
    def test_rendezvous_is_deterministic(self, cluster):
        ids = [f"session-{i}" for i in range(40)]
        first = {sid: cluster.worker_for(sid) for sid in ids}
        second = {sid: cluster.worker_for(sid) for sid in ids}
        assert first == second
        # Both workers get some share of a 40-session population.
        assert len(set(first.values())) == cluster.num_workers

    def test_death_only_moves_the_dead_workers_sessions(self, tmp_path):
        with ClusterRouter(_factory, _config(tmp_path, num_workers=3)) as router:
            ids = [f"session-{i}" for i in range(60)]
            before = {sid: router.worker_for(sid) for sid in ids}
            victim = router.worker_for(ids[0])
            router.kill_worker(victim)
            deadline = time.time() + 5.0
            while victim in router.alive_worker_ids and time.time() < deadline:
                time.sleep(0.02)
            assert victim not in router.alive_worker_ids
            for sid in ids:
                after = router.worker_for(sid)
                if before[sid] == victim:
                    assert after != victim  # re-routed somewhere alive
                else:
                    assert after == before[sid]  # undisturbed (rendezvous)


class TestLifecycle:
    def test_open_feedback_close_roundtrip(self, cluster):
        response = cluster.open_session(0, top_k=10, algorithm="euclidean")
        assert response.round_index == 0
        assert len(response.image_indices) == 10
        refined = cluster.submit_feedback(
            response.session_id, {int(response.image_indices[0]): 1}
        )
        assert refined.round_index == 1
        last = cluster.last_response(response.session_id)
        assert last.round_index == 1
        np.testing.assert_array_equal(last.image_indices, refined.image_indices)
        view = cluster.close_session(response.session_id)
        assert view.closed and view.rounds_completed == 1
        assert cluster.session_ids() == []

    def test_cluster_matches_single_process_service(self, cluster, tmp_path):
        # The same stack served locally must produce bit-identical rankings:
        # a cluster is a deployment choice, not a different algorithm.
        local = RetrievalService(
            ImageDatabase(_factory()),
            store=FileSessionStore(tmp_path / "local-sessions"),
            default_algorithm="euclidean",
        )
        for query, algorithm in ((0, "euclidean"), (7, "rf-svm")):
            remote0 = cluster.open_session(query, top_k=12, algorithm=algorithm)
            local0 = local.open_session(query, top_k=12, algorithm=algorithm)
            np.testing.assert_array_equal(
                remote0.image_indices, local0.image_indices
            )
            judgements = {
                int(idx): (1 if rank % 2 == 0 else -1)
                for rank, idx in enumerate(remote0.image_indices[:6])
            }
            remote1 = cluster.submit_feedback(remote0.session_id, judgements)
            local1 = local.submit_feedback(local0.session_id, judgements)
            np.testing.assert_array_equal(
                remote1.image_indices, local1.image_indices
            )
            cluster.close_session(remote0.session_id)
            local.close_session(local0.session_id)

    def test_concurrent_clients_coalesce_into_waves(self, tmp_path):
        config = _config(tmp_path, coalesce_window=0.02, observability=False)
        configure()  # fresh hub so the wave histogram starts empty
        try:
            with ClusterRouter(_factory, config) as router:
                results = []

                def client(i):
                    opened = router.open_session(
                        i % 20, top_k=10, algorithm="euclidean"
                    )
                    refined = router.submit_feedback(
                        opened.session_id, {int(opened.image_indices[0]): 1}
                    )
                    router.close_session(opened.session_id)
                    results.append(refined.round_index)

                threads = [
                    threading.Thread(target=client, args=(i,)) for i in range(12)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                assert results == [1] * 12
                waves = get_hub().metrics.histogram("cluster.wave.size")
                assert waves.count > 0
                # With 12 concurrent per-call clients and a 20ms window, at
                # least one shipped wave must have coalesced multiple items.
                assert waves.snapshot()["max"] >= 2
        finally:
            get_hub().enabled = False

    def test_single_worker_cluster_works(self, tmp_path):
        with ClusterRouter(_factory, _config(tmp_path, num_workers=1)) as router:
            opened = router.open_session(3, top_k=8, algorithm="euclidean")
            refined = router.submit_feedback(
                opened.session_id, {int(opened.image_indices[0]): 1}
            )
            assert refined.round_index == 1
            assert router.close_session(opened.session_id).closed

    def test_ping_and_stats(self, cluster):
        assert cluster.ping() == {0: "pong", 1: "pong"}
        cluster.open_session(1, top_k=5, algorithm="euclidean")
        stats = cluster.stats()
        assert stats["alive_workers"] == 2
        assert stats["open_sessions"] == 1
        assert set(stats["per_worker"]) == {0, 1}
        # The session store is shared: every worker sees the same count.
        assert all(
            w["open_sessions"] == 1 for w in stats["per_worker"].values()
        )

    def test_stop_is_idempotent_and_rejects_new_work(self, tmp_path):
        router = ClusterRouter(_factory, _config(tmp_path))
        router.stop()
        router.stop()
        with pytest.raises(ClusterError, match="not running"):
            router.open_session(0, algorithm="euclidean")


class TestErrorPropagation:
    def test_unknown_session_raises_typed_error(self, cluster):
        with pytest.raises(SessionError):
            cluster.submit_feedback("no-such-session", {0: 1})
        with pytest.raises(SessionError):
            cluster.get_session("no-such-session")
        with pytest.raises(SessionError):
            cluster.close_session("no-such-session")

    def test_algorithm_instances_are_rejected(self, cluster):
        from repro.feedback import make_algorithm

        with pytest.raises(ValidationError, match="registry-named"):
            cluster.open_session(0, algorithm=make_algorithm("euclidean"))

    def test_duplicate_session_id_fails_alone(self, cluster):
        cluster.open_session(0, session_id="taken", algorithm="euclidean")
        with pytest.raises(SessionError):
            cluster.open_session(1, session_id="taken", algorithm="euclidean")
        # The original session is unharmed by the rejected duplicate.
        assert cluster.get_session("taken").rounds_completed == 0
        cluster.close_session("taken")

    def test_bad_item_in_coalesced_wave_fails_alone(self, tmp_path):
        # One malformed request coalescing into a wave with a healthy one
        # must not fail the healthy request (per-item fallback).
        config = _config(tmp_path, coalesce_window=0.05)
        with ClusterRouter(_factory, config) as router:
            router.open_session(0, session_id="dup", algorithm="euclidean")
            outcomes = {}

            def opener(name, request):
                try:
                    outcomes[name] = router.open_sessions([request])[0]
                except Exception as exc:
                    outcomes[name] = exc

            good = SearchRequest(query=1, algorithm="euclidean",
                                 session_id="fresh")
            bad = SearchRequest(query=2, algorithm="euclidean",
                                session_id="dup")
            # Same rendezvous target: both ids hash wherever they hash, so
            # force the wave by aligning the ids' routes.
            threads = [
                threading.Thread(target=opener, args=("good", good)),
                threading.Thread(target=opener, args=("bad", bad)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert isinstance(outcomes["bad"], SessionError)
            assert outcomes["good"].session_id == "fresh"
            router.close_session("fresh")
            router.close_session("dup")


class TestWorkerDeath:
    def test_kill_mid_feedback_wave_recovers_exactly_once(self, tmp_path):
        """The acceptance-criteria chaos test.

        SIGKILL a worker while a delayed feedback wave is in flight on it.
        Every session must still complete its rounds (re-routed to the
        survivor), and after closing, the shared log must hold exactly
        ``rounds`` records per session — no lost rounds, no duplicates
        from the re-send path.
        """
        config = _config(
            tmp_path, num_workers=2, debug_feedback_delay=0.4,
            request_timeout=20.0,
        )
        with ClusterRouter(_factory, config) as router:
            requests = [
                SearchRequest(query=i, top_k=10, algorithm="euclidean")
                for i in range(6)
            ]
            opens = router.open_sessions(requests)
            session_ids = [r.session_id for r in opens]
            victim = router.worker_for(session_ids[0])
            failures = []
            rounds = {}

            def one_round(response):
                try:
                    refined = router.submit_feedback(
                        response.session_id,
                        {int(response.image_indices[0]): 1},
                    )
                    rounds[response.session_id] = refined.round_index
                except Exception as exc:  # pragma: no cover - assertion aid
                    failures.append((response.session_id, exc))

            threads = [
                threading.Thread(target=one_round, args=(r,)) for r in opens
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.15)  # inside the 0.4s in-flight window
            router.kill_worker(victim)
            for thread in threads:
                thread.join()

            assert failures == []
            assert sorted(rounds.values()) == [1] * 6
            assert router.alive_worker_ids == [w for w in (0, 1) if w != victim]

            # A second round and the close both land on the survivor.
            for session_id in session_ids:
                last = router.last_response(session_id)
                assert last.round_index == 1
                refined = router.submit_feedback(
                    session_id, {int(last.image_indices[1]): 1}
                )
                assert refined.round_index == 2
            views = router.close_sessions(session_ids)
            assert all(v.closed and v.rounds_completed == 2 for v in views)

            # Exactly-once: each session contributed exactly its two rounds.
            counts = collections.Counter(
                record.query_index for record in FileLogStore(tmp_path / "log").scan()
            )
            assert counts == {i: 2 for i in range(6)}

    def test_all_workers_dead_raises_no_workers_not_deadlock(self, tmp_path):
        config = _config(
            tmp_path, num_workers=2, request_timeout=5.0, retry_limit=1
        )
        with ClusterRouter(_factory, config) as router:
            opened = router.open_session(0, top_k=5, algorithm="euclidean")
            for worker_id in list(router.alive_worker_ids):
                router.kill_worker(worker_id)
            deadline = time.time() + 5.0
            while router.alive_worker_ids and time.time() < deadline:
                time.sleep(0.02)
            started = time.time()
            with pytest.raises((NoWorkersError, WorkerDiedError)):
                router.submit_feedback(
                    opened.session_id, {int(opened.image_indices[0]): 1}
                )
            # Typed failure well inside the timeout bound: no hang.
            assert time.time() - started < config.request_timeout + 5.0

    def test_auto_restart_restores_capacity_and_counts(self, tmp_path):
        configure()  # fresh hub: the restart counter starts at zero
        try:
            config = _config(
                tmp_path, num_workers=2, auto_restart=True, retry_limit=3
            )
            with ClusterRouter(_factory, config) as router:
                victim = router.worker_for("anything")
                router.kill_worker(victim)
                deadline = time.time() + 10.0
                while router.restarts < 1 and time.time() < deadline:
                    time.sleep(0.02)
                assert router.restarts == 1
                deadline = time.time() + 10.0
                while len(router.alive_worker_ids) < 2 and time.time() < deadline:
                    time.sleep(0.02)
                assert router.alive_worker_ids == [0, 1]
                hub = get_hub()
                assert hub.metrics.counter("cluster.worker.restarts").value == 1
                assert hub.metrics.gauge("cluster.workers.alive").value == 2
                # The restarted fleet serves normally.
                opened = router.open_session(2, top_k=5, algorithm="euclidean")
                assert router.close_session(opened.session_id).closed
        finally:
            get_hub().enabled = False
