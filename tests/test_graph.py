"""Tests for :mod:`repro.graph` — the label-propagation feedback family.

Covers the tentpole and its satellites: deterministic k-NN graph
construction (any exhaustive index backend, bit-identical), persistence,
the process-level graph cache, the fused visual/log kernel (sparse-only:
the dense snapshot path must stay untouched), the clamped-propagation /
α-spreading solvers, and the ``"lrf-graph"`` algorithm end to end —
registry, cold start, service integration (serial, parallel and cluster
schedulers) and bit-identical replay from a reloaded
:class:`~repro.service.FileSessionStore`.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse

from repro.cbir.database import ImageDatabase
from repro.cluster import ClusterConfig, ClusterRouter
from repro.datasets.pool import GaussianPoolConfig, make_gaussian_pool, make_pool_dataset
from repro.exceptions import ValidationError
from repro.feedback.base import FeedbackContext, FeedbackMemory
from repro.feedback.registry import available_algorithms, make_algorithm
from repro.graph import (
    AffinityGraph,
    GraphCache,
    KNNGraphBuilder,
    LabelPropagationFeedback,
    default_graph_cache,
    fuse_with_log,
    log_corelevance,
    propagate_labels,
)
from repro.index.brute_force import BruteForceIndex
from repro.index.ivf import IVFIndex
from repro.index.kd_tree import KDTreeIndex
from repro.index.lsh import LSHIndex
from repro.logdb import LogDatabase
from repro.service import FileSessionStore, RetrievalService, SearchRequest


@pytest.fixture(scope="module")
def features():
    """A clustered pool with duplicated rows to exercise tie-breaking."""
    vectors, _ = make_gaussian_pool(
        GaussianPoolConfig(num_vectors=120, dim=6, num_clusters=4, num_queries=1, seed=7)
    )
    vectors[30:35] = vectors[0:5]  # exact duplicates → distance ties
    return vectors


def _chain_graph(num_nodes: int = 5) -> sparse.csr_matrix:
    """A hand-built path graph 0 — 1 — ... — (n-1) with unit weights."""
    rows = list(range(num_nodes - 1)) + list(range(1, num_nodes))
    cols = list(range(1, num_nodes)) + list(range(num_nodes - 1))
    data = np.ones(len(rows))
    return sparse.csr_matrix((data, (rows, cols)), shape=(num_nodes, num_nodes))


def _category_judgements(dataset, query_index, image_indices):
    category = dataset.category_of(int(query_index))
    return {
        int(i): (1 if dataset.category_of(int(i)) == category else -1)
        for i in image_indices
    }


class TestKNNGraphBuilder:
    def test_parameter_validation(self):
        with pytest.raises(ValidationError):
            KNNGraphBuilder(k=0)
        with pytest.raises(ValidationError):
            KNNGraphBuilder(weighting="cubic")
        with pytest.raises(ValidationError):
            KNNGraphBuilder(symmetrize="min")
        with pytest.raises(ValidationError):
            KNNGraphBuilder(gamma=-1.0)

    def test_rejects_degenerate_features(self):
        builder = KNNGraphBuilder(k=2)
        with pytest.raises(ValidationError):
            builder.build(np.ones((1, 3)))
        with pytest.raises(ValidationError):
            builder.build(np.array([[np.nan, 0.0], [1.0, 2.0]]))

    def test_graph_is_symmetric_nonnegative_hollow(self, features):
        graph = KNNGraphBuilder(k=8).build(features)
        weights = graph.weights
        assert graph.num_nodes == features.shape[0]
        assert (abs(weights - weights.T)).max() < 1e-12
        assert weights.data.min() > 0.0
        assert weights.diagonal().max() == 0.0

    def test_every_node_keeps_k_outgoing_edges(self, features):
        k = 6
        graph = KNNGraphBuilder(k=k, symmetrize="max").build(features)
        # Max-symmetrisation only adds edges, so every node has >= k.
        degrees = np.diff(graph.weights.indptr)
        assert degrees.min() >= k

    def test_k_clamped_to_pool_size(self):
        rng = np.random.default_rng(3)
        small = rng.normal(size=(5, 3))
        graph = KNNGraphBuilder(k=50).build(small)
        assert graph.params["k"] == 4  # N - 1

    def test_connectivity_weighting_is_binary(self, features):
        graph = KNNGraphBuilder(k=5, weighting="connectivity").build(features)
        assert set(np.unique(graph.weights.data)) == {1.0}
        assert graph.params["gamma"] is None

    def test_rbf_gamma_scale_matches_kernel_convention(self, features):
        from repro.svm.kernels import RBFKernel

        graph = KNNGraphBuilder(k=5, gamma="scale").build(features)
        expected = float(RBFKernel("scale").fit(features).gamma_)
        assert graph.params["gamma"] == pytest.approx(expected)

    def test_mean_symmetrize_halves_one_directional_edges(self):
        # Three collinear points: 0 and 2 both pick 1 as nearest, 1 picks 0.
        points = np.array([[0.0], [1.0], [2.5]])
        graph = KNNGraphBuilder(k=1, weighting="connectivity", symmetrize="mean").build(
            points
        )
        dense = graph.weights.toarray()
        assert dense[0, 1] == 1.0  # mutual edge keeps full weight
        assert dense[2, 1] == 0.5  # one-directional edge halved
        assert dense[1, 2] == 0.5

    def test_explicit_index_must_cover_features(self, features):
        foreign = BruteForceIndex().build(features[:-1])
        with pytest.raises(ValidationError):
            KNNGraphBuilder(k=4).build(features, index=foreign)
        mismatched = BruteForceIndex(metric="manhattan").build(features)
        with pytest.raises(ValidationError):
            KNNGraphBuilder(k=4).build(features, index=mismatched)


class TestGraphDeterminismAcrossBackends:
    """The satellite: exhaustive backends produce bit-identical graphs."""

    EXHAUSTIVE = {
        "brute-force": lambda: BruteForceIndex(),
        "kd-tree": lambda: KDTreeIndex(leaf_size=7),
        "lsh": lambda: LSHIndex(num_tables=3, num_bits=0),
        "ivf": lambda: IVFIndex(n_clusters=6, n_probe=6, kmeans_iters=3),
    }

    @pytest.mark.parametrize("kind", sorted(EXHAUSTIVE))
    def test_graph_bit_identical_to_exact_fallback(self, kind, features):
        builder = KNNGraphBuilder(k=7)
        reference = builder.build(features)  # internal exact scan
        index = self.EXHAUSTIVE[kind]().build(features)
        graph = builder.build(features, index=index)
        assert (reference.weights != graph.weights).nnz == 0
        np.testing.assert_array_equal(reference.weights.data, graph.weights.data)
        np.testing.assert_array_equal(reference.weights.indices, graph.weights.indices)
        np.testing.assert_array_equal(reference.weights.indptr, graph.weights.indptr)


class TestAffinityGraphPersistence:
    def test_save_load_round_trip(self, features, tmp_path):
        graph = KNNGraphBuilder(k=5).build(features)
        path = graph.save(tmp_path / "visual.npz")
        loaded = AffinityGraph.load(path)
        assert loaded.params == graph.params
        assert (loaded.weights != graph.weights).nnz == 0
        np.testing.assert_array_equal(loaded.weights.data, graph.weights.data)

    def test_load_rejects_foreign_bundle(self, tmp_path):
        from repro.utils.io import save_array_bundle

        path = save_array_bundle({"stuff": np.ones(3)}, tmp_path / "not-a-graph.npz")
        with pytest.raises(ValidationError):
            AffinityGraph.load(path)

    def test_rejects_non_square_weights(self):
        with pytest.raises(ValidationError):
            AffinityGraph(sparse.csr_matrix(np.ones((2, 3))), params={})


class TestGraphCache:
    def test_hit_returns_same_object(self, features):
        cache = GraphCache()
        builder = KNNGraphBuilder(k=4)
        first = cache.get_or_build(features, builder.signature(), lambda: builder.build(features))
        second = cache.get_or_build(features, builder.signature(), lambda: builder.build(features))
        assert first is second
        assert cache.hits == 1 and cache.misses == 1

    def test_signature_miss_builds_again(self, features):
        cache = GraphCache()
        b4 = KNNGraphBuilder(k=4)
        b5 = KNNGraphBuilder(k=5)
        g4 = cache.get_or_build(features, b4.signature(), lambda: b4.build(features))
        g5 = cache.get_or_build(features, b5.signature(), lambda: b5.build(features))
        assert g4 is not g5
        assert cache.misses == 2 and len(cache) == 2

    def test_dead_features_release_their_entry(self):
        cache = GraphCache()
        builder = KNNGraphBuilder(k=2)
        matrix = np.random.default_rng(0).normal(size=(10, 3))
        cache.get_or_build(matrix, builder.signature(), lambda: builder.build(matrix))
        assert len(cache) == 1
        del matrix
        import gc

        gc.collect()
        assert len(cache) == 0

    def test_capacity_evicts_lru(self):
        cache = GraphCache(capacity=1)
        builder = KNNGraphBuilder(k=2)
        a = np.random.default_rng(1).normal(size=(8, 3))
        b = np.random.default_rng(2).normal(size=(8, 3))
        cache.get_or_build(a, builder.signature(), lambda: builder.build(a))
        cache.get_or_build(b, builder.signature(), lambda: builder.build(b))
        assert len(cache) == 1
        cache.get_or_build(a, builder.signature(), lambda: builder.build(a))
        assert cache.misses == 3  # a was evicted, rebuilt on return

    def test_default_cache_is_shared(self):
        assert default_graph_cache() is default_graph_cache()


class TestLogCorelevanceKernel:
    def _snapshot(self, judgement_rows, num_images):
        log = LogDatabase(num_images)
        for row in judgement_rows:
            log.record_judgements(row)
        return log.snapshot()

    def test_co_relevance_counts_agreements(self):
        snapshot = self._snapshot(
            [{0: 1, 1: 1, 2: -1}, {0: 1, 1: 1}, {0: 1, 2: 1}, {1: 1, 3: 1}],
            num_images=4,
        )
        affinity = log_corelevance(snapshot).toarray()
        # 0,1 agree twice (the max) → 1.0 after rescale; 1,3 agree once
        # → 0.5; 0,2 agree once and disagree once → net zero; 1,2 only
        # disagree → clipped to zero.
        assert affinity[0, 1] == 1.0
        assert affinity[1, 3] == 0.5
        assert affinity[0, 2] == 0.0
        assert affinity[1, 2] == 0.0
        assert affinity.max() <= 1.0 and affinity.min() >= 0.0
        np.testing.assert_array_equal(np.diag(affinity), 0.0)
        np.testing.assert_allclose(affinity, affinity.T)

    def test_net_disagreement_is_no_affinity(self):
        snapshot = self._snapshot([{0: 1, 1: -1}], num_images=2)
        affinity = log_corelevance(snapshot)
        assert affinity.nnz == 0

    def test_never_densifies_the_snapshot(self):
        from repro.obs import InMemoryExporter, configure, disable

        snapshot = self._snapshot([{0: 1, 1: 1}], num_images=3)
        configure(exporters=[InMemoryExporter()])
        try:
            visual = sparse.identity(3, format="csr")
            fuse_with_log(visual, snapshot, eta=0.5)
            from repro.obs import get_hub

            hub = get_hub()
            assert hub.metrics.counter("logdb.snapshot_densifications").value == 0
        finally:
            disable()
        # The dense cache slot must still be empty; the CSR view is cached.
        assert snapshot._dense is None
        assert snapshot._csr is not None

    def test_log_csr_is_read_only_and_shared(self):
        snapshot = self._snapshot([{0: 1}], num_images=2)
        view = snapshot.log_csr()
        assert view is snapshot.log_csr()
        with pytest.raises(ValueError):
            view.data[0] = 99.0
        # Dense path still works afterwards and is unaffected.
        dense = snapshot.log_vectors()
        assert dense.shape == (2, 1)

    def test_fuse_validations_and_degradations(self):
        empty = LogDatabase(3).snapshot()
        visual = sparse.identity(3, format="csr")
        with pytest.raises(ValidationError):
            fuse_with_log(visual, empty, eta=1.5)
        assert fuse_with_log(visual, empty, eta=0.7) is not None
        # Empty log or eta=0 short-circuit to the visual matrix.
        rich = self._snapshot([{0: 1, 1: 1}], num_images=3)
        assert fuse_with_log(visual, rich, eta=0.0).nnz == visual.nnz
        wrong = self._snapshot([{0: 1, 1: 1}], num_images=5)
        with pytest.raises(ValidationError):
            fuse_with_log(visual, wrong, eta=0.5)

    def test_fusion_is_convex_mix(self):
        snapshot = self._snapshot([{0: 1, 1: 1}], num_images=2)
        visual = sparse.csr_matrix(np.array([[0.0, 0.4], [0.4, 0.0]]))
        fused = fuse_with_log(visual, snapshot, eta=0.25).toarray()
        assert fused[0, 1] == pytest.approx(0.75 * 0.4 + 0.25 * 1.0)


class TestPropagation:
    def test_parameter_validation(self):
        chain = _chain_graph()
        seeds = np.zeros(5)
        with pytest.raises(ValidationError):
            propagate_labels(chain, seeds, method="teleport")
        with pytest.raises(ValidationError):
            propagate_labels(chain, seeds, alpha=1.0)
        with pytest.raises(ValidationError):
            propagate_labels(chain, seeds, max_iter=0)
        with pytest.raises(ValidationError):
            propagate_labels(chain, seeds, tol=-1.0)
        with pytest.raises(ValidationError):
            propagate_labels(chain, np.zeros(4))

    def test_clamped_positives_stay_positive(self):
        chain = _chain_graph(7)
        seeds = np.zeros(7)
        seeds[0], seeds[6] = 1.0, -1.0
        result = propagate_labels(chain, seeds, tol=1e-10, max_iter=5000)
        assert result.converged
        assert result.scores[0] == 1.0 and result.scores[6] == -1.0
        # Scores decay monotonically along the chain from + to -.
        assert np.all(np.diff(result.scores) < 0)

    def test_converges_to_harmonic_solution_on_chain(self):
        # On a path with endpoints clamped at +1/−1 the harmonic solution
        # is the linear interpolation between them.
        chain = _chain_graph(5)
        seeds = np.zeros(5)
        seeds[0], seeds[4] = 1.0, -1.0
        result = propagate_labels(chain, seeds, tol=1e-12, max_iter=20000)
        np.testing.assert_allclose(result.scores, [1.0, 0.5, 0.0, -0.5, -1.0], atol=1e-6)

    def test_spreading_softens_but_respects_seeds(self):
        chain = _chain_graph(5)
        seeds = np.zeros(5)
        seeds[0], seeds[4] = 1.0, -1.0
        result = propagate_labels(chain, seeds, method="spreading", tol=1e-12, max_iter=5000)
        assert result.converged
        assert result.scores[0] > result.scores[2] > result.scores[4]
        assert 0.0 < result.scores[0] < 1.0  # softened, not clamped

    def test_isolated_nodes_keep_zero(self):
        graph = sparse.csr_matrix((4, 4))  # no edges at all
        seeds = np.array([1.0, 0.0, 0.0, -1.0])
        result = propagate_labels(graph, seeds)
        np.testing.assert_array_equal(result.scores, seeds)
        assert result.converged and result.iterations == 1

    def test_all_zero_seeds_converge_immediately(self):
        result = propagate_labels(_chain_graph(4), np.zeros(4))
        assert result.converged
        np.testing.assert_array_equal(result.scores, np.zeros(4))

    def test_deterministic(self):
        chain = _chain_graph(9)
        seeds = np.zeros(9)
        seeds[2] = 1.0
        first = propagate_labels(chain, seeds)
        second = propagate_labels(chain, seeds)
        np.testing.assert_array_equal(first.scores, second.scores)

    def test_unconverged_run_reports_delta(self):
        chain = _chain_graph(30)
        seeds = np.zeros(30)
        seeds[0] = 1.0
        result = propagate_labels(chain, seeds, max_iter=2, tol=0.0)
        assert not result.converged
        assert result.iterations == 2
        assert result.delta > 0.0


class TestLabelPropagationFeedback:
    def _context(self, database, labeled, labels, memory=None):
        from repro.cbir.query import Query

        return FeedbackContext(
            database=database,
            query=Query(query_index=int(labeled[0])),
            labeled_indices=np.asarray(labeled),
            labels=np.asarray(labels, dtype=float),
            memory=memory,
        )

    def test_registered_beside_the_svm_family(self):
        assert "lrf-graph" in available_algorithms()
        algorithm = make_algorithm("lrf-graph", k=5, eta=0.25)
        assert isinstance(algorithm, LabelPropagationFeedback)
        assert algorithm.name == "lrf-graph"

    def test_constructor_validation(self):
        for bad in (
            dict(eta=-0.1),
            dict(eta=1.1),
            dict(method="osmosis"),
            dict(alpha=0.0),
            dict(max_iter=0),
            dict(tol=-1e-3),
            dict(k=0),
        ):
            with pytest.raises(ValidationError):
                LabelPropagationFeedback(**bad)

    def test_scores_every_image_and_ranks_positives_first(self, small_database):
        algorithm = LabelPropagationFeedback(k=8, cache=GraphCache())
        context = self._context(small_database, [0, 1, 30], [1, 1, -1])
        scores = algorithm.score(context)
        assert scores.shape == (small_database.num_images,)
        ranking = algorithm.rank(context, top_k=5)
        assert ranking.image_indices[0] in (0, 1)  # clamped positives on top
        assert algorithm.last_result_ is not None

    def test_single_class_feedback_is_usable(self, small_database):
        algorithm = LabelPropagationFeedback(k=8, cache=GraphCache())
        context = self._context(small_database, [0, 1], [1, 1])
        scores = algorithm.score(context)
        assert np.isfinite(scores).all()
        assert scores[0] == 1.0 and scores[1] == 1.0

    def test_cold_start_degrades_to_visual_only(self, empty_log_database):
        memory = FeedbackMemory()
        algorithm = LabelPropagationFeedback(k=8, eta=0.9, cache=GraphCache())
        context = self._context(empty_log_database, [0, 40], [1, -1], memory=memory)
        scores = algorithm.score(context)
        assert np.isfinite(scores).all()
        assert memory.meta["last_path"] == "graph-visual"
        assert memory.meta["rounds_scored"] == 1
        assert isinstance(memory.meta["last_graph_converged"], bool)

    def test_log_rich_round_takes_the_fused_path(self, small_database):
        memory = FeedbackMemory()
        algorithm = LabelPropagationFeedback(k=8, eta=0.5, cache=GraphCache())
        context = self._context(small_database, [0, 40], [1, -1], memory=memory)
        algorithm.score(context)
        assert memory.meta["last_path"] == "graph-fused"

    def test_eta_zero_ignores_the_log(self, small_database):
        memory = FeedbackMemory()
        algorithm = LabelPropagationFeedback(k=8, eta=0.0, cache=GraphCache())
        algorithm.score(self._context(small_database, [0, 40], [1, -1], memory=memory))
        assert memory.meta["last_path"] == "graph-visual"

    def test_rounds_share_one_cached_graph(self, small_database):
        cache = GraphCache()
        algorithm = LabelPropagationFeedback(k=8, cache=cache)
        for _ in range(3):
            algorithm.score(self._context(small_database, [0, 40], [1, -1]))
        assert cache.misses == 1 and cache.hits == 2

    def test_exact_index_is_used_approximate_is_not(self, small_dataset):
        database = ImageDatabase(small_dataset)
        exact = BruteForceIndex().build(database.features)
        database.attach_index(exact)
        algorithm = LabelPropagationFeedback(k=4)
        assert algorithm._usable_index(database) is exact
        database.detach_index()
        approximate = IVFIndex(n_clusters=4, n_probe=1, seed=0).build(database.features)
        database.attach_index(approximate)
        assert algorithm._usable_index(database) is None

    def test_propagation_metrics_reach_the_hub(self, small_database):
        from repro.obs import InMemoryExporter, configure, disable, get_hub

        configure(exporters=[InMemoryExporter()])
        try:
            algorithm = LabelPropagationFeedback(k=8, cache=GraphCache())
            algorithm.score(self._context(small_database, [0, 40], [1, -1]))
            hub = get_hub()
            assert hub.metrics.counter("graph.build.count").value == 1
            assert hub.metrics.counter("graph.propagate.iterations").value >= 1
            converged = hub.metrics.counter("graph.propagate.converged").value
            unconverged = hub.metrics.counter("graph.propagate.unconverged").value
            assert converged + unconverged == 1
        finally:
            disable()


class TestServiceIntegration:
    @pytest.fixture()
    def graph_database(self, small_dataset, small_log):
        import copy

        return ImageDatabase(small_dataset, log_database=copy.deepcopy(small_log))

    def _drive_session(self, service, small_dataset, query=0, rounds=2):
        opened = service.open_session(
            SearchRequest(
                query=query,
                top_k=10,
                algorithm="lrf-graph",
                algorithm_params={"k": 8, "eta": 0.5},
            )
        )
        responses = [opened]
        for _ in range(rounds):
            judgements = _category_judgements(
                small_dataset, query, responses[-1].image_indices[:6]
            )
            responses.append(service.submit_feedback(opened.session_id, judgements))
        return opened.session_id, responses

    def test_serves_through_serial_scheduler(self, graph_database, small_dataset):
        service = RetrievalService(graph_database, log_policy="off")
        _, responses = self._drive_session(service, small_dataset)
        assert responses[-1].round_index == 2
        assert len(responses[0].image_indices) == 10  # session top_k
        assert np.isfinite(responses[-1].scores).all()

    def test_parallel_scheduler_matches_serial(self, graph_database, small_dataset):
        serial = RetrievalService(graph_database, log_policy="off")
        parallel = RetrievalService(
            graph_database, log_policy="off", scheduler="parallel", max_workers=4
        )
        _, serial_responses = self._drive_session(serial, small_dataset)
        _, parallel_responses = self._drive_session(parallel, small_dataset)
        for left, right in zip(serial_responses, parallel_responses):
            np.testing.assert_array_equal(left.image_indices, right.image_indices)
            np.testing.assert_array_equal(left.scores, right.scores)

    def test_reloaded_session_replays_bit_identically(
        self, graph_database, small_dataset, tmp_path
    ):
        """The satellite: an lrf-graph session resumed from a reloaded
        FileSessionStore serves the next round bit-identically."""
        request = SearchRequest(
            query=0, top_k=10, algorithm="lrf-graph", algorithm_params={"k": 8, "eta": 0.5}
        )
        reference = RetrievalService(graph_database, log_policy="off")
        ref_open = reference.open_session(request)
        round1 = _category_judgements(small_dataset, 0, ref_open.image_indices)
        ref_r1 = reference.submit_feedback(ref_open.session_id, round1)
        round2 = _category_judgements(small_dataset, 0, ref_r1.image_indices[:6])
        ref_r2 = reference.submit_feedback(ref_open.session_id, round2)

        store = FileSessionStore(tmp_path / "sessions")
        first = RetrievalService(graph_database, store=store, log_policy="off")
        opened = first.open_session(request)
        first.submit_feedback(opened.session_id, round1)
        del first  # "process restart"

        resumed = RetrievalService(
            graph_database,
            store=FileSessionStore(tmp_path / "sessions"),
            log_policy="off",
        )
        assert opened.session_id in resumed.store
        res_r2 = resumed.submit_feedback(opened.session_id, round2)
        np.testing.assert_array_equal(res_r2.image_indices, ref_r2.image_indices)
        np.testing.assert_array_equal(res_r2.scores, ref_r2.scores)
        state = resumed.store.get(opened.session_id)
        assert state.memory.meta["rounds_scored"] == 2
        assert state.memory.meta["last_path"] in ("graph-fused", "graph-visual")


POOL_CONFIG = GaussianPoolConfig(
    num_vectors=200, dim=5, num_clusters=4, num_queries=2, seed=13
)


def _cluster_dataset_factory():
    dataset, _ = make_pool_dataset(POOL_CONFIG, name="graph-cluster-test")
    return dataset


class TestClusterIntegration:
    def test_cluster_serves_lrf_graph_bit_identically(self, tmp_path):
        """The acceptance criterion's third scheduler: a 2-worker cluster
        serves ``"lrf-graph"`` with the same rankings as one process."""
        config = ClusterConfig(
            session_dir=tmp_path / "sessions",
            log_dir=tmp_path / "log",
            num_workers=2,
            coalesce_window=0.002,
            request_timeout=30.0,
            retry_limit=3,
            poll_interval=0.02,
        )
        local = RetrievalService(
            ImageDatabase(_cluster_dataset_factory()),
            store=FileSessionStore(tmp_path / "local-sessions"),
            default_algorithm="lrf-graph",
        )
        with ClusterRouter(_cluster_dataset_factory, config) as router:
            for query in (0, 7):
                remote0 = router.open_session(
                    query,
                    top_k=12,
                    algorithm="lrf-graph",
                    algorithm_params={"k": 6, "eta": 0.5},
                )
                local0 = local.open_session(
                    SearchRequest(
                        query=query,
                        top_k=12,
                        algorithm="lrf-graph",
                        algorithm_params={"k": 6, "eta": 0.5},
                    )
                )
                np.testing.assert_array_equal(
                    remote0.image_indices, local0.image_indices
                )
                judgements = {
                    int(idx): (1 if rank % 2 == 0 else -1)
                    for rank, idx in enumerate(remote0.image_indices[:6])
                }
                remote1 = router.submit_feedback(remote0.session_id, judgements)
                local1 = local.submit_feedback(local0.session_id, judgements)
                np.testing.assert_array_equal(
                    remote1.image_indices, local1.image_indices
                )
                np.testing.assert_array_equal(remote1.scores, local1.scores)
                router.close_session(remote0.session_id)
                local.close_session(local0.session_id)


class TestExperimentsWiring:
    def test_graph_params_validated_at_config_time(self):
        from repro.exceptions import ConfigurationError
        from repro.experiments.config import ExperimentConfig

        with pytest.raises(ConfigurationError):
            ExperimentConfig(graph_params={"eta": 2.0})
        with pytest.raises(ConfigurationError):
            ExperimentConfig(graph_params={"nonsense": 1})
        config = ExperimentConfig(graph_params={"k": 6, "eta": 0.25})
        assert config.graph_params["k"] == 6

    def test_build_algorithms_materialises_lrf_graph(self):
        from repro.experiments.config import ExperimentConfig
        from repro.experiments.pipeline import build_algorithms

        config = ExperimentConfig(
            algorithms=("euclidean", "lrf-graph"),
            graph_params={"k": 6, "eta": 0.25, "method": "spreading"},
        )
        catalogue = build_algorithms(config)
        algorithm = catalogue["lrf-graph"]
        assert isinstance(algorithm, LabelPropagationFeedback)
        assert algorithm.k == 6 and algorithm.method == "spreading"

    def test_run_graph_ablation_rejects_unknown_regime(self, small_dataset, small_database):
        from repro.exceptions import ConfigurationError
        from repro.experiments.ablations import run_graph_ablation
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig()
        with pytest.raises(ConfigurationError):
            run_graph_ablation(
                config,
                regimes=("log-free",),
                environment=(small_dataset, small_database),
            )

    def test_run_graph_ablation_sweeps_regimes_and_eta(self, small_dataset, small_database):
        from dataclasses import replace

        from repro.evaluation.protocol import ProtocolConfig
        from repro.experiments.ablations import run_graph_ablation
        from repro.experiments.config import ExperimentConfig

        config = replace(
            ExperimentConfig(graph_params={"k": 8}),
            protocol=ProtocolConfig(num_queries=2, num_labeled=6, cutoffs=(10,), seed=5),
        )
        result = run_graph_ablation(
            config,
            eta_values=(0.0, 0.5),
            environment=(small_dataset, small_database),
        )
        assert result.parameter == "graph_regime_eta"
        assert result.values == (
            ("log-rich", 0.0),
            ("log-rich", 0.5),
            ("cold-start", 0.0),
            ("cold-start", 0.5),
        )
        assert len(result.map_scores) == 4
        assert all(0.0 <= score <= 1.0 for score in result.map_scores)
        # Every point carries the SVM head-to-head baseline.
        for table in result.tables:
            assert table.result("lrf-csvm").map_score >= 0.0
        # Cold-start eta sweep is a no-op: with an empty log both eta points
        # propagate over the identical visual graph.
        assert result.map_scores[2] == result.map_scores[3]
