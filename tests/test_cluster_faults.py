"""Deterministic chaos: the fault-matrix, kill-during-close, stealing and
rendezvous-property tests of the hardened cluster tier.

The heart of the suite is the **protocol-step × fault-point matrix**: for
every named fault point of the close protocol (and the worker wave loop),
a 2-worker cluster runs with an ``exit`` rule scoped to the session's home
worker — the deterministic equivalent of a SIGKILL landing at exactly that
step.  After the cluster reconciles, the shared log must hold **exactly
one** record per completed round (zero lost, zero duplicated) and no
orphaned close intent may remain.
"""

from __future__ import annotations

import collections
import random
import threading

import pytest

from repro.cluster import ClusterConfig, ClusterRouter, rendezvous_owner
from repro.cluster.faults import (
    ALL_POINTS,
    CLOSE_AFTER_DELETE,
    CLOSE_AFTER_FLUSH,
    CLOSE_BEFORE_FLUSH,
    CLOSE_BEFORE_INTENT,
    ROUTER_BEFORE_SHIP,
    STORE_AFTER_INTENT,
    STORE_BEFORE_DELETE,
    STORE_BEFORE_INTENT_CLEAR,
    TRANSPORT_SOCKET_DROP,
    WORKER_BEFORE_WAVE,
    WORKER_MID_WAVE,
)
from repro.datasets.pool import GaussianPoolConfig, make_pool_dataset
from repro.exceptions import ValidationError
from repro.logdb import FileLogStore
from repro.obs import configure, get_hub
from repro.service.store import FileSessionStore
from repro.utils.faults import FaultPlan, FaultRule, installed

POOL_CONFIG = GaussianPoolConfig(
    num_vectors=300, dim=6, num_clusters=5, num_queries=4, seed=11
)


def _factory():
    dataset, _ = make_pool_dataset(POOL_CONFIG, name="cluster-fault-test")
    return dataset


def _config(tmp_path, **overrides):
    defaults = dict(
        session_dir=tmp_path / "sessions",
        log_dir=tmp_path / "log",
        num_workers=2,
        coalesce_window=0.002,
        request_timeout=20.0,
        retry_limit=3,
        poll_interval=0.02,
    )
    defaults.update(overrides)
    return ClusterConfig(**defaults)


def _log_counts(tmp_path):
    return collections.Counter(
        record.query_index for record in FileLogStore(tmp_path / "log").scan()
    )


def _leftover_intents(tmp_path):
    return FileSessionStore(tmp_path / "sessions").close_intent_ids()


class TestConfigValidation:
    def test_new_fields_validate(self, tmp_path):
        good = dict(session_dir=tmp_path / "s", log_dir=tmp_path / "l")
        with pytest.raises(ValidationError, match="transport"):
            ClusterConfig(transport="carrier-pigeon", **good)
        with pytest.raises(ValidationError, match="steal_threshold"):
            ClusterConfig(steal_threshold=-1, **good)
        with pytest.raises(ValidationError, match="fault_plan"):
            ClusterConfig(fault_plan="not-a-plan", **good)


#: The matrix rows: (fault point, match filter, 1-based hit that fires).
#: Every point of the close protocol plus the worker wave loop for each
#: mutating op.  The hit index matters only where the point also fires on
#: earlier protocol steps (none here — the filters make each row precise).
MATRIX = [
    pytest.param(CLOSE_BEFORE_INTENT, {}, id="close.before_intent_write"),
    pytest.param(STORE_AFTER_INTENT, {}, id="store.after_intent_write"),
    pytest.param(CLOSE_BEFORE_FLUSH, {}, id="close.before_log_flush"),
    pytest.param(CLOSE_AFTER_FLUSH, {}, id="close.after_log_flush"),
    pytest.param(STORE_BEFORE_DELETE, {}, id="store.before_delete"),
    pytest.param(CLOSE_AFTER_DELETE, {}, id="close.after_delete"),
    pytest.param(STORE_BEFORE_INTENT_CLEAR, {}, id="store.before_intent_clear"),
    pytest.param(WORKER_BEFORE_WAVE, {"op": "open"}, id="worker.before_wave[open]"),
    pytest.param(WORKER_MID_WAVE, {"op": "open"}, id="worker.mid_wave_kill[open]"),
    pytest.param(
        WORKER_BEFORE_WAVE, {"op": "feedback"}, id="worker.before_wave[feedback]"
    ),
    pytest.param(
        WORKER_MID_WAVE, {"op": "feedback"}, id="worker.mid_wave_kill[feedback]"
    ),
    pytest.param(WORKER_BEFORE_WAVE, {"op": "close"}, id="worker.before_wave[close]"),
    pytest.param(WORKER_MID_WAVE, {"op": "close"}, id="worker.mid_wave_kill[close]"),
]


class TestFaultMatrix:
    @pytest.mark.parametrize("point, match", MATRIX)
    def test_exactly_once_through_every_crash_point(self, tmp_path, point, match):
        """Kill the home worker at *point*; the round count must not move."""
        session_id = "matrix-victim"
        victim = rendezvous_owner(session_id, [0, 1])
        plan = FaultPlan.single(
            point, action="exit", worker_id=victim, match=match
        )
        config = _config(tmp_path, fault_plan=plan)
        with ClusterRouter(_factory, config) as router:
            opened = router.open_session(
                0, top_k=8, session_id=session_id, algorithm="euclidean"
            )
            refined = router.submit_feedback(
                session_id, {int(opened.image_indices[0]): 1}
            )
            assert refined.round_index == 1
            view = router.close_session(session_id)
            assert view.closed and view.rounds_completed == 1
        assert _log_counts(tmp_path) == {0: 1}
        assert _leftover_intents(tmp_path) == []

    def test_matrix_covers_the_whole_catalogue(self):
        # Guard against the catalogue growing without the matrix noticing.
        covered = {entry.values[0] for entry in MATRIX}
        exempt = {
            # Fires on open/feedback puts too — exercised by the rows above
            # on its own schedule, not a distinct close-protocol step.
            "store.before_put",
            # Router-process points: exit would kill the test process.
            ROUTER_BEFORE_SHIP,
            TRANSPORT_SOCKET_DROP,
        }
        assert covered | exempt >= set(ALL_POINTS)


class TestKillDuringCloseWave:
    """The chaos satellite: a whole close wave dies mid-protocol."""

    @pytest.mark.parametrize(
        "point",
        [CLOSE_BEFORE_FLUSH, CLOSE_AFTER_DELETE],
        ids=["pre-fix-window", "post-fix-window"],
    )
    def test_zero_lost_zero_duplicated(self, tmp_path, point):
        """Close 6 one-round sessions; the home worker of a batch dies at
        *point*.  ``close.before_log_flush`` is the pre-fix loss window
        (records only in the intent), ``close.after_delete`` the post-fix
        one (state deleted, intent not yet cleared) — both must reconcile
        to exactly one log record per session."""
        victim = 0
        plan = FaultPlan.single(point, action="exit", worker_id=victim)
        config = _config(
            tmp_path, fault_plan=plan, coalesce_window=0.05, retry_limit=3
        )
        with ClusterRouter(_factory, config) as router:
            session_ids = []
            for i in range(6):
                opened = router.open_session(
                    i % 4, top_k=8, algorithm="euclidean"
                )
                router.submit_feedback(
                    opened.session_id, {int(opened.image_indices[0]): 1}
                )
                session_ids.append(opened.session_id)
            # Make sure the victim actually owns some of the sessions so
            # the armed wave really runs the close protocol.
            assert any(
                rendezvous_owner(sid, [0, 1]) == victim for sid in session_ids
            )
            views = {}

            def closer(sid):
                views[sid] = router.close_session(sid)

            threads = [
                threading.Thread(target=closer, args=(sid,))
                for sid in session_ids
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(views[sid].closed for sid in session_ids)
            assert all(
                views[sid].rounds_completed == 1 for sid in session_ids
            )
        counts = _log_counts(tmp_path)
        assert sum(counts.values()) == 6  # zero lost, zero duplicated
        assert _leftover_intents(tmp_path) == []


class TestRouterAndTransportFaults:
    def test_router_before_ship_fails_over(self, tmp_path):
        # A "raise" in the router's own ship path must fail the wave over
        # (WorkerDiedError → reconcile → re-send), not kill the dispatcher.
        config = _config(tmp_path)
        with ClusterRouter(_factory, config) as router:
            opened = router.open_session(0, top_k=8, algorithm="euclidean")
            plan = FaultPlan.single(ROUTER_BEFORE_SHIP, match={"op": "feedback"})
            with installed(plan):
                refined = router.submit_feedback(
                    opened.session_id, {int(opened.image_indices[0]): 1}
                )
            assert refined.round_index == 1
            router.close_session(opened.session_id)
        assert _log_counts(tmp_path) == {0: 1}

    def test_socket_send_drop_fails_over(self, tmp_path):
        # A connection reset on the router's request channel maps onto the
        # worker-death path; the retry completes the round exactly once.
        config = _config(tmp_path, transport="socket")
        with ClusterRouter(_factory, config) as router:
            opened = router.open_session(0, top_k=8, algorithm="euclidean")
            plan = FaultPlan.single(
                TRANSPORT_SOCKET_DROP,
                action="drop",
                match={"side": "router", "direction": "request", "event": "send"},
            )
            with installed(plan):
                refined = router.submit_feedback(
                    opened.session_id, {int(opened.image_indices[0]): 1}
                )
            assert refined.round_index == 1
            router.close_session(opened.session_id)
        assert _log_counts(tmp_path) == {0: 1}

    def test_worker_recv_drop_kills_the_worker_cleanly(self, tmp_path):
        # The worker seeing its request connection reset must exit, and the
        # router must reroute onto the survivor — connection loss IS worker
        # death, one reconciliation path for both.
        session_id = "drop-victim"
        victim = rendezvous_owner(session_id, [0, 1])
        plan = FaultPlan.single(
            TRANSPORT_SOCKET_DROP,
            action="drop",
            worker_id=victim,
            at=3,  # let the open and feedback messages through first
            match={"side": "worker", "direction": "request", "event": "recv"},
        )
        config = _config(tmp_path, transport="socket", fault_plan=plan)
        with ClusterRouter(_factory, config) as router:
            opened = router.open_session(
                0, top_k=8, session_id=session_id, algorithm="euclidean"
            )
            refined = router.submit_feedback(
                session_id, {int(opened.image_indices[0]): 1}
            )
            assert refined.round_index == 1
            view = router.close_session(session_id)
            assert view.closed and view.rounds_completed == 1
        assert _log_counts(tmp_path) == {0: 1}
        assert _leftover_intents(tmp_path) == []


class TestWorkStealing:
    def test_skewed_load_is_stolen_and_serves_correctly(self, tmp_path):
        configure()  # fresh hub: steal counters start at zero
        try:
            config = _config(
                tmp_path,
                steal_threshold=2,
                coalesce_window=0.02,
                # One item per wave, so the 8-deep pile-up is visible as
                # in-flight depth instead of one big coalesced wave...
                max_wave=1,
                # ...and a per-wave delay so the home worker is measurably
                # busy while the overflow queue fills behind it.
                debug_feedback_delay=0.05,
            )
            with ClusterRouter(_factory, config) as router:
                # All sessions pinned to ONE home worker: the skew case.
                home = 0
                session_ids = []
                i = 0
                while len(session_ids) < 8:
                    sid = f"skew-{i}"
                    i += 1
                    if rendezvous_owner(sid, [0, 1]) != home:
                        continue
                    opened = router.open_session(
                        i % 4, top_k=8, session_id=sid, algorithm="euclidean"
                    )
                    session_ids.append((sid, opened))
                results = {}

                def one_round(sid, opened):
                    results[sid] = router.submit_feedback(
                        sid, {int(opened.image_indices[0]): 1}
                    ).round_index

                threads = [
                    threading.Thread(target=one_round, args=(sid, opened))
                    for sid, opened in session_ids
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                assert all(results[sid] == 1 for sid, _ in session_ids)
                hub = get_hub()
                # Under an 8-deep pile-up on one worker with threshold 2,
                # waves must have been diverted and some stolen by the
                # idle worker.
                assert hub.metrics.counter("cluster.steal.queued").value > 0
                assert hub.metrics.counter("cluster.steal.stolen").value > 0
                for sid, _ in session_ids:
                    assert router.close_session(sid).closed
            counts = _log_counts(tmp_path)
            assert sum(counts.values()) == 8  # affinity broken, rounds not
            assert _leftover_intents(tmp_path) == []
        finally:
            get_hub().enabled = False

    def test_stealing_disabled_by_default(self, tmp_path):
        config = _config(tmp_path)
        assert config.steal_threshold == 0
        with ClusterRouter(_factory, config) as router:
            opened = router.open_session(0, top_k=8, algorithm="euclidean")
            router.close_session(opened.session_id)


class TestRendezvousProperties:
    """Property-style tests of the pure routing function (satellite 2)."""

    WORKERS = [0, 1, 2, 3, 4]

    def _population(self, n=300):
        rng = random.Random(7)
        return [f"sess-{rng.getrandbits(64):016x}" for _ in range(n)]

    def test_stable_under_permutation(self):
        rng = random.Random(13)
        for sid in self._population(50):
            owner = rendezvous_owner(sid, self.WORKERS)
            for _ in range(5):
                shuffled = self.WORKERS[:]
                rng.shuffle(shuffled)
                assert rendezvous_owner(sid, shuffled) == owner

    def test_removal_moves_only_the_removed_workers_sessions(self):
        population = self._population()
        before = {sid: rendezvous_owner(sid, self.WORKERS) for sid in population}
        for removed in self.WORKERS:
            remaining = [w for w in self.WORKERS if w != removed]
            for sid in population:
                after = rendezvous_owner(sid, remaining)
                if before[sid] == removed:
                    assert after != removed  # re-routed somewhere alive
                else:
                    assert after == before[sid]  # completely undisturbed

    def test_re_adding_restores_the_original_placement(self):
        population = self._population()
        before = {sid: rendezvous_owner(sid, self.WORKERS) for sid in population}
        remaining = [w for w in self.WORKERS if w != 2]
        # Re-add in a different position: ownership is order-independent.
        restored = remaining + [2]
        for sid in population:
            assert rendezvous_owner(sid, restored) == before[sid]

    def test_every_worker_gets_a_share(self):
        population = self._population()
        owners = collections.Counter(
            rendezvous_owner(sid, self.WORKERS) for sid in population
        )
        assert set(owners) == set(self.WORKERS)
        # No worker hogs the population: crude balance bound for 300 ids
        # over 5 workers (expected 60 each).
        assert max(owners.values()) < 3 * min(owners.values())
