"""Tests for the user-feedback log subsystem (repro.logdb)."""

from __future__ import annotations

import copy
import pickle
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ConfigurationError, LogDatabaseError
from repro.logdb.log_database import LogDatabase
from repro.logdb.relevance_matrix import RelevanceMatrix
from repro.logdb.session import LogSession
from repro.logdb.simulation import (
    LogSimulationConfig,
    SimulatedUser,
    collect_feedback_log,
)


class TestLogSession:
    def test_basic_properties(self):
        session = LogSession(judgements={0: 1, 3: -1, 7: 1}, query_index=0)
        assert len(session) == 3
        assert session.positive_indices == (0, 7)
        assert session.negative_indices == (3,)
        assert session.num_positive == 2
        assert session.num_negative == 1

    def test_judgement_for_unknown_image_is_zero(self):
        session = LogSession(judgements={2: 1})
        assert session.judgement_for(2) == 1
        assert session.judgement_for(99) == 0

    def test_as_arrays_sorted(self):
        session = LogSession(judgements={5: -1, 1: 1})
        indices, values = session.as_arrays()
        np.testing.assert_array_equal(indices, [1, 5])
        np.testing.assert_array_equal(values, [1, -1])

    def test_invalid_judgement_value(self):
        with pytest.raises(LogDatabaseError):
            LogSession(judgements={0: 2})

    def test_negative_image_index(self):
        with pytest.raises(LogDatabaseError):
            LogSession(judgements={-1: 1})

    def test_empty_session_rejected(self):
        with pytest.raises(LogDatabaseError):
            LogSession(judgements={})

    def test_with_session_id(self):
        session = LogSession(judgements={0: 1}).with_session_id(42)
        assert session.session_id == 42


class TestRelevanceMatrix:
    def _sessions(self):
        return [
            LogSession(judgements={0: 1, 1: -1}),
            LogSession(judgements={1: 1, 2: 1, 3: -1}),
        ]

    def test_shape_and_counts(self):
        matrix = RelevanceMatrix.from_sessions(self._sessions(), num_images=5)
        assert matrix.shape == (2, 5)
        assert matrix.nnz == 5
        assert matrix.density == pytest.approx(0.5)

    def test_dense_round_trip(self):
        matrix = RelevanceMatrix.from_sessions(self._sessions(), num_images=5)
        dense = matrix.toarray()
        expected = np.array(
            [[1, -1, 0, 0, 0], [0, 1, 1, -1, 0]], dtype=float
        )
        np.testing.assert_array_equal(dense, expected)

    def test_log_vector_is_column(self):
        matrix = RelevanceMatrix.from_sessions(self._sessions(), num_images=5)
        np.testing.assert_array_equal(matrix.log_vector(1), [-1.0, 1.0])

    def test_log_vectors_are_rows_per_image(self):
        matrix = RelevanceMatrix.from_sessions(self._sessions(), num_images=5)
        vectors = matrix.log_vectors([0, 1])
        assert vectors.shape == (2, 2)
        np.testing.assert_array_equal(vectors[0], [1.0, 0.0])
        np.testing.assert_array_equal(vectors[1], [-1.0, 1.0])

    def test_session_row(self):
        matrix = RelevanceMatrix.from_sessions(self._sessions(), num_images=5)
        np.testing.assert_array_equal(matrix.session_row(0), [1, -1, 0, 0, 0])

    def test_out_of_range_image_rejected(self):
        with pytest.raises(LogDatabaseError):
            RelevanceMatrix.from_sessions(self._sessions(), num_images=2)

    def test_empty_matrix(self):
        matrix = RelevanceMatrix.empty(num_images=4)
        assert matrix.num_sessions == 0
        assert matrix.log_vectors().shape == (4, 0)

    def test_append_session(self):
        matrix = RelevanceMatrix.empty(num_images=4)
        extended = matrix.append_session(LogSession(judgements={2: 1}))
        assert extended.num_sessions == 1
        assert matrix.num_sessions == 0  # original is immutable
        np.testing.assert_array_equal(extended.log_vector(2), [1.0])

    @given(
        st.lists(
            st.dictionaries(
                st.integers(0, 9),
                st.sampled_from([1, -1]),
                min_size=1,
                max_size=6,
            ),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property(self, judgement_dicts):
        sessions = [LogSession(judgements=d) for d in judgement_dicts]
        matrix = RelevanceMatrix.from_sessions(sessions, num_images=10)
        dense = matrix.toarray()
        for row, session in enumerate(sessions):
            for image, value in session.judgements.items():
                assert dense[row, image] == value
        # Entries not judged are zero.
        assert matrix.nnz == sum(len(s) for s in sessions)


class TestLogDatabase:
    def test_record_and_matrix(self):
        log = LogDatabase(num_images=6)
        log.record_judgements({0: 1, 2: -1}, query_index=0)
        log.record_judgements({2: 1, 3: 1})
        assert log.num_sessions == 2
        assert log.relevance_matrix().shape == (2, 6)
        assert log.sessions[0].session_id == 0
        assert log.sessions[1].session_id == 1

    def test_cache_invalidation_on_record(self):
        log = LogDatabase(num_images=4)
        log.record_judgements({0: 1})
        first = log.relevance_matrix()
        log.record_judgements({1: -1})
        second = log.relevance_matrix()
        assert first.num_sessions == 1
        assert second.num_sessions == 2

    def test_out_of_range_session_rejected(self):
        log = LogDatabase(num_images=3)
        with pytest.raises(LogDatabaseError):
            log.record_judgements({5: 1})

    def test_empty_log_vectors(self):
        log = LogDatabase(num_images=3)
        assert log.is_empty
        assert log.log_vectors().shape == (3, 0)

    def test_statistics(self):
        log = LogDatabase(num_images=5)
        log.record_judgements({0: 1, 1: -1, 2: -1})
        stats = log.statistics()
        assert stats["num_sessions"] == 1
        assert stats["num_positive"] == 1
        assert stats["num_negative"] == 2
        assert stats["coverage"] == pytest.approx(3 / 5)

    def test_judged_image_indices(self):
        log = LogDatabase(num_images=5)
        log.record_judgements({1: 1, 4: -1})
        np.testing.assert_array_equal(log.judged_image_indices(), [1, 4])

    def test_session_lookup_bounds(self):
        log = LogDatabase(num_images=3)
        log.record_judgements({0: 1})
        assert log.session(0).num_positive == 1
        with pytest.raises(LogDatabaseError):
            log.session(1)

    def test_invalid_num_images(self):
        with pytest.raises(LogDatabaseError):
            LogDatabase(num_images=0)

    def test_incremental_matrix_matches_full_rebuild(self):
        log = LogDatabase(num_images=12)
        rng = np.random.default_rng(7)
        for _ in range(25):
            judged = {
                int(i): int(rng.choice([-1, 1]))
                for i in rng.choice(12, size=4, replace=False)
            }
            log.record_judgements(judged)
            incremental = log.relevance_matrix()  # grows the cache by one row
            rebuilt = RelevanceMatrix.from_sessions(
                log.sessions, num_images=12
            )
            np.testing.assert_array_equal(incremental.toarray(), rebuilt.toarray())
        # Bit-identical CSR internals, not just equal dense values.
        a, b = incremental.tocsr(), rebuilt.tocsr()
        np.testing.assert_array_equal(a.data, b.data)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.indptr, b.indptr)


class TestLogDatabaseConcurrency:
    """Satellite coverage: copy/pickle and snapshots under concurrent appends."""

    def _append_burst(self, log, *, bursts=60, stop):
        rng = np.random.default_rng(11)
        for _ in range(bursts):
            if stop.is_set():
                break
            log.record_judgements(
                {int(rng.integers(0, log.num_images)): 1}
            )

    def test_copy_and_pickle_under_concurrent_appends(self):
        log = LogDatabase(num_images=16)
        stop = threading.Event()
        writers = [
            threading.Thread(target=self._append_burst, args=(log,), kwargs={"stop": stop})
            for _ in range(4)
        ]
        for w in writers:
            w.start()
        try:
            for _ in range(20):
                for clone in (copy.deepcopy(log), pickle.loads(pickle.dumps(log))):
                    # A clone is a consistent prefix: its matrix length equals
                    # its session count, and ids are a gapless 0..n-1 run.
                    sessions = clone.sessions
                    matrix = clone.relevance_matrix()
                    assert matrix.num_sessions == len(sessions)
                    assert [s.session_id for s in sessions] == list(range(len(sessions)))
                    rebuilt = RelevanceMatrix.from_sessions(
                        sessions, num_images=clone.num_images
                    )
                    np.testing.assert_array_equal(matrix.toarray(), rebuilt.toarray())
        finally:
            stop.set()
            for w in writers:
                w.join()
        # Clones are detached: appending to the original never leaks in.
        clone = copy.deepcopy(log)
        count = clone.num_sessions
        log.record_judgements({0: 1})
        assert clone.num_sessions == count

    def test_snapshot_isolation_under_append_burst(self):
        log = LogDatabase(num_images=10)
        log.record_judgements({1: 1, 2: -1})
        snapshot = log.snapshot()
        frozen = snapshot.log_vectors().copy()
        version = snapshot.version

        stop = threading.Event()
        writers = [
            threading.Thread(target=self._append_burst, args=(log,), kwargs={"stop": stop})
            for _ in range(4)
        ]
        for w in writers:
            w.start()
        try:
            for _ in range(50):
                # Mid-burst, the snapshot never changes length or contents.
                assert snapshot.version == version
                assert snapshot.log_vectors().shape == frozen.shape
                np.testing.assert_array_equal(snapshot.log_vectors(), frozen)
        finally:
            stop.set()
            for w in writers:
                w.join()
        # A fresh snapshot sees the appends; versions are totally ordered
        # and the old snapshot is the prefix of the new one.
        later = log.snapshot()
        assert later.version > version
        np.testing.assert_array_equal(
            later.log_vectors()[:, :version], frozen
        )

    def test_snapshot_dense_view_is_read_only(self):
        log = LogDatabase(num_images=4)
        log.record_judgements({0: 1})
        vectors = log.snapshot().log_vectors()
        with pytest.raises(ValueError):
            vectors[0, 0] = 5.0
        # Sliced reads are ordinary writable copies.
        sliced = log.snapshot().log_vectors([0, 1])
        sliced[0, 0] = 5.0


class TestSimulatedUser:
    def test_noise_free_judgements_match_ground_truth(self, small_dataset):
        user = SimulatedUser(small_dataset, noise_rate=0.0, random_state=0)
        query = 0
        indices = list(range(10))
        judgements = user.judge(query, indices)
        for index, value in judgements.items():
            expected = 1 if small_dataset.category_of(index) == small_dataset.category_of(query) else -1
            assert value == expected

    def test_full_noise_flips_everything(self, small_dataset):
        clean = SimulatedUser(small_dataset, noise_rate=0.0, random_state=1)
        noisy = SimulatedUser(small_dataset, noise_rate=1.0, random_state=1)
        indices = list(range(8))
        for index in indices:
            assert clean.judge(0, [index])[index] == -noisy.judge(0, [index])[index]

    def test_feedback_session_records_query(self, small_dataset):
        user = SimulatedUser(small_dataset, noise_rate=0.0)
        session = user.feedback_session(3, [0, 1, 2])
        assert session.query_index == 3
        assert len(session) == 3


class TestCollectFeedbackLog:
    def test_session_count_and_size(self, small_dataset):
        config = LogSimulationConfig(num_sessions=12, images_per_session=8, seed=2)
        log = collect_feedback_log(small_dataset, config)
        assert log.num_sessions == 12
        assert all(len(session) == 8 for session in log.sessions)

    def test_zero_sessions(self, small_dataset):
        config = LogSimulationConfig(num_sessions=0)
        log = collect_feedback_log(small_dataset, config)
        assert log.is_empty

    def test_deterministic_with_seed(self, small_dataset):
        config = LogSimulationConfig(num_sessions=6, images_per_session=5, seed=11)
        first = collect_feedback_log(small_dataset, config).relevance_matrix().toarray()
        second = collect_feedback_log(small_dataset, config).relevance_matrix().toarray()
        np.testing.assert_array_equal(first, second)

    def test_requires_features(self, small_dataset):
        stripped = small_dataset.subset(range(small_dataset.num_images))
        stripped.features = None
        with pytest.raises(ConfigurationError):
            collect_feedback_log(stripped, LogSimulationConfig(num_sessions=2))

    def test_rounds_do_not_rejudge_images(self, small_dataset):
        config = LogSimulationConfig(
            num_sessions=4, images_per_session=6, rounds_per_query=2, seed=5
        )
        log = collect_feedback_log(small_dataset, config)
        # Sessions for the same query (consecutive pairs) never overlap.
        sessions = log.sessions
        for first, second in zip(sessions[0::2], sessions[1::2]):
            if first.query_index == second.query_index:
                assert not set(first.image_indices) & set(second.image_indices)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            LogSimulationConfig(num_sessions=-1)
        with pytest.raises(ConfigurationError):
            LogSimulationConfig(images_per_session=0)
        with pytest.raises(ConfigurationError):
            LogSimulationConfig(rounds_per_query=0)
        with pytest.raises(Exception):
            LogSimulationConfig(noise_rate=1.5)
