"""Tests for repro.imaging.wavelet and repro.imaging.histogram."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.imaging.histogram import histogram_entropy, normalized_histogram
from repro.imaging.wavelet import (
    DAUBECHIES4_HIGHPASS,
    DAUBECHIES4_LOWPASS,
    WaveletDecomposition,
    dwt2,
    wavedec2,
)


class TestDaubechiesFilters:
    def test_lowpass_sums_to_sqrt2(self):
        assert DAUBECHIES4_LOWPASS.sum() == pytest.approx(np.sqrt(2.0))

    def test_highpass_sums_to_zero(self):
        assert DAUBECHIES4_HIGHPASS.sum() == pytest.approx(0.0, abs=1e-12)

    def test_filters_orthogonal(self):
        assert np.dot(DAUBECHIES4_LOWPASS, DAUBECHIES4_HIGHPASS) == pytest.approx(0.0, abs=1e-12)

    def test_unit_energy(self):
        assert np.dot(DAUBECHIES4_LOWPASS, DAUBECHIES4_LOWPASS) == pytest.approx(1.0)
        assert np.dot(DAUBECHIES4_HIGHPASS, DAUBECHIES4_HIGHPASS) == pytest.approx(1.0)


class TestDwt2:
    def test_output_shapes_halved(self):
        image = np.random.default_rng(0).random((32, 48))
        ll, (lh, hl, hh) = dwt2(image)
        assert ll.shape == (16, 24)
        assert lh.shape == (16, 24)
        assert hl.shape == (16, 24)
        assert hh.shape == (16, 24)

    def test_energy_preserved(self):
        # Orthogonal transform with periodic extension conserves total energy.
        image = np.random.default_rng(1).random((32, 32))
        ll, details = dwt2(image)
        total = np.sum(ll**2) + sum(np.sum(d**2) for d in details)
        assert total == pytest.approx(np.sum(image**2), rel=1e-8)

    def test_constant_image_has_zero_details(self):
        image = np.full((16, 16), 0.6)
        _, (lh, hl, hh) = dwt2(image)
        np.testing.assert_allclose(lh, 0.0, atol=1e-10)
        np.testing.assert_allclose(hl, 0.0, atol=1e-10)
        np.testing.assert_allclose(hh, 0.0, atol=1e-10)

    def test_constant_image_approximation_scaled(self):
        image = np.full((16, 16), 1.0)
        ll, _ = dwt2(image)
        # Each 2-D low-pass step multiplies a constant by sqrt(2) per axis.
        np.testing.assert_allclose(ll, 2.0, atol=1e-10)

    def test_rejects_small_image(self):
        with pytest.raises(ValidationError):
            dwt2(np.ones((2, 2)))

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            dwt2(np.ones(16))

    def test_odd_dimensions_truncated(self):
        image = np.random.default_rng(3).random((17, 19))
        ll, _ = dwt2(image)
        assert ll.shape == (8, 9)


class TestWavedec2:
    def test_three_levels(self):
        image = np.random.default_rng(2).random((64, 64))
        decomposition = wavedec2(image, levels=3)
        assert decomposition.levels == 3
        assert len(decomposition.detail_subbands()) == 9
        assert decomposition.approximation.shape == (8, 8)

    def test_small_image_fewer_levels(self):
        image = np.random.default_rng(4).random((16, 16))
        decomposition = wavedec2(image, levels=5)
        assert 1 <= decomposition.levels < 5

    def test_levels_must_be_positive(self):
        with pytest.raises(ValidationError):
            wavedec2(np.ones((32, 32)), levels=0)

    def test_too_small_image_raises(self):
        with pytest.raises(ValidationError):
            wavedec2(np.ones((3, 3)), levels=1)

    def test_detail_order_finest_first(self):
        image = np.random.default_rng(5).random((64, 64))
        decomposition = wavedec2(image, levels=2)
        finest = decomposition.details[0][0]
        coarsest = decomposition.details[1][0]
        assert finest.shape[0] > coarsest.shape[0]


class TestHistogramHelpers:
    def test_normalized_histogram_sums_to_one(self):
        values = np.random.default_rng(0).random(500)
        histogram = normalized_histogram(values, bins=10)
        assert histogram.sum() == pytest.approx(1.0)
        assert histogram.shape == (10,)

    def test_empty_input_uniform(self):
        histogram = normalized_histogram(np.array([]), bins=4)
        np.testing.assert_allclose(histogram, 0.25)

    def test_invalid_bins(self):
        with pytest.raises(ValidationError):
            normalized_histogram(np.ones(10), bins=0)

    def test_entropy_uniform_is_log_bins(self):
        histogram = np.full(8, 1.0 / 8.0)
        assert histogram_entropy(histogram) == pytest.approx(np.log(8))

    def test_entropy_delta_is_zero(self):
        histogram = np.zeros(8)
        histogram[3] = 1.0
        assert histogram_entropy(histogram) == pytest.approx(0.0)
