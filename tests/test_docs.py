"""Documentation gates: docstrings, link rot, and an executable quickstart.

Three checks keep the docs honest in CI:

* every public symbol exported from :mod:`repro` (and from
  ``repro.service`` / ``repro.index`` / ``repro.cluster`` /
  ``repro.utils``, the documented subsystem surfaces) carries a
  docstring — and so does every public method of the
  service/index/cluster API classes;
* every relative link and every referenced repository path inside
  ``docs/*.md`` and ``README.md`` resolves to a real file;
* the README quickstart snippet actually executes.
"""

from __future__ import annotations

import inspect
import re
from pathlib import Path

import pytest

import repro
import repro.cluster
import repro.graph
import repro.index
import repro.logdb
import repro.obs
import repro.service
import repro.utils

REPO_ROOT = Path(__file__).resolve().parents[1]
DOCS_DIR = REPO_ROOT / "docs"

#: Markdown files whose links and path references are gated.
DOC_FILES = sorted(DOCS_DIR.glob("*.md")) + [REPO_ROOT / "README.md"]

#: docs/ pages the README must link (the documentation tree satellite).
REQUIRED_DOC_PAGES = (
    "architecture.md",
    "service.md",
    "index.md",
    "logdb.md",
    "observability.md",
    "cluster.md",
    "graph.md",
)

#: Inline-code tokens that look like repository paths, e.g.
#: ``benchmarks/test_parallel_service.py`` or ``docs/service.md``.
_PATH_TOKEN = re.compile(r"`([A-Za-z0-9_.-]+(?:/[A-Za-z0-9_.-]+)+\.(?:py|md|json))`")

#: Markdown links: ``[text](target)``.
_MD_LINK = re.compile(r"\[[^\]]+\]\(([^)#\s]+)(?:#[^)\s]*)?\)")


def _public_symbols(module):
    for name in module.__all__:
        yield name, getattr(module, name)


class TestDocstrings:
    @pytest.mark.parametrize(
        "module",
        [
            repro,
            repro.service,
            repro.index,
            repro.logdb,
            repro.obs,
            repro.utils,
            repro.cluster,
            repro.graph,
        ],
        ids=lambda m: m.__name__,
    )
    def test_every_public_symbol_has_a_docstring(self, module):
        missing = []
        for name, symbol in _public_symbols(module):
            if isinstance(symbol, (str, tuple, list, dict, int, float)):
                continue  # data constants (__version__, LOG_POLICIES, ...)
            if getattr(symbol, "__module__", "") == "typing":
                continue  # type aliases (WaitCallback, ...): documented via #: comments
            doc = inspect.getdoc(symbol)
            if not doc or not doc.strip():
                missing.append(name)
        assert not missing, (
            f"{module.__name__} exports symbols without docstrings: {missing}"
        )

    def test_every_public_module_has_a_docstring(self):
        import pkgutil

        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = __import__(info.name, fromlist=["__doc__"])
            if not (module.__doc__ or "").strip():
                missing.append(info.name)
        assert not missing, f"modules without docstrings: {missing}"

    @pytest.mark.parametrize(
        "cls",
        [
            repro.RetrievalService,
            repro.service.MicroBatchScheduler,
            repro.service.ParallelScheduler,
            repro.service.SessionStore,
            repro.service.InMemorySessionStore,
            repro.service.FileSessionStore,
            repro.service.SessionState,
            repro.index.VectorIndex,
            repro.index.ShardedVectorIndex,
            repro.index.KDTreeIndex,
            repro.cluster.ClusterRouter,
            repro.cluster.ClusterWorker,
            repro.utils.StripedLockMap,
            repro.utils.ReadWriteLock,
            repro.logdb.LogStore,
            repro.logdb.InMemoryLogStore,
            repro.logdb.FileLogStore,
            repro.logdb.LogDatabase,
            repro.logdb.LogSnapshot,
            repro.logdb.RelevanceMatrix,
            repro.logdb.LogSession,
            repro.obs.MetricsRegistry,
            repro.obs.Tracer,
            repro.obs.Observability,
            repro.obs.InMemoryExporter,
            repro.obs.JSONLExporter,
            repro.graph.AffinityGraph,
            repro.graph.KNNGraphBuilder,
            repro.graph.GraphCache,
            repro.graph.LabelPropagationFeedback,
        ],
        ids=lambda cls: cls.__name__,
    )
    def test_public_methods_of_api_classes_documented(self, cls):
        """The API-reference pass: every public method needs a docstring."""
        missing = []
        for name, member in inspect.getmembers(cls):
            if name.startswith("_"):
                continue
            if inspect.isfunction(member) or isinstance(
                inspect.getattr_static(cls, name, None), property
            ):
                if not (inspect.getdoc(member) or "").strip():
                    missing.append(name)
        assert not missing, f"{cls.__name__} has undocumented members: {missing}"


class TestDocTree:
    def test_docs_tree_exists(self):
        for page in REQUIRED_DOC_PAGES:
            assert (DOCS_DIR / page).is_file(), f"docs/{page} is missing"

    def test_readme_links_all_doc_pages(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        for page in REQUIRED_DOC_PAGES:
            assert f"docs/{page}" in readme, f"README does not link docs/{page}"

    @pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
    def test_internal_links_resolve(self, doc):
        text = doc.read_text(encoding="utf-8")
        broken = []
        for match in _MD_LINK.finditer(text):
            target = match.group(1)
            if "://" in target or target.startswith("mailto:"):
                continue  # external links are out of scope
            if not (doc.parent / target).resolve().exists():
                broken.append(target)
        assert not broken, f"{doc.name} has broken relative links: {broken}"

    @pytest.mark.parametrize("doc", DOC_FILES, ids=lambda p: p.name)
    def test_referenced_code_paths_exist(self, doc):
        text = doc.read_text(encoding="utf-8")
        missing = []
        for token in _PATH_TOKEN.findall(text):
            if not (REPO_ROOT / token).exists():
                missing.append(token)
        assert not missing, f"{doc.name} references missing paths: {missing}"

    def test_doc_symbols_still_exist(self):
        """Backtick identifiers like `repro.service.RetrievalService` (and
        dotted module names) named in the docs must resolve — either as an
        importable module or as an attribute of one."""
        import importlib

        pattern = re.compile(r"`(repro(?:\.[a-z_]+)+)`")
        for doc in DOC_FILES:
            for dotted in set(pattern.findall(doc.read_text(encoding="utf-8"))):
                try:
                    importlib.import_module(dotted)
                except ModuleNotFoundError:
                    parent, _, attr = dotted.rpartition(".")
                    module = importlib.import_module(parent)
                    assert hasattr(module, attr), (
                        f"{doc.name} references {dotted}, which is neither a "
                        f"module nor an attribute of {parent}"
                    )


class TestReadmeQuickstart:
    def _snippets(self):
        readme = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
        return re.findall(r"```python\n(.*?)```", readme, flags=re.DOTALL)

    def test_quickstart_snippet_executes(self):
        """The README's first code block (the service quickstart) must run
        exactly as printed."""
        snippets = self._snippets()
        assert snippets, "README has no python quickstart snippet"
        namespace: dict = {}
        exec(compile(snippets[0], "README.md#quickstart", "exec"), namespace)
        # The snippet's own objects prove it ran end to end.
        assert namespace["refined"].round_index == 1
        assert namespace["database"].log_database.num_sessions > 0
