"""Tests for the experiment drivers (configs, pipeline, ablations)."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.datasets.corel import CorelDatasetConfig
from repro.evaluation.protocol import ProtocolConfig
from repro.exceptions import ConfigurationError
from repro.experiments.ablations import (
    run_log_ablation,
    run_rho_ablation,
    run_selection_ablation,
)
from repro.experiments.config import BENCH_SCALE, PAPER_SCALE, SMOKE_SCALE, ExperimentConfig
from repro.experiments.corel20 import table1_config
from repro.experiments.corel50 import table2_config
from repro.experiments.pipeline import build_algorithms, build_environment, run_paper_experiment
from repro.logdb.simulation import LogSimulationConfig


def _tiny_config(num_categories=4, algorithms=("euclidean", "rf-svm")):
    """A seconds-scale experiment configuration for integration-style tests."""
    return ExperimentConfig(
        dataset=CorelDatasetConfig(
            num_categories=num_categories, images_per_category=10, image_size=32, seed=21
        ),
        log=LogSimulationConfig(num_sessions=16, images_per_session=8, seed=22),
        protocol=ProtocolConfig(num_queries=4, num_labeled=8, cutoffs=(10, 20), seed=23),
        algorithms=tuple(algorithms),
        num_unlabeled=8,
    )


class TestExperimentConfig:
    def test_paper_defaults(self):
        config = table1_config()
        assert config.dataset.num_categories == 20
        assert config.dataset.images_per_category == PAPER_SCALE["images_per_category"]
        assert config.log.num_sessions == PAPER_SCALE["num_sessions"]
        assert config.protocol.num_queries == PAPER_SCALE["num_queries"]

    def test_table2_has_50_categories(self):
        assert table2_config().dataset.num_categories == 50

    def test_scaled_preserves_structure(self):
        config = table1_config(**{k: v for k, v in BENCH_SCALE.items()})
        assert config.dataset.num_categories == 20
        assert config.dataset.images_per_category == BENCH_SCALE["images_per_category"]
        assert config.protocol.num_queries == BENCH_SCALE["num_queries"]

    def test_cutoff_vs_dataset_size_checked(self):
        with pytest.raises(ConfigurationError):
            ExperimentConfig(
                dataset=CorelDatasetConfig(num_categories=2, images_per_category=3),
                protocol=ProtocolConfig(cutoffs=(100,)),
            )

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            _ = replace(_tiny_config(), num_unlabeled=1)
        with pytest.raises(ConfigurationError):
            _ = replace(_tiny_config(), svm_C=0.0)
        with pytest.raises(ConfigurationError):
            _ = replace(_tiny_config(), algorithms=())

    def test_smoke_scale_exists(self):
        assert SMOKE_SCALE["images_per_category"] < BENCH_SCALE["images_per_category"]


class TestPipeline:
    def test_build_environment(self):
        config = _tiny_config()
        dataset, database = build_environment(config)
        assert dataset.num_images == 40
        assert database.num_log_sessions == 16
        assert database.features.shape == (40, 36)

    def test_build_algorithms_matches_config(self):
        config = _tiny_config(algorithms=("euclidean", "rf-svm", "lrf-2svms", "lrf-csvm"))
        algorithms = build_algorithms(config)
        assert list(algorithms) == ["euclidean", "rf-svm", "lrf-2svms", "lrf-csvm"]

    def test_run_paper_experiment_end_to_end(self):
        config = _tiny_config(algorithms=("euclidean", "rf-svm"))
        table = run_paper_experiment(config)
        assert set(table.methods) == {"euclidean", "rf-svm"}
        for method in table.methods:
            assert 0.0 <= table.result(method).map_score <= 1.0

    def test_reused_environment(self):
        config = _tiny_config()
        environment = build_environment(config)
        table = run_paper_experiment(config, environment=environment)
        assert len(table) == 2


class TestAblations:
    def test_rho_ablation_structure(self):
        config = _tiny_config(algorithms=("lrf-csvm",))
        result = run_rho_ablation(config, rho_values=(0.02, 0.2))
        assert result.parameter == "rho"
        assert result.values == (0.02, 0.2)
        assert len(result.map_scores) == 2
        assert all(0.0 <= score <= 1.0 for score in result.map_scores)
        assert result.best_value() in result.values
        assert len(result.as_rows()) == 2

    def test_selection_ablation_structure(self):
        config = _tiny_config(algorithms=("lrf-csvm",))
        result = run_selection_ablation(config, strategies=("near-labeled", "random"))
        assert result.values == ("near-labeled", "random")
        assert len(result.tables) == 2

    def test_log_ablation_includes_cold_start(self):
        config = _tiny_config(algorithms=("lrf-csvm",))
        result = run_log_ablation(config, session_counts=(0, 12), noise_rates=(0.1,))
        assert len(result.map_scores) == 2
        # Cold start (0 sessions) still produces a valid score.
        assert all(np.isfinite(score) for score in result.map_scores)
