"""Tests for repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.utils.validation import (
    check_array,
    check_consistent_length,
    check_in_range,
    check_labels,
    check_positive,
    check_probability,
)


class TestCheckArray:
    def test_converts_to_float64(self):
        result = check_array([[1, 2], [3, 4]])
        assert result.dtype == np.float64
        assert result.shape == (2, 2)

    def test_ndim_enforced(self):
        with pytest.raises(ValidationError, match="dimension"):
            check_array([1.0, 2.0], ndim=2)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError, match="empty"):
            check_array(np.empty((0, 3)))

    def test_empty_allowed_when_requested(self):
        result = check_array(np.empty((0, 3)), allow_empty=True)
        assert result.shape == (0, 3)

    def test_nan_rejected(self):
        with pytest.raises(ValidationError, match="NaN"):
            check_array([1.0, np.nan])

    def test_inf_rejected(self):
        with pytest.raises(ValidationError, match="NaN|infinite"):
            check_array([1.0, np.inf])


class TestCheckLabels:
    def test_valid_labels(self):
        labels = check_labels([1, -1, 1])
        np.testing.assert_array_equal(labels, [1.0, -1.0, 1.0])

    def test_invalid_value_rejected(self):
        with pytest.raises(ValidationError):
            check_labels([1, 0, -1])

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            check_labels([])

    def test_single_class_is_accepted(self):
        # check_labels validates values, not class balance.
        labels = check_labels([1, 1, 1])
        assert np.all(labels == 1)


class TestScalarChecks:
    def test_check_positive(self):
        assert check_positive(2.5) == 2.5

    def test_check_positive_rejects_zero(self):
        with pytest.raises(ValidationError):
            check_positive(0.0)

    def test_check_positive_non_strict_allows_zero(self):
        assert check_positive(0.0, strict=False) == 0.0

    def test_check_in_range(self):
        assert check_in_range(0.5, 0.0, 1.0) == 0.5

    def test_check_in_range_exclusive(self):
        with pytest.raises(ValidationError):
            check_in_range(0.0, 0.0, 1.0, inclusive=False)

    def test_check_probability_bounds(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0
        with pytest.raises(ValidationError):
            check_probability(1.5)


class TestConsistentLength:
    def test_consistent_passes(self):
        check_consistent_length([1, 2], [3, 4])

    def test_inconsistent_raises(self):
        with pytest.raises(ValidationError, match="inconsistent"):
            check_consistent_length([1, 2], [3, 4, 5])

    def test_names_in_message(self):
        with pytest.raises(ValidationError, match="features"):
            check_consistent_length([1], [2, 3], names=("features", "labels"))
