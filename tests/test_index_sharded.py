"""Bit-identity and wiring tests for :class:`repro.index.ShardedVectorIndex`.

The load-bearing property of the cluster story: scattering a search across
N shards and merging with the ``(distance, ascending global index)`` rule
returns **exactly** the unsharded ranking — for any shard count, any k,
and tie-heavy pools where the merge order actually matters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.pool import GaussianPoolConfig, make_gaussian_pool
from repro.exceptions import ValidationError
from repro.index import (
    BruteForceIndex,
    KDTreeIndex,
    ShardedVectorIndex,
    make_index,
)
from repro.index.sharded import IMBALANCE_WARN_RATIO
from repro.obs import configure, get_hub

#: The shard counts the acceptance criteria call out (1 = degenerate wrap).
SHARD_COUNTS = (1, 2, 3, 7)


@pytest.fixture(scope="module")
def pool():
    """A clustered pool with heavy duplication so distance ties are common."""
    vectors, queries = make_gaussian_pool(
        GaussianPoolConfig(num_vectors=500, dim=8, num_clusters=10, num_queries=10, seed=5)
    )
    # Duplicate a block far apart in index space: tied candidates now live
    # in *different* shards, so a wrong merge order would be caught.
    vectors[300:330] = vectors[0:30]
    vectors[450:460] = vectors[100:110]
    return vectors, queries


@pytest.fixture(scope="module")
def oracle(pool):
    vectors, queries = pool
    return BruteForceIndex().build(vectors)


class TestBitIdentity:
    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_matches_unsharded_scan(self, num_shards, pool, oracle):
        vectors, queries = pool
        index = ShardedVectorIndex(num_shards=num_shards).build(vectors)
        for k in (1, 5, 40, vectors.shape[0]):
            sharded_d, sharded_i = index.search(queries, k)
            oracle_d, oracle_i = oracle.search(queries, k)
            np.testing.assert_array_equal(sharded_i, oracle_i)
            np.testing.assert_array_equal(sharded_d, oracle_d)

    @pytest.mark.parametrize("num_shards", SHARD_COUNTS)
    def test_tie_heavy_all_duplicates(self, num_shards):
        # Every vector identical: the ranking is decided purely by the tie
        # rule, so any merge mistake surfaces immediately.
        vectors = np.ones((64, 4))
        queries = np.ones((3, 4))
        index = ShardedVectorIndex(num_shards=num_shards).build(vectors)
        distances, indices = index.search(queries, 10)
        np.testing.assert_array_equal(indices, np.tile(np.arange(10), (3, 1)))
        np.testing.assert_array_equal(distances, np.zeros((3, 10)))

    @pytest.mark.parametrize("metric", ["euclidean", "manhattan", "cosine"])
    def test_every_metric_matches_oracle(self, metric, pool):
        vectors, queries = pool
        sharded = ShardedVectorIndex(num_shards=3, metric=metric).build(vectors)
        oracle = BruteForceIndex(metric=metric).build(vectors)
        sharded_d, sharded_i = sharded.search(queries, 20)
        oracle_d, oracle_i = oracle.search(queries, 20)
        np.testing.assert_array_equal(sharded_i, oracle_i)
        np.testing.assert_array_equal(sharded_d, oracle_d)

    def test_batch_search_equals_search(self, pool):
        vectors, queries = pool
        index = ShardedVectorIndex(num_shards=3).build(vectors)
        single_d, single_i = index.search(queries, 15)
        batch_d, batch_i = index.batch_search(queries, 15, chunk_size=4)
        np.testing.assert_array_equal(batch_i, single_i)
        np.testing.assert_array_equal(batch_d, single_d)

    def test_scatter_thread_pool_is_deterministic(self, pool, oracle):
        vectors, queries = pool
        index = ShardedVectorIndex(num_shards=4, scatter_workers=4).build(vectors)
        oracle_d, oracle_i = oracle.search(queries, 25)
        for _ in range(3):
            distances, indices = index.search(queries, 25)
            np.testing.assert_array_equal(indices, oracle_i)
            np.testing.assert_array_equal(distances, oracle_d)


class TestGrowthAndMaintenance:
    def test_add_routes_to_smallest_shard_and_stays_exact(self, pool, oracle):
        vectors, queries = pool
        index = ShardedVectorIndex(num_shards=3).build(vectors[:380])
        index.add(vectors[380:440])
        index.add(vectors[440:])
        assert index.size == vectors.shape[0]
        sizes = [shard.size for shard in index.shards]
        assert sum(sizes) == vectors.shape[0]
        assert max(sizes) - min(sizes) <= 60  # blocks landed on the smallest
        sharded_d, sharded_i = index.search(queries, 30)
        oracle_d, oracle_i = oracle.search(queries, 30)
        np.testing.assert_array_equal(sharded_i, oracle_i)
        np.testing.assert_array_equal(sharded_d, oracle_d)

    def test_kd_shards_defer_and_refresh(self, pool):
        vectors, queries = pool
        index = ShardedVectorIndex(
            num_shards=2,
            shard_kind="kd-tree",
            shard_params={"leaf_size": 8, "rebuild_threshold": 0.0},
        ).build(vectors[:400])
        assert index.is_exact
        index.add(vectors[400:])
        assert index.needs_rebuild  # the receiving KD shard deferred
        index.refresh()
        assert not index.needs_rebuild
        oracle = BruteForceIndex().build(vectors)
        _, sharded_i = index.search(queries, 20)
        _, oracle_i = oracle.search(queries, 20)
        np.testing.assert_array_equal(sharded_i, oracle_i)

    def test_more_shards_than_vectors_caps_cleanly(self):
        vectors = np.arange(12, dtype=np.float64).reshape(4, 3)
        index = ShardedVectorIndex(num_shards=7).build(vectors)
        assert len(index.shards) == 4  # capped: every shard non-empty
        _, indices = index.search(vectors, 4)
        np.testing.assert_array_equal(indices[:, 0], np.arange(4))

    def test_shard_size_gauges_and_imbalance_warning(self, pool):
        vectors, _ = pool
        configure()  # fresh hub: gauges and warning counter start empty
        try:
            hub = get_hub()
            index = ShardedVectorIndex(num_shards=2).build(vectors[:400])
            assert hub.metrics.gauge("index.shard_sizes.0").value == 200
            assert hub.metrics.gauge("index.shard_sizes.1").value == 200
            assert hub.metrics.gauge("index.shard_imbalance").value == 1.0
            warnings = hub.metrics.counter("index.shard_imbalance_warnings")
            assert warnings.value == 0
            # Pile appends onto the index until one shard crosses the
            # documented imbalance threshold (add routes whole blocks, so
            # a block bigger than the fair share skews by construction).
            index.add(np.tile(vectors[:100], (5, 1)))
            sizes = [shard.size for shard in index.shards]
            assert max(sizes) / (sum(sizes) / len(sizes)) > IMBALANCE_WARN_RATIO
            assert hub.metrics.gauge("index.shard_sizes.0").value == max(sizes)
            assert hub.metrics.gauge("index.shard_imbalance").value > \
                IMBALANCE_WARN_RATIO
            assert warnings.value >= 1
        finally:
            get_hub().enabled = False


class TestWiring:
    def test_registry_constructs_sharded(self):
        index = make_index("sharded", num_shards=2, shard_kind="kd-tree",
                           shard_params={"leaf_size": 4})
        assert isinstance(index, ShardedVectorIndex)
        assert index.shard_kind == "kd-tree"

    def test_save_load_round_trip_is_bit_identical(self, pool, tmp_path):
        vectors, queries = pool
        index = ShardedVectorIndex(num_shards=3).build(vectors)
        loaded = ShardedVectorIndex.load(index.save(tmp_path / "sharded.npz"))
        assert isinstance(loaded, ShardedVectorIndex)
        assert loaded.num_shards == 3 and loaded.shard_kind == "brute-force"
        original = index.search(queries, 20)
        restored = loaded.search(queries, 20)
        np.testing.assert_array_equal(restored[0], original[0])
        np.testing.assert_array_equal(restored[1], original[1])

    def test_is_exact_tracks_shard_backend(self, pool):
        vectors, _ = pool
        exact = ShardedVectorIndex(num_shards=2).build(vectors)
        assert exact.is_exact
        approximate = ShardedVectorIndex(
            num_shards=2, shard_kind="lsh", shard_params={"num_bits": 6}
        ).build(vectors)
        assert not approximate.is_exact

    def test_validation(self):
        with pytest.raises(ValidationError, match="num_shards"):
            ShardedVectorIndex(num_shards=0)
        with pytest.raises(ValidationError, match="cannot themselves"):
            ShardedVectorIndex(shard_kind="sharded")
        with pytest.raises(ValidationError, match="unknown index backend"):
            ShardedVectorIndex(shard_kind="annoy")
        with pytest.raises(ValidationError, match="scatter_workers"):
            ShardedVectorIndex(scatter_workers=-1)
        with pytest.raises(ValidationError, match="euclidean"):
            # Shard-backend validation is eager: KD shards reject cosine.
            ShardedVectorIndex(shard_kind="kd-tree", metric="cosine")

    def test_sharded_index_serves_the_search_engine(self, pool):
        from repro.cbir.database import ImageDatabase
        from repro.datasets.pool import make_pool_dataset

        config = GaussianPoolConfig(
            num_vectors=300, dim=6, num_clusters=5, num_queries=4, seed=9
        )
        dataset, queries = make_pool_dataset(config, name="sharded-wiring")
        database = ImageDatabase(dataset)
        database.build_index("sharded", num_shards=3)
        from repro.cbir.search import SearchEngine

        engine = SearchEngine(database)
        from repro.cbir.query import Query

        transformed = database.transform_external_features(queries)
        query = Query(feature_vector=transformed[0])
        ranked = engine.search(query, top_k=10)
        database.detach_index()
        dense = engine.search(query, top_k=10)
        np.testing.assert_array_equal(ranked.image_indices, dense.image_indices)
