"""Tests for repro.imaging.color and repro.imaging.image."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import ValidationError
from repro.imaging.color import hsv_to_rgb, rgb_to_grayscale, rgb_to_hsv
from repro.imaging.image import Image


class TestRgbToHsv:
    def test_pure_red(self):
        pixel = np.array([[[1.0, 0.0, 0.0]]])
        hsv = rgb_to_hsv(pixel)[0, 0]
        assert hsv[0] == pytest.approx(0.0)
        assert hsv[1] == pytest.approx(1.0)
        assert hsv[2] == pytest.approx(1.0)

    def test_pure_green(self):
        pixel = np.array([[[0.0, 1.0, 0.0]]])
        hsv = rgb_to_hsv(pixel)[0, 0]
        assert hsv[0] == pytest.approx(1.0 / 3.0)

    def test_pure_blue(self):
        pixel = np.array([[[0.0, 0.0, 1.0]]])
        hsv = rgb_to_hsv(pixel)[0, 0]
        assert hsv[0] == pytest.approx(2.0 / 3.0)

    def test_gray_has_zero_saturation(self):
        pixel = np.array([[[0.5, 0.5, 0.5]]])
        hsv = rgb_to_hsv(pixel)[0, 0]
        assert hsv[1] == pytest.approx(0.0)
        assert hsv[2] == pytest.approx(0.5)

    def test_black(self):
        pixel = np.zeros((1, 1, 3))
        hsv = rgb_to_hsv(pixel)[0, 0]
        assert hsv[1] == pytest.approx(0.0)
        assert hsv[2] == pytest.approx(0.0)

    def test_output_range(self):
        rng = np.random.default_rng(0)
        image = rng.random((16, 16, 3))
        hsv = rgb_to_hsv(image)
        assert hsv.min() >= 0.0
        assert hsv.max() <= 1.0

    def test_rejects_wrong_shape(self):
        with pytest.raises(ValidationError):
            rgb_to_hsv(np.zeros((4, 4)))

    @given(
        hnp.arrays(np.float64, (3, 3, 3), elements=st.floats(0.0, 1.0))
    )
    @settings(max_examples=30, deadline=None)
    def test_round_trip(self, rgb):
        hsv = rgb_to_hsv(rgb)
        back = hsv_to_rgb(hsv)
        np.testing.assert_allclose(back, np.clip(rgb, 0, 1), atol=1e-8)


class TestGrayscale:
    def test_weights_sum_to_one(self):
        white = np.ones((2, 2, 3))
        np.testing.assert_allclose(rgb_to_grayscale(white), 1.0)

    def test_black(self):
        np.testing.assert_allclose(rgb_to_grayscale(np.zeros((2, 2, 3))), 0.0)

    def test_green_brighter_than_blue(self):
        green = np.zeros((1, 1, 3)); green[..., 1] = 1.0
        blue = np.zeros((1, 1, 3)); blue[..., 2] = 1.0
        assert rgb_to_grayscale(green)[0, 0] > rgb_to_grayscale(blue)[0, 0]


class TestImage:
    def test_valid_construction(self):
        image = Image(pixels=np.zeros((8, 8, 3)), image_id=3, category=1, category_name="cat")
        assert image.height == 8
        assert image.width == 8
        assert image.shape == (8, 8, 3)

    def test_pixels_clipped(self):
        image = Image(pixels=np.full((4, 4, 3), 2.0))
        assert image.pixels.max() == pytest.approx(1.0)

    def test_rejects_bad_shape(self):
        with pytest.raises(ValidationError):
            Image(pixels=np.zeros((8, 8)))

    def test_rejects_nan(self):
        pixels = np.zeros((4, 4, 3))
        pixels[0, 0, 0] = np.nan
        with pytest.raises(ValidationError):
            Image(pixels=pixels)

    def test_rejects_tiny_image(self):
        with pytest.raises(ValidationError):
            Image(pixels=np.zeros((1, 5, 3)))

    def test_grayscale_shape(self):
        image = Image(pixels=np.random.default_rng(0).random((6, 7, 3)))
        assert image.grayscale().shape == (6, 7)

    def test_with_metadata(self):
        image = Image(pixels=np.zeros((4, 4, 3)))
        tagged = image.with_metadata(image_id=5, category=2, category_name="dog")
        assert tagged.image_id == 5
        assert tagged.category == 2
        assert tagged.category_name == "dog"
        assert image.image_id is None  # original untouched

    def test_from_uint8(self):
        raw = np.full((4, 4, 3), 255, dtype=np.uint8)
        image = Image.from_uint8(raw)
        np.testing.assert_allclose(image.pixels, 1.0)
