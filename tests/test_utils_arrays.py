"""Tests for repro.utils.arrays, including hypothesis property tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.utils.arrays import (
    l2_normalize_rows,
    minmax_scale,
    pairwise_squared_distances,
    stable_entropy,
    zscore,
)


class TestZscore:
    def test_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        matrix = rng.normal(5.0, 3.0, size=(200, 4))
        scaled, _, _ = zscore(matrix)
        np.testing.assert_allclose(scaled.mean(axis=0), 0.0, atol=1e-10)
        np.testing.assert_allclose(scaled.std(axis=0), 1.0, atol=1e-10)

    def test_constant_column_maps_to_zero(self):
        matrix = np.column_stack([np.ones(10), np.arange(10, dtype=float)])
        scaled, _, _ = zscore(matrix)
        np.testing.assert_allclose(scaled[:, 0], 0.0)

    def test_reapply_statistics(self):
        matrix = np.random.default_rng(1).normal(size=(50, 3))
        _, mean, std = zscore(matrix)
        row = matrix[:1]
        scaled, _, _ = zscore(row, mean=mean, std=std)
        np.testing.assert_allclose(scaled, (row - mean) / std)


class TestMinmaxScale:
    def test_range(self):
        matrix = np.random.default_rng(2).normal(size=(40, 3)) * 10
        scaled, low, high = minmax_scale(matrix)
        assert scaled.min() >= 0.0
        assert scaled.max() <= 1.0
        np.testing.assert_allclose(low, matrix.min(axis=0))
        np.testing.assert_allclose(high, matrix.max(axis=0))


class TestL2Normalize:
    def test_unit_norm(self):
        matrix = np.random.default_rng(3).normal(size=(20, 5))
        normalized = l2_normalize_rows(matrix)
        np.testing.assert_allclose(np.linalg.norm(normalized, axis=1), 1.0)

    def test_zero_row_stays_finite(self):
        matrix = np.zeros((2, 3))
        normalized = l2_normalize_rows(matrix)
        assert np.all(np.isfinite(normalized))


class TestPairwiseSquaredDistances:
    def test_matches_naive(self):
        rng = np.random.default_rng(4)
        a = rng.normal(size=(6, 3))
        b = rng.normal(size=(4, 3))
        fast = pairwise_squared_distances(a, b)
        naive = np.array([[np.sum((x - y) ** 2) for y in b] for x in a])
        np.testing.assert_allclose(fast, naive, atol=1e-10)

    def test_self_distance_zero_diagonal(self):
        a = np.random.default_rng(5).normal(size=(8, 4))
        distances = pairwise_squared_distances(a, a)
        np.testing.assert_allclose(np.diag(distances), 0.0, atol=1e-9)

    @given(
        hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=2, max_dims=2, min_side=1, max_side=6),
            elements=st.floats(-100, 100),
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_non_negative(self, matrix):
        distances = pairwise_squared_distances(matrix, matrix)
        assert np.all(distances >= 0.0)


class TestStableEntropy:
    def test_constant_signal_zero_entropy(self):
        assert stable_entropy(np.ones(100)) == pytest.approx(0.0)

    def test_uniform_higher_than_peaked(self):
        rng = np.random.default_rng(6)
        uniform = rng.uniform(0, 1, size=4096)
        peaked = np.concatenate([np.zeros(4000), rng.uniform(0, 1, 96)])
        assert stable_entropy(uniform) > stable_entropy(peaked)

    def test_empty_input(self):
        assert stable_entropy(np.array([])) == 0.0

    def test_upper_bound_log_bins(self):
        rng = np.random.default_rng(7)
        values = rng.uniform(size=10000)
        assert stable_entropy(values, bins=64) <= np.log(64) + 1e-9
