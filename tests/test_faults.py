"""Unit tests of the deterministic fault-injection seam (repro.utils.faults)."""

from __future__ import annotations

import pickle

import pytest

from repro.exceptions import FaultInjectedError, ValidationError
from repro.utils.faults import (
    FAULT_ACTIONS,
    FaultPlan,
    FaultRule,
    active_plan,
    clear_plan,
    install_plan,
    installed,
    trip,
)


@pytest.fixture(autouse=True)
def _disarmed():
    # Belt and braces: no test leaks an armed plan into the next one.
    clear_plan()
    yield
    clear_plan()


class TestValidation:
    def test_rejects_bad_rules(self):
        with pytest.raises(ValidationError, match="point"):
            FaultRule(point="")
        with pytest.raises(ValidationError, match="action"):
            FaultRule(point="p", action="explode")
        with pytest.raises(ValidationError, match="at"):
            FaultRule(point="p", at=0)
        with pytest.raises(ValidationError, match="times"):
            FaultRule(point="p", times=-1)
        with pytest.raises(ValidationError, match="FaultRule"):
            FaultPlan(rules=("not-a-rule",))

    def test_actions_catalogue(self):
        assert FAULT_ACTIONS == ("raise", "exit", "drop")

    def test_plan_is_picklable(self):
        plan = FaultPlan.single("p", action="drop", at=3, match={"op": "close"})
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan


class TestFiringWindows:
    def test_noop_without_a_plan(self):
        trip("anything", op="close")  # must not raise

    def test_default_fires_first_hit_only(self):
        with installed(FaultPlan.single("p")):
            with pytest.raises(FaultInjectedError):
                trip("p")
            trip("p")  # hit 2: outside the [1, 1] window

    def test_at_skips_earlier_hits(self):
        with installed(FaultPlan.single("p", at=3)):
            trip("p")
            trip("p")
            with pytest.raises(FaultInjectedError):
                trip("p")
            trip("p")

    def test_times_widens_the_window(self):
        with installed(FaultPlan.single("p", at=2, times=2)):
            trip("p")
            for _ in range(2):
                with pytest.raises(FaultInjectedError):
                    trip("p")
            trip("p")

    def test_times_zero_is_permanent(self):
        with installed(FaultPlan.single("p", times=0)):
            for _ in range(5):
                with pytest.raises(FaultInjectedError):
                    trip("p")

    def test_point_names_are_exact(self):
        with installed(FaultPlan.single("close.before_log_flush")):
            trip("close.before_intent_write")
            trip("close")
            with pytest.raises(FaultInjectedError):
                trip("close.before_log_flush")

    def test_match_filters_on_trip_context(self):
        plan = FaultPlan.single("worker.before_wave", match={"op": "close"})
        with installed(plan):
            trip("worker.before_wave", op="feedback")
            trip("worker.before_wave")  # missing key never matches
            with pytest.raises(FaultInjectedError):
                trip("worker.before_wave", op="close")

    def test_match_hits_count_only_matching_trips(self):
        plan = FaultPlan.single("p", at=2, match={"op": "close"})
        with installed(plan):
            trip("p", op="feedback")  # not a matching hit
            trip("p", op="close")  # matching hit 1
            with pytest.raises(FaultInjectedError):
                trip("p", op="close")  # matching hit 2 fires


class TestScopingAndActions:
    def test_worker_id_scoping(self):
        plan = FaultPlan.single("p", worker_id=0)
        with installed(plan, worker_id=1):
            trip("p")  # armed elsewhere: rule is for worker 0
        with installed(plan, worker_id=0):
            with pytest.raises(FaultInjectedError):
                trip("p")

    def test_unscoped_rule_arms_everywhere(self):
        with installed(FaultPlan.single("p"), worker_id=7):
            with pytest.raises(FaultInjectedError):
                trip("p")

    def test_drop_action_raises_connection_reset(self):
        with installed(FaultPlan.single("p", action="drop")):
            with pytest.raises(ConnectionResetError):
                trip("p")

    def test_rules_count_hits_independently(self):
        plan = FaultPlan(
            rules=(
                FaultRule(point="a", at=2),
                FaultRule(point="b", at=1),
            )
        )
        with installed(plan):
            trip("a")  # a's hit 1: below at=2
            with pytest.raises(FaultInjectedError):
                trip("b")
            with pytest.raises(FaultInjectedError):
                trip("a")

    def test_install_and_clear(self):
        plan = FaultPlan.single("p")
        install_plan(plan)
        assert active_plan() is plan
        clear_plan()
        assert active_plan() is None

    def test_installed_clears_on_exception(self):
        with pytest.raises(RuntimeError):
            with installed(FaultPlan.single("p")):
                raise RuntimeError("boom")
        assert active_plan() is None

    def test_fresh_counters_per_install(self):
        plan = FaultPlan.single("p")
        with installed(plan):
            with pytest.raises(FaultInjectedError):
                trip("p")
        with installed(plan):  # re-install resets the hit counter
            with pytest.raises(FaultInjectedError):
                trip("p")
