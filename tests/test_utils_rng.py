"""Tests for repro.utils.rng."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import derive_seed, ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_none_returns_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)

    def test_int_seed_is_deterministic(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_different_seeds_differ(self):
        a = ensure_rng(1).random(5)
        b = ensure_rng(2).random(5)
        assert not np.allclose(a, b)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(7)
        assert ensure_rng(generator) is generator

    def test_numpy_integer_seed(self):
        a = ensure_rng(np.int64(42)).random(3)
        b = ensure_rng(42).random(3)
        np.testing.assert_array_equal(a, b)

    def test_invalid_type_raises(self):
        with pytest.raises(TypeError):
            ensure_rng("not-a-seed")


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "corel", 3) == derive_seed(7, "corel", 3)

    def test_token_sensitivity(self):
        assert derive_seed(7, "corel", 3) != derive_seed(7, "corel", 4)

    def test_base_seed_sensitivity(self):
        assert derive_seed(7, "corel") != derive_seed(8, "corel")

    def test_returns_non_negative_int(self):
        seed = derive_seed(123, "x", "y", 9)
        assert isinstance(seed, int)
        assert seed >= 0


class TestSpawnRngs:
    def test_count(self):
        assert len(spawn_rngs(3, 4)) == 4

    def test_independence(self):
        rngs = spawn_rngs(3, 2)
        assert not np.allclose(rngs[0].random(5), rngs[1].random(5))

    def test_reproducible(self):
        first = [generator.random(3) for generator in spawn_rngs(5, 2)]
        second = [generator.random(3) for generator in spawn_rngs(5, 2)]
        for a, b in zip(first, second):
            np.testing.assert_array_equal(a, b)

    def test_zero_count(self):
        assert spawn_rngs(1, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)
