"""Tests for the relevance-feedback algorithms (baselines + LRF-CSVM)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cbir.query import Query
from repro.core.lrf_csvm import LRFCSVM
from repro.datasets.splits import relevance_ground_truth, relevance_labels
from repro.exceptions import ValidationError
from repro.feedback.base import FeedbackContext
from repro.feedback.euclidean import EuclideanFeedback
from repro.feedback.lrf_2svms import LRF2SVMs
from repro.feedback.registry import available_algorithms, make_algorithm
from repro.feedback.rf_svm import RFSVM


def _context_for_query(database, dataset, query_index, num_labeled=12):
    """Build a FeedbackContext with ground-truth labels on the initial top-k."""
    from repro.cbir.search import SearchEngine

    engine = SearchEngine(database)
    initial = engine.search(Query(query_index=query_index), top_k=num_labeled)
    labels = relevance_labels(dataset, query_index, initial.image_indices)
    if np.unique(labels).size < 2:
        labels[-1] = -labels[-1]
    return FeedbackContext(
        database=database,
        query=Query(query_index=query_index),
        labeled_indices=initial.image_indices,
        labels=labels,
    )


def _precision_at(result, relevant, k):
    return float(np.mean(relevant[result.image_indices[:k]]))


class TestFeedbackContext:
    def test_properties(self, small_database):
        context = FeedbackContext(
            database=small_database,
            query=Query(query_index=0),
            labeled_indices=np.array([0, 1, 20, 21]),
            labels=np.array([1.0, 1.0, -1.0, -1.0]),
        )
        assert context.num_labeled == 4
        np.testing.assert_array_equal(context.positive_indices, [0, 1])
        np.testing.assert_array_equal(context.negative_indices, [20, 21])
        assert context.has_both_classes
        assert context.labeled_features().shape == (4, 36)
        assert context.labeled_log_vectors().shape[0] == 4

    def test_validation(self, small_database):
        with pytest.raises(ValidationError):
            FeedbackContext(
                database=small_database,
                query=Query(query_index=0),
                labeled_indices=np.array([0, 1]),
                labels=np.array([1.0]),
            )
        with pytest.raises(ValidationError):
            FeedbackContext(
                database=small_database,
                query=Query(query_index=0),
                labeled_indices=np.array([0]),
                labels=np.array([0.5]),
            )
        with pytest.raises(ValidationError):
            FeedbackContext(
                database=small_database,
                query=Query(query_index=0),
                labeled_indices=np.array([], dtype=int),
                labels=np.array([]),
            )


class TestEuclideanFeedback:
    def test_query_ranked_first(self, small_database, small_dataset):
        context = _context_for_query(small_database, small_dataset, 5)
        result = EuclideanFeedback().rank(context)
        assert result.image_indices[0] == 5
        assert result.algorithm == "euclidean"

    def test_scores_cover_whole_database(self, small_database, small_dataset):
        context = _context_for_query(small_database, small_dataset, 0)
        scores = EuclideanFeedback().score(context)
        assert scores.shape == (small_database.num_images,)


class TestRFSVM:
    def test_improves_over_euclidean(self, small_database, small_dataset):
        """Averaged over several queries, RF-SVM must beat the no-learning baseline."""
        gains = []
        for query_index in range(0, small_dataset.num_images, 12):
            context = _context_for_query(small_database, small_dataset, query_index)
            relevant = relevance_ground_truth(small_dataset, query_index)
            euclid = EuclideanFeedback().rank(context)
            rf = RFSVM(C=10.0).rank(context)
            gains.append(
                _precision_at(rf, relevant, 12) - _precision_at(euclid, relevant, 12)
            )
        assert np.mean(gains) > 0

    def test_positive_feedback_images_ranked_high(self, small_database, small_dataset):
        context = _context_for_query(small_database, small_dataset, 0)
        result = RFSVM(C=10.0).rank(context)
        top = set(result.image_indices[: context.num_labeled].tolist())
        positives = set(context.positive_indices.tolist())
        assert len(top & positives) >= len(positives) // 2

    def test_single_class_fallback(self, small_database):
        context = FeedbackContext(
            database=small_database,
            query=Query(query_index=0),
            labeled_indices=np.array([0, 1, 2]),
            labels=np.array([1.0, 1.0, 1.0]),
        )
        scores = RFSVM().score(context)
        assert np.all(np.isfinite(scores))
        # The positives themselves should score near the top.
        top10 = np.argsort(-scores)[:10]
        assert len(set(top10.tolist()) & {0, 1, 2}) >= 2

    def test_negative_only_fallback(self, small_database):
        context = FeedbackContext(
            database=small_database,
            query=Query(query_index=0),
            labeled_indices=np.array([0, 1, 2]),
            labels=np.array([-1.0, -1.0, -1.0]),
        )
        scores = RFSVM().score(context)
        assert np.all(np.isfinite(scores))


class TestLRF2SVMs:
    def test_runs_and_scores_all_images(self, small_database, small_dataset):
        context = _context_for_query(small_database, small_dataset, 0)
        scores = LRF2SVMs().score(context)
        assert scores.shape == (small_database.num_images,)

    def test_cold_start_matches_visual_only(self, empty_log_database, small_dataset):
        context = _context_for_query(empty_log_database, small_dataset, 0)
        with_log = LRF2SVMs(C_visual=10.0)
        visual_only = RFSVM(C=10.0)
        np.testing.assert_allclose(
            with_log.score(context), visual_only.score(context), atol=1e-8
        )

    def test_log_changes_ranking(self, small_database, small_dataset):
        context = _context_for_query(small_database, small_dataset, 0)
        two_svms = LRF2SVMs().score(context)
        visual_only = RFSVM(C=10.0).score(context)
        assert not np.allclose(two_svms, visual_only)


class TestLRFCSVM:
    def test_runs_and_scores_all_images(self, small_database, small_dataset):
        context = _context_for_query(small_database, small_dataset, 0)
        algorithm = LRFCSVM(num_unlabeled=8, random_state=1)
        scores = algorithm.score(context)
        assert scores.shape == (small_database.num_images,)
        assert algorithm.last_result_ is not None
        assert algorithm.last_result_.rho_schedule  # annealing actually ran

    def test_cold_start_matches_visual_only(self, empty_log_database, small_dataset):
        context = _context_for_query(empty_log_database, small_dataset, 0)
        csvm = LRFCSVM(num_unlabeled=8, random_state=1)
        visual_only = RFSVM(C=10.0)
        np.testing.assert_allclose(
            csvm.score(context), visual_only.score(context), atol=1e-8
        )

    def test_single_class_fallback(self, small_database):
        context = FeedbackContext(
            database=small_database,
            query=Query(query_index=0),
            labeled_indices=np.array([0, 1]),
            labels=np.array([1.0, 1.0]),
        )
        scores = LRFCSVM(num_unlabeled=6).score(context)
        assert np.all(np.isfinite(scores))

    def test_selection_strategy_configurable(self, small_database, small_dataset):
        context = _context_for_query(small_database, small_dataset, 0)
        near = LRFCSVM(num_unlabeled=8, selection="near-labeled", random_state=0).score(context)
        boundary = LRFCSVM(num_unlabeled=8, selection="boundary", random_state=0).score(context)
        assert not np.allclose(near, boundary)

    def test_invalid_num_unlabeled(self):
        with pytest.raises(ValidationError):
            LRFCSVM(num_unlabeled=1)

    def test_log_snapshot_injection_matches_on_demand_read(
        self, small_database, small_dataset
    ):
        """A context scored through an injected snapshot is bit-identical
        to one reading the live log (no appends in between)."""
        base = _context_for_query(small_database, small_dataset, 0)
        injected = FeedbackContext(
            database=small_database,
            query=base.query,
            labeled_indices=base.labeled_indices,
            labels=base.labels,
            log=small_database.log_database.snapshot(),
        )
        algorithm = LRFCSVM(num_unlabeled=8, random_state=1)
        reference = LRFCSVM(num_unlabeled=8, random_state=1)
        np.testing.assert_array_equal(
            algorithm.score(injected), reference.score(base)
        )


class TestLRFCSVMGammaFreeze:
    """Satellite: gamma='scale' resolved once per session, carried in memory."""

    def _memory_context(self, database, dataset, query, memory):
        base = _context_for_query(database, dataset, query)
        return FeedbackContext(
            database=database,
            query=base.query,
            labeled_indices=base.labeled_indices,
            labels=base.labels,
            memory=memory,
        )

    def test_resolved_gamma_stored_and_reused(self, small_database, small_dataset):
        from repro.feedback.base import FeedbackMemory

        memory = FeedbackMemory()
        algorithm = LRFCSVM(num_unlabeled=8, random_state=1)
        context = self._memory_context(small_database, small_dataset, 0, memory)
        algorithm.score(context)
        resolved = memory.meta["resolved_gamma_visual"]
        assert isinstance(resolved, float) and resolved > 0
        # The default log kernel is linear — nothing to resolve there.
        assert "resolved_gamma_log" not in memory.meta

        # Round 2 with a *different* labelled set keeps the frozen value.
        second = self._memory_context(small_database, small_dataset, 1, memory)
        algorithm.score(second)
        assert memory.meta["resolved_gamma_visual"] == resolved

    def test_resolved_value_is_round_one_labeled_resolution(
        self, small_database, small_dataset
    ):
        """The frozen bandwidth is exactly what gamma='scale' resolves to on
        the session's first labelled set — and every stage (selection SVCs
        *and* the coupled SVM) then shares that one value."""
        from repro.feedback.base import FeedbackMemory

        memory = FeedbackMemory()
        context = self._memory_context(small_database, small_dataset, 0, memory)
        LRFCSVM(num_unlabeled=8, random_state=1).score(context)
        labeled = small_database.features[context.labeled_indices]
        expected = 1.0 / (labeled.shape[1] * float(labeled.var()))
        assert memory.meta["resolved_gamma_visual"] == pytest.approx(expected)

    def test_frozen_rounds_are_deterministic(self, small_database, small_dataset):
        """Two identical sessions produce bit-identical scores in every
        round — the frozen-gamma path stays fully deterministic."""
        from repro.feedback.base import FeedbackMemory

        def run():
            memory = FeedbackMemory()
            algorithm = LRFCSVM(num_unlabeled=8, random_state=1)
            first = self._memory_context(small_database, small_dataset, 0, memory)
            algorithm.score(first)
            second = self._memory_context(small_database, small_dataset, 1, memory)
            return algorithm.score(second)

        np.testing.assert_array_equal(run(), run())

    def test_frozen_gamma_survives_json_round_trip(self):
        """The carried float must round-trip exactly through the session
        stores' JSON documents (Python JSON floats are exact repr)."""
        import json

        value = 1.0 / (36 * 0.123456789012345)
        assert json.loads(json.dumps(value)) == value

    def test_numeric_gamma_is_left_alone(self, small_database, small_dataset):
        from repro.core.coupled_svm import CoupledSVMConfig
        from repro.feedback.base import FeedbackMemory

        memory = FeedbackMemory()
        algorithm = LRFCSVM(
            config=CoupledSVMConfig(gamma=0.5), num_unlabeled=8, random_state=1
        )
        context = self._memory_context(small_database, small_dataset, 0, memory)
        algorithm.score(context)
        assert "resolved_gamma_visual" not in memory.meta


class TestRegistry:
    def test_all_paper_schemes_available(self):
        names = available_algorithms()
        for expected in ("euclidean", "rf-svm", "lrf-2svms", "lrf-csvm"):
            assert expected in names

    def test_make_algorithm_types(self):
        assert isinstance(make_algorithm("euclidean"), EuclideanFeedback)
        assert isinstance(make_algorithm("rf-svm"), RFSVM)
        assert isinstance(make_algorithm("lrf-2svms"), LRF2SVMs)
        assert isinstance(make_algorithm("lrf-csvm"), LRFCSVM)

    def test_kwargs_forwarded(self):
        algorithm = make_algorithm("rf-svm", C=3.0)
        assert algorithm.C == 3.0

    def test_unknown_name(self):
        with pytest.raises(ValidationError):
            make_algorithm("neural-net")
