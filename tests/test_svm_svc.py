"""Tests for the SVC estimator and the SVMModel value object."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import SolverError, ValidationError
from repro.svm.kernels import LinearKernel, PolynomialKernel, RBFKernel
from repro.svm.model import SVMModel
from repro.svm.svc import SVC


class TestSVCFit:
    def test_separable_accuracy(self, linearly_separable):
        features, labels = linearly_separable
        classifier = SVC(C=1.0, kernel="linear").fit(features, labels)
        assert classifier.score(features, labels) == 1.0

    def test_rbf_solves_xor(self):
        features = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 0.0], [1.0, 1.0]])
        labels = np.array([-1.0, 1.0, 1.0, -1.0])
        classifier = SVC(C=10.0, kernel="rbf", gamma=1.0).fit(features, labels)
        assert classifier.score(features, labels) == 1.0

    def test_decision_function_sign_matches_predict(self, linearly_separable):
        features, labels = linearly_separable
        classifier = SVC(C=1.0, kernel="rbf").fit(features, labels)
        decisions = classifier.decision_function(features)
        predictions = classifier.predict(features)
        np.testing.assert_array_equal(np.where(decisions >= 0, 1.0, -1.0), predictions)

    def test_support_vectors_subset_of_training(self, linearly_separable):
        features, labels = linearly_separable
        classifier = SVC(C=1.0, kernel="linear").fit(features, labels)
        assert classifier.model_.num_support_vectors <= features.shape[0]
        assert classifier.model_.num_support_vectors >= 2

    def test_sample_weight_changes_solution(self, linearly_separable):
        features, labels = linearly_separable
        uniform = SVC(C=1.0, kernel="rbf").fit(features, labels)
        weights = np.ones(labels.shape[0])
        weights[labels > 0] = 1e-3
        weighted = SVC(C=1.0, kernel="rbf").fit(features, labels, sample_weight=weights)
        assert not np.allclose(
            uniform.decision_function(features), weighted.decision_function(features)
        )

    def test_sample_weight_bounds_alphas(self, linearly_separable):
        features, labels = linearly_separable
        weights = np.full(labels.shape[0], 0.25)
        classifier = SVC(C=2.0, kernel="linear").fit(features, labels, sample_weight=weights)
        assert np.all(classifier.result_.alphas <= 0.5 + 1e-9)

    def test_prediction_on_new_points(self, linearly_separable):
        features, labels = linearly_separable
        classifier = SVC(C=1.0, kernel="rbf").fit(features, labels)
        assert classifier.predict(np.array([[3.0, 3.0]]))[0] == 1.0
        assert classifier.predict(np.array([[-3.0, -3.0]]))[0] == -1.0


class TestSVCKernelConstruction:
    def test_poly_receives_hyperparameters(self):
        classifier = SVC(kernel="poly", gamma=2.0, degree=2, coef0=0.5)
        kernel = classifier.kernel
        assert isinstance(kernel, PolynomialKernel)
        assert kernel.gamma == 2.0
        assert kernel.degree == 2
        assert kernel.coef0 == 0.5

    def test_poly_string_gamma_falls_back_to_default(self):
        kernel = SVC(kernel="poly", gamma="scale").kernel
        assert isinstance(kernel, PolynomialKernel)
        assert kernel.gamma == 1.0

    def test_poly_gamma_changes_solution(self, linearly_separable):
        features, labels = linearly_separable
        narrow = SVC(kernel="poly", gamma=0.01, degree=2).fit(features, labels)
        wide = SVC(kernel="poly", gamma=5.0, degree=2).fit(features, labels)
        assert not np.allclose(
            narrow.decision_function(features), wide.decision_function(features)
        )

    def test_kernel_instance_passes_through(self):
        kernel = RBFKernel(gamma=0.3)
        assert SVC(kernel=kernel).kernel is kernel


class TestSVCDegenerateSupport:
    def test_vanishing_alphas_yield_explicit_empty_model(self):
        """Huge-norm points make the SMO updates vanish below the SV cutoff."""
        features = np.array([[1e8], [-1e8]])
        labels = np.array([1.0, -1.0])
        classifier = SVC(C=10.0, kernel="linear").fit(features, labels)
        assert classifier.model_.num_support_vectors == 0
        assert classifier.support_.size == 0
        # The empty model predicts from the bias alone.
        decisions = classifier.decision_function(np.array([[0.0], [3.0]]))
        np.testing.assert_allclose(decisions, classifier.model_.bias)
        assert classifier.predict(np.array([[1.0]])).shape == (1,)


class TestSVCWarmStartAndGram:
    def test_precomputed_gram_matches_regular_fit(self, linearly_separable):
        features, labels = linearly_separable
        regular = SVC(C=1.0, kernel="rbf").fit(features, labels)
        kernel = RBFKernel("scale").fit(features)
        gram = kernel.gram(features)
        fast = SVC(C=1.0, kernel="rbf").fit(features, labels, precomputed_gram=gram)
        np.testing.assert_allclose(
            fast.decision_function(features), regular.decision_function(features)
        )
        assert fast.kernel_evaluations_ == 0
        assert regular.kernel_evaluations_ == features.shape[0] ** 2

    def test_precomputed_gram_shape_validated(self, linearly_separable):
        features, labels = linearly_separable
        with pytest.raises(ValidationError):
            SVC().fit(features, labels, precomputed_gram=np.eye(3))

    def test_warm_start_refit_is_free(self, linearly_separable):
        features, labels = linearly_separable
        classifier = SVC(C=1.0, kernel="rbf", warm_start=True).fit(features, labels)
        first_iterations = classifier.solver_iterations_
        assert first_iterations > 0
        classifier.fit(features, labels)
        assert classifier.solver_iterations_ == first_iterations

    def test_unconverged_fit_warns(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(30, 2))
        labels = np.where(rng.random(30) > 0.5, 1.0, -1.0)
        labels[0] = -labels[0] if np.unique(labels).size < 2 else labels[0]
        with pytest.warns(RuntimeWarning, match="max_iter"):
            SVC(C=10.0, kernel="rbf", max_iter=2).fit(features, labels)

    def test_initial_alphas_forwarded(self, linearly_separable):
        features, labels = linearly_separable
        cold = SVC(C=1.0, kernel="rbf").fit(features, labels)
        warm = SVC(C=1.0, kernel="rbf")
        warm.fit(features, labels, initial_alphas=cold.result_.alphas)
        assert warm.solver_iterations_ == 0
        np.testing.assert_allclose(
            warm.decision_function(features), cold.decision_function(features)
        )


class TestSVCValidation:
    def test_invalid_C(self):
        with pytest.raises(ValidationError):
            SVC(C=0.0)

    def test_misaligned_shapes(self):
        with pytest.raises(ValidationError):
            SVC().fit(np.ones((4, 2)), np.array([1.0, -1.0]))

    def test_negative_sample_weight(self):
        with pytest.raises(ValidationError):
            SVC().fit(
                np.ones((2, 2)), np.array([1.0, -1.0]), sample_weight=np.array([1.0, -1.0])
            )

    def test_misaligned_sample_weight(self):
        with pytest.raises(ValidationError):
            SVC().fit(
                np.array([[0.0], [1.0]]),
                np.array([1.0, -1.0]),
                sample_weight=np.array([1.0]),
            )

    def test_predict_before_fit(self):
        with pytest.raises(SolverError):
            SVC().predict(np.ones((1, 2)))

    def test_single_class_training_rejected(self):
        with pytest.raises(SolverError):
            SVC().fit(np.random.default_rng(0).normal(size=(5, 2)), np.ones(5))


class TestSVMModel:
    def test_decision_function_formula(self):
        kernel = LinearKernel()
        model = SVMModel(
            support_vectors=np.array([[1.0, 0.0], [0.0, 1.0]]),
            dual_coef=np.array([0.5, -0.25]),
            bias=0.1,
            kernel=kernel,
        )
        point = np.array([[2.0, 2.0]])
        expected = 0.5 * 2.0 - 0.25 * 2.0 + 0.1
        assert model.decision_function(point)[0] == pytest.approx(expected)

    def test_empty_model_returns_bias(self):
        model = SVMModel(
            support_vectors=np.zeros((0, 3)),
            dual_coef=np.zeros(0),
            bias=-0.7,
            kernel=LinearKernel(),
        )
        np.testing.assert_allclose(model.decision_function(np.ones((4, 3))), -0.7)

    def test_misaligned_dual_coef_rejected(self):
        with pytest.raises(ValidationError):
            SVMModel(
                support_vectors=np.ones((3, 2)),
                dual_coef=np.ones(2),
                bias=0.0,
                kernel=LinearKernel(),
            )
