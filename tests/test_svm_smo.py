"""Tests for the SMO solver: KKT conditions, known solutions, per-sample C."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SolverError, ValidationError
from repro.svm.kernels import LinearKernel, RBFKernel
from repro.svm.smo import SMOSolver


def _linear_gram(x):
    return x @ x.T


class TestSMOBasics:
    def test_two_point_problem_analytic(self):
        """For two opposite points the dual has a closed-form solution."""
        x = np.array([[1.0], [-1.0]])
        y = np.array([1.0, -1.0])
        result = SMOSolver().solve(_linear_gram(x), y, np.full(2, 10.0))
        # alpha1 = alpha2 = alpha; maximise 2a - 2a^2 -> a = 0.5.
        np.testing.assert_allclose(result.alphas, 0.5, atol=1e-6)
        assert result.bias == pytest.approx(0.0, abs=1e-6)
        assert result.converged

    def test_equality_constraint_satisfied(self, linearly_separable):
        features, labels = linearly_separable
        gram = _linear_gram(features)
        result = SMOSolver().solve(gram, labels, np.full(labels.shape[0], 1.0))
        assert abs(np.dot(result.alphas, labels)) < 1e-8

    def test_box_constraints_respected(self, linearly_separable):
        features, labels = linearly_separable
        bounds = np.full(labels.shape[0], 0.7)
        result = SMOSolver().solve(_linear_gram(features), labels, bounds)
        assert np.all(result.alphas >= -1e-10)
        assert np.all(result.alphas <= bounds + 1e-10)

    def test_per_sample_bounds_respected(self, linearly_separable):
        features, labels = linearly_separable
        rng = np.random.default_rng(0)
        bounds = rng.uniform(0.01, 2.0, size=labels.shape[0])
        result = SMOSolver().solve(_linear_gram(features), labels, bounds)
        assert np.all(result.alphas <= bounds + 1e-10)

    def test_kkt_conditions_hold(self, linearly_separable):
        """Free SVs sit on the margin; bounded ones are on the correct side."""
        features, labels = linearly_separable
        C = 1.0
        gram = _linear_gram(features)
        result = SMOSolver(tolerance=1e-4).solve(gram, labels, np.full(labels.shape[0], C))
        decision = gram @ (result.alphas * labels) + result.bias
        margins = labels * decision
        free = (result.alphas > 1e-6) & (result.alphas < C - 1e-6)
        at_zero = result.alphas <= 1e-6
        at_c = result.alphas >= C - 1e-6
        if free.any():
            np.testing.assert_allclose(margins[free], 1.0, atol=1e-2)
        assert np.all(margins[at_zero] >= 1.0 - 1e-2)
        assert np.all(margins[at_c] <= 1.0 + 1e-2)

    def test_separable_data_classified_perfectly(self, linearly_separable):
        features, labels = linearly_separable
        gram = _linear_gram(features)
        result = SMOSolver().solve(gram, labels, np.full(labels.shape[0], 10.0))
        decision = gram @ (result.alphas * labels) + result.bias
        assert np.all(np.sign(decision) == labels)

    def test_objective_improves_with_more_iterations(self, linearly_separable):
        features, labels = linearly_separable
        gram = RBFKernel(gamma=0.5).gram(features)
        bounds = np.full(labels.shape[0], 5.0)
        early = SMOSolver(max_iter=3).solve(gram, labels, bounds)
        final = SMOSolver(max_iter=20000).solve(gram, labels, bounds)
        assert final.objective <= early.objective + 1e-12
        assert final.converged


class TestSMOAgainstBruteForce:
    def test_matches_scipy_qp_on_small_problem(self):
        """Compare the SMO objective against a dense solver on a tiny dual."""
        from scipy import optimize

        rng = np.random.default_rng(3)
        features = rng.normal(size=(12, 2))
        labels = np.sign(features[:, 0] + 0.3 * rng.normal(size=12))
        labels[labels == 0] = 1.0
        C = 1.5
        gram = RBFKernel(gamma=1.0).gram(features)
        q_matrix = gram * np.outer(labels, labels)

        result = SMOSolver(tolerance=1e-5).solve(gram, labels, np.full(12, C))

        def objective(alpha):
            return 0.5 * alpha @ q_matrix @ alpha - alpha.sum()

        constraints = [{"type": "eq", "fun": lambda a: np.dot(a, labels)}]
        reference = optimize.minimize(
            objective,
            x0=np.full(12, C / 2),
            bounds=[(0.0, C)] * 12,
            constraints=constraints,
            method="SLSQP",
            options={"maxiter": 500, "ftol": 1e-12},
        )
        assert result.objective <= reference.fun + 1e-4


class TestSMOValidation:
    def test_single_class_rejected(self):
        gram = np.eye(3)
        with pytest.raises(SolverError):
            SMOSolver().solve(gram, np.ones(3), np.ones(3))

    def test_non_square_gram_rejected(self):
        with pytest.raises(ValidationError):
            SMOSolver().solve(np.ones((3, 2)), np.array([1.0, -1.0, 1.0]), np.ones(3))

    def test_non_positive_bounds_rejected(self):
        gram = np.eye(2)
        with pytest.raises(ValidationError):
            SMOSolver().solve(gram, np.array([1.0, -1.0]), np.array([1.0, 0.0]))

    def test_invalid_labels_rejected(self):
        with pytest.raises(ValidationError):
            SMOSolver().solve(np.eye(2), np.array([1.0, 0.5]), np.ones(2))

    def test_invalid_solver_parameters(self):
        with pytest.raises(ValidationError):
            SMOSolver(tolerance=0.0)
        with pytest.raises(ValidationError):
            SMOSolver(max_iter=0)


class TestSMOWarmStart:
    def _random_problem(self, seed, count=14):
        rng = np.random.default_rng(seed)
        features = rng.normal(size=(count, 3))
        labels = np.where(rng.random(count) > 0.5, 1.0, -1.0)
        if np.unique(labels).size < 2:
            labels[0] = -labels[0]
        gram = RBFKernel(gamma=0.7).gram(features)
        return gram, labels

    def test_warm_restart_from_solution_is_free(self):
        gram, labels = self._random_problem(0)
        bounds = np.full(labels.shape[0], 2.0)
        solver = SMOSolver()
        first = solver.solve(gram, labels, bounds)
        again = solver.solve(gram, labels, bounds, initial_alphas=first.alphas)
        assert again.iterations == 0
        np.testing.assert_allclose(again.alphas, first.alphas)

    def test_warm_start_still_feasible_from_infeasible_point(self):
        gram, labels = self._random_problem(1)
        bounds = np.full(labels.shape[0], 1.0)
        wild = np.full(labels.shape[0], 50.0)  # far outside the box
        result = SMOSolver().solve(gram, labels, bounds, initial_alphas=wild)
        assert result.converged
        assert abs(np.dot(result.alphas, labels)) < 1e-8
        assert np.all(result.alphas >= -1e-10)
        assert np.all(result.alphas <= bounds + 1e-10)

    def test_warm_start_misaligned_rejected(self):
        gram, labels = self._random_problem(2)
        with pytest.raises(ValidationError):
            SMOSolver().solve(
                gram, labels, np.ones(labels.shape[0]), initial_alphas=np.zeros(3)
            )

    def test_q_matrix_path_matches_gram_path(self):
        gram, labels = self._random_problem(3)
        bounds = np.full(labels.shape[0], 1.5)
        solver = SMOSolver()
        direct = solver.solve(gram, labels, bounds)
        via_q = solver.solve(
            None, labels, bounds, q_matrix=gram * np.outer(labels, labels)
        )
        np.testing.assert_allclose(via_q.alphas, direct.alphas)
        assert via_q.bias == pytest.approx(direct.bias)

    def test_gradient_returned_and_consistent(self):
        gram, labels = self._random_problem(4)
        bounds = np.full(labels.shape[0], 1.0)
        result = SMOSolver().solve(gram, labels, bounds)
        q_matrix = gram * np.outer(labels, labels)
        np.testing.assert_allclose(result.gradient, q_matrix @ result.alphas - 1.0)

    @given(seed=st.integers(0, 500), flips=st.integers(1, 5))
    @settings(max_examples=20, deadline=None)
    def test_warm_start_matches_cold_after_label_flips(self, seed, flips):
        """Warm and cold starts reach the same decision function.

        This is the correctness contract of the coupled SVM's warm-started
        AO loop: after random label flips and a bound change, warm-starting
        from the previous solution must converge to the same model (the dual
        is strictly convex for an RBF Gram over distinct points).
        """
        rng = np.random.default_rng(seed)
        gram, labels = self._random_problem(seed)
        count = labels.shape[0]
        bounds = np.full(count, 1.0)
        solver = SMOSolver(tolerance=1e-6)
        base = solver.solve(gram, labels, bounds)

        flipped = labels.copy()
        flipped[rng.choice(count, size=min(flips, count), replace=False)] *= -1.0
        if np.unique(flipped).size < 2:
            flipped[0] = -flipped[0]
        new_bounds = bounds * rng.uniform(0.5, 2.0)

        cold = solver.solve(gram, flipped, new_bounds)
        warm = solver.solve(gram, flipped, new_bounds, initial_alphas=base.alphas)
        decision_cold = gram @ (cold.alphas * flipped) + cold.bias
        decision_warm = gram @ (warm.alphas * flipped) + warm.bias
        np.testing.assert_allclose(decision_warm, decision_cold, atol=1e-4)
        assert abs(np.dot(warm.alphas, flipped)) < 1e-8


class TestSMOShrinking:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_shrinking_matches_exact_solve(self, seed):
        rng = np.random.default_rng(seed)
        count = int(rng.integers(8, 24))
        features = rng.normal(size=(count, 3))
        labels = np.where(rng.random(count) > 0.5, 1.0, -1.0)
        if np.unique(labels).size < 2:
            labels[0] = -labels[0]
        gram = RBFKernel(gamma=0.7).gram(features)
        bounds = rng.uniform(0.05, 2.0, size=count)
        plain = SMOSolver(tolerance=1e-5).solve(gram, labels, bounds)
        shrunk = SMOSolver(tolerance=1e-5, shrinking=True).solve(gram, labels, bounds)
        decision_plain = gram @ (plain.alphas * labels) + plain.bias
        decision_shrunk = gram @ (shrunk.alphas * labels) + shrunk.bias
        np.testing.assert_allclose(decision_shrunk, decision_plain, atol=1e-3)
        assert shrunk.converged


class TestSMOProperties:
    @given(seed=st.integers(0, 1000), c_value=st.floats(0.1, 10.0))
    @settings(max_examples=20, deadline=None)
    def test_constraints_always_satisfied(self, seed, c_value):
        rng = np.random.default_rng(seed)
        count = int(rng.integers(4, 16))
        features = rng.normal(size=(count, 3))
        labels = np.where(rng.random(count) > 0.5, 1.0, -1.0)
        if np.unique(labels).size < 2:
            labels[0] = -labels[0]
        gram = RBFKernel(gamma=0.7).gram(features)
        bounds = np.full(count, c_value)
        result = SMOSolver().solve(gram, labels, bounds)
        assert abs(np.dot(result.alphas, labels)) < 1e-6
        assert np.all(result.alphas >= -1e-9)
        assert np.all(result.alphas <= c_value + 1e-9)
        assert result.objective <= 1e-9  # alpha=0 gives 0; the optimum is never worse
