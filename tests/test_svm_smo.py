"""Tests for the SMO solver: KKT conditions, known solutions, per-sample C."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SolverError, ValidationError
from repro.svm.kernels import LinearKernel, RBFKernel
from repro.svm.smo import SMOSolver


def _linear_gram(x):
    return x @ x.T


class TestSMOBasics:
    def test_two_point_problem_analytic(self):
        """For two opposite points the dual has a closed-form solution."""
        x = np.array([[1.0], [-1.0]])
        y = np.array([1.0, -1.0])
        result = SMOSolver().solve(_linear_gram(x), y, np.full(2, 10.0))
        # alpha1 = alpha2 = alpha; maximise 2a - 2a^2 -> a = 0.5.
        np.testing.assert_allclose(result.alphas, 0.5, atol=1e-6)
        assert result.bias == pytest.approx(0.0, abs=1e-6)
        assert result.converged

    def test_equality_constraint_satisfied(self, linearly_separable):
        features, labels = linearly_separable
        gram = _linear_gram(features)
        result = SMOSolver().solve(gram, labels, np.full(labels.shape[0], 1.0))
        assert abs(np.dot(result.alphas, labels)) < 1e-8

    def test_box_constraints_respected(self, linearly_separable):
        features, labels = linearly_separable
        bounds = np.full(labels.shape[0], 0.7)
        result = SMOSolver().solve(_linear_gram(features), labels, bounds)
        assert np.all(result.alphas >= -1e-10)
        assert np.all(result.alphas <= bounds + 1e-10)

    def test_per_sample_bounds_respected(self, linearly_separable):
        features, labels = linearly_separable
        rng = np.random.default_rng(0)
        bounds = rng.uniform(0.01, 2.0, size=labels.shape[0])
        result = SMOSolver().solve(_linear_gram(features), labels, bounds)
        assert np.all(result.alphas <= bounds + 1e-10)

    def test_kkt_conditions_hold(self, linearly_separable):
        """Free SVs sit on the margin; bounded ones are on the correct side."""
        features, labels = linearly_separable
        C = 1.0
        gram = _linear_gram(features)
        result = SMOSolver(tolerance=1e-4).solve(gram, labels, np.full(labels.shape[0], C))
        decision = gram @ (result.alphas * labels) + result.bias
        margins = labels * decision
        free = (result.alphas > 1e-6) & (result.alphas < C - 1e-6)
        at_zero = result.alphas <= 1e-6
        at_c = result.alphas >= C - 1e-6
        if free.any():
            np.testing.assert_allclose(margins[free], 1.0, atol=1e-2)
        assert np.all(margins[at_zero] >= 1.0 - 1e-2)
        assert np.all(margins[at_c] <= 1.0 + 1e-2)

    def test_separable_data_classified_perfectly(self, linearly_separable):
        features, labels = linearly_separable
        gram = _linear_gram(features)
        result = SMOSolver().solve(gram, labels, np.full(labels.shape[0], 10.0))
        decision = gram @ (result.alphas * labels) + result.bias
        assert np.all(np.sign(decision) == labels)

    def test_objective_improves_with_more_iterations(self, linearly_separable):
        features, labels = linearly_separable
        gram = RBFKernel(gamma=0.5).gram(features)
        bounds = np.full(labels.shape[0], 5.0)
        early = SMOSolver(max_iter=3).solve(gram, labels, bounds)
        final = SMOSolver(max_iter=20000).solve(gram, labels, bounds)
        assert final.objective <= early.objective + 1e-12
        assert final.converged


class TestSMOAgainstBruteForce:
    def test_matches_scipy_qp_on_small_problem(self):
        """Compare the SMO objective against a dense solver on a tiny dual."""
        from scipy import optimize

        rng = np.random.default_rng(3)
        features = rng.normal(size=(12, 2))
        labels = np.sign(features[:, 0] + 0.3 * rng.normal(size=12))
        labels[labels == 0] = 1.0
        C = 1.5
        gram = RBFKernel(gamma=1.0).gram(features)
        q_matrix = gram * np.outer(labels, labels)

        result = SMOSolver(tolerance=1e-5).solve(gram, labels, np.full(12, C))

        def objective(alpha):
            return 0.5 * alpha @ q_matrix @ alpha - alpha.sum()

        constraints = [{"type": "eq", "fun": lambda a: np.dot(a, labels)}]
        reference = optimize.minimize(
            objective,
            x0=np.full(12, C / 2),
            bounds=[(0.0, C)] * 12,
            constraints=constraints,
            method="SLSQP",
            options={"maxiter": 500, "ftol": 1e-12},
        )
        assert result.objective <= reference.fun + 1e-4


class TestSMOValidation:
    def test_single_class_rejected(self):
        gram = np.eye(3)
        with pytest.raises(SolverError):
            SMOSolver().solve(gram, np.ones(3), np.ones(3))

    def test_non_square_gram_rejected(self):
        with pytest.raises(ValidationError):
            SMOSolver().solve(np.ones((3, 2)), np.array([1.0, -1.0, 1.0]), np.ones(3))

    def test_non_positive_bounds_rejected(self):
        gram = np.eye(2)
        with pytest.raises(ValidationError):
            SMOSolver().solve(gram, np.array([1.0, -1.0]), np.array([1.0, 0.0]))

    def test_invalid_labels_rejected(self):
        with pytest.raises(ValidationError):
            SMOSolver().solve(np.eye(2), np.array([1.0, 0.5]), np.ones(2))

    def test_invalid_solver_parameters(self):
        with pytest.raises(ValidationError):
            SMOSolver(tolerance=0.0)
        with pytest.raises(ValidationError):
            SMOSolver(max_iter=0)


class TestSMOProperties:
    @given(seed=st.integers(0, 1000), c_value=st.floats(0.1, 10.0))
    @settings(max_examples=20, deadline=None)
    def test_constraints_always_satisfied(self, seed, c_value):
        rng = np.random.default_rng(seed)
        count = int(rng.integers(4, 16))
        features = rng.normal(size=(count, 3))
        labels = np.where(rng.random(count) > 0.5, 1.0, -1.0)
        if np.unique(labels).size < 2:
            labels[0] = -labels[0]
        gram = RBFKernel(gamma=0.7).gram(features)
        bounds = np.full(count, c_value)
        result = SMOSolver().solve(gram, labels, bounds)
        assert abs(np.dot(result.alphas, labels)) < 1e-6
        assert np.all(result.alphas >= -1e-9)
        assert np.all(result.alphas <= c_value + 1e-9)
        assert result.objective <= 1e-9  # alpha=0 gives 0; the optimum is never worse
