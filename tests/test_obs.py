"""Observability tests: instruments, tracing, propagation, crash safety.

Four concerns are pinned here:

* the metric instruments and the registry — thread safety, the type-conflict
  guard, and the disabled registry's shared null instruments;
* the tracer — span nesting/parentage, the ``NULL_SPAN`` fast path, and the
  tree re-assembly helpers;
* context propagation across :class:`ParallelScheduler` thread fan-out — the
  8-thread stress asserts every job's span hangs off the submitting wave's
  root and never off another session's (no cross-trace leakage);
* the JSONL exporter's write-temp-then-``os.replace`` crash safety, plus the
  end-to-end service instrumentation (per-round span trees, DTO solver
  stats, and bit-identical rankings with observability on or off).
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

import repro.obs.exporters as exporters_module
from repro import obs
from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    InMemoryExporter,
    JSONLExporter,
    MetricsRegistry,
    NULL_SPAN,
    Tracer,
    build_span_tree,
    current_span,
    format_span_tree,
    render_snapshot,
)
from repro.utils.concurrency import ReadWriteLock, StripedLockMap

NUM_THREADS = 8


@pytest.fixture(autouse=True)
def _hub_disabled_after():
    """Every test leaves the process-wide hub in its default (off) state."""
    yield
    obs.disable()


# --------------------------------------------------------------------- metrics
class TestInstruments:
    def test_counter_accumulates_and_rejects_decrements(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_gauge_sets_and_moves(self):
        gauge = Gauge("g")
        gauge.set(10)
        gauge.inc(-3)
        assert gauge.value == 7.0
        assert gauge.snapshot() == {"type": "gauge", "value": 7.0}

    def test_histogram_buckets_and_running_stats(self):
        histogram = Histogram("h", buckets=[0.1, 1.0, 10.0])
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        state = histogram.snapshot()
        assert state["count"] == 4
        assert state["sum"] == pytest.approx(55.55)
        assert state["min"] == 0.05 and state["max"] == 50.0
        assert histogram.mean == pytest.approx(55.55 / 4)
        assert state["buckets"] == {
            "le_0.1": 1,
            "le_1": 1,
            "le_10": 1,
            "le_inf": 1,
        }

    def test_histogram_edge_lands_in_its_bucket(self):
        histogram = Histogram("h", buckets=[1.0, 2.0])
        histogram.observe(1.0)  # exactly on an edge: the <= bucket
        assert histogram.snapshot()["buckets"]["le_1"] == 1

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", buckets=[1.0, 1.0])
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("h", buckets=[2.0, 1.0])

    def test_default_buckets_are_log_spaced(self):
        assert len(DEFAULT_BUCKETS) == 10
        assert DEFAULT_BUCKETS[0] == pytest.approx(5e-05)
        for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:]):
            assert b == pytest.approx(4.0 * a)

    def test_counter_thread_safety(self):
        counter = Counter("c")
        barrier = threading.Barrier(NUM_THREADS)

        def worker():
            barrier.wait(timeout=10)
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=worker) for _ in range(NUM_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert counter.value == NUM_THREADS * 1000


class TestMetricsRegistry:
    def test_get_or_create_caches_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.names() == ["a"]

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_disabled_registry_hands_out_shared_null_instruments(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("a")
        assert counter is registry.counter("b")  # one shared singleton
        counter.inc(5)
        registry.gauge("g").set(3)
        registry.histogram("h").observe(1.0)
        assert counter.value == 0.0
        assert registry.names() == []  # nothing was registered
        assert registry.snapshot() == {}

    def test_snapshot_and_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.histogram("h", buckets=[1.0]).observe(0.5)
        snapshot = registry.snapshot()
        assert snapshot["c"] == {"type": "counter", "value": 2.0}
        assert snapshot["h"]["count"] == 1
        registry.reset()
        assert registry.snapshot() == {}

    def test_registry_concurrent_get_or_create(self):
        registry = MetricsRegistry()
        instruments = []
        barrier = threading.Barrier(NUM_THREADS)

        def worker():
            barrier.wait(timeout=10)
            for i in range(100):
                instruments.append(registry.counter(f"c{i % 5}"))

        threads = [threading.Thread(target=worker) for _ in range(NUM_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert len(registry.names()) == 5
        # Every thread got the same instrument per name.
        assert len({id(i) for i in instruments}) == 5


# --------------------------------------------------------------------- tracing
class TestTracer:
    def test_nesting_records_parentage_and_shared_trace_id(self):
        exporter = InMemoryExporter()
        tracer = Tracer([exporter])
        with tracer.span("root", wave=3) as root:
            assert current_span() is root
            with tracer.span("child") as child:
                assert child.parent_id == root.span_id
                assert child.trace_id == root.trace_id
            assert current_span() is root
        assert current_span() is None
        names = [span.name for span in exporter.spans]
        assert names == ["child", "root"]  # children close (export) first
        assert root.duration is not None and root.duration >= 0

    def test_sibling_roots_get_distinct_traces(self):
        tracer = Tracer()
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
        assert a.trace_id != b.trace_id
        assert a.parent_id is None and b.parent_id is None

    def test_disabled_tracer_returns_the_null_span_singleton(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("anything", attr=1)
        assert span is NULL_SPAN
        assert tracer.span("other") is span
        with span as entered:
            assert entered.set(more=2) is entered
            assert current_span() is None  # never installed as current
        assert span.duration is None

    def test_exception_is_annotated_and_span_still_exported(self):
        exporter = InMemoryExporter()
        tracer = Tracer([exporter])
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        (span,) = exporter.spans
        assert span.attributes["error"] == "RuntimeError"
        assert span.end is not None

    def test_build_and_format_span_tree(self):
        exporter = InMemoryExporter()
        tracer = Tracer([exporter])
        with tracer.span("wave"):
            with tracer.span("round", session_id="s1"):
                with tracer.span("solve"):
                    pass
            with tracer.span("round", session_id="s2"):
                pass
        (root,) = build_span_tree(exporter.spans)
        assert root["span"].name == "wave"
        children = [node["span"].attributes["session_id"] for node in root["children"]]
        assert children == ["s1", "s2"]  # ordered by start time
        assert root["children"][0]["children"][0]["span"].name == "solve"
        text = format_span_tree(exporter.spans)
        lines = text.splitlines()
        assert lines[0].startswith("wave  (")
        assert lines[1].startswith("  round  (") and "session_id=s1" in lines[1]
        assert lines[2].startswith("    solve  (")

    def test_to_document_round_trips_through_json(self):
        tracer = Tracer()
        with tracer.span("op", k=5) as span:
            pass
        document = json.loads(json.dumps(span.to_document()))
        assert document["name"] == "op"
        assert document["attributes"] == {"k": 5}
        assert document["duration"] == pytest.approx(span.duration)


class TestParallelPropagation:
    def test_eight_thread_fanout_keeps_parents_and_traces_apart(
        self, small_database
    ):
        """8 caller threads share one pool-backed scheduler; every job span
        must hang off its own caller's root — never another session's."""
        from repro.cbir.search import SearchEngine
        from repro.service import ParallelScheduler

        exporter = InMemoryExporter()
        tracer = Tracer([exporter])
        scheduler = ParallelScheduler(
            SearchEngine(small_database), small_database.log_database, max_workers=4
        )
        JOBS_PER_WAVE = 6
        errors = []
        roots = {}
        barrier = threading.Barrier(NUM_THREADS)

        def job(thread_index, job_index):
            with tracer.span(
                "job", thread=thread_index, job=job_index
            ):
                return thread_index

        def wave(thread_index):
            try:
                barrier.wait(timeout=30)
                with tracer.span("wave", thread=thread_index) as root:
                    roots[thread_index] = root
                    results = scheduler.run_jobs(
                        [
                            lambda j=j: job(thread_index, j)
                            for j in range(JOBS_PER_WAVE)
                        ]
                    )
                assert results == [thread_index] * JOBS_PER_WAVE
            except BaseException as error:  # noqa: BLE001 - reported to the test
                errors.append(error)

        threads = [
            threading.Thread(target=wave, args=(i,)) for i in range(NUM_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        scheduler.shutdown()
        assert not errors, f"wave raised: {errors[0]!r}"

        job_spans = [span for span in exporter.spans if span.name == "job"]
        assert len(job_spans) == NUM_THREADS * JOBS_PER_WAVE
        for span in job_spans:
            expected_root = roots[span.attributes["thread"]]
            assert span.parent_id == expected_root.span_id
            assert span.trace_id == expected_root.trace_id
        # Exactly one trace per caller thread; none of them shared.
        assert len({root.trace_id for root in roots.values()}) == NUM_THREADS

    def test_service_round_spans_nest_under_the_feedback_batch(
        self, small_dataset, small_database
    ):
        """An enabled per-round workload yields a complete span tree: batch →
        round → solve, with the scheduler flush under the open wave."""
        import copy

        from repro.cbir.database import ImageDatabase
        from repro.service import FeedbackRequest, RetrievalService, SearchRequest

        database = ImageDatabase(
            small_dataset, log_database=copy.deepcopy(small_database.log_database)
        )
        exporter = InMemoryExporter()
        obs.configure(exporters=[exporter])
        try:
            service = RetrievalService(
                database, scheduler="parallel", max_workers=4, log_policy="on_close"
            )
            responses = service.open_sessions(
                [
                    SearchRequest(query=i, top_k=8, algorithm="lrf-csvm")
                    for i in range(4)
                ]
            )
            batch = [
                FeedbackRequest(
                    session_id=response.session_id,
                    judgements={int(response.image_indices[0]): 1,
                                int(response.image_indices[-1]): -1},
                    top_k=8,
                )
                for response in responses
            ]
            responses = service.submit_feedback_batch(batch)
            service.close_sessions([r.session_id for r in responses])
            service.shutdown()
        finally:
            obs.disable()

        spans = exporter.spans
        by_id = {span.span_id: span for span in spans}
        batch_spans = [s for s in spans if s.name == "service.feedback_batch"]
        assert len(batch_spans) == 1
        round_spans = [s for s in spans if s.name == "service.round"]
        assert len(round_spans) == 4
        for span in round_spans:
            assert span.parent_id == batch_spans[0].span_id
        solve_spans = [s for s in spans if s.name == "solver.smo.solve"]
        assert solve_spans, "feedback rounds must produce solver spans"
        for span in solve_spans:
            ancestor = span
            while ancestor.parent_id is not None:
                ancestor = by_id[ancestor.parent_id]
            assert ancestor.name == "service.feedback_batch"
        open_spans = [s for s in spans if s.name == "service.open_sessions"]
        flush_spans = [s for s in spans if s.name == "scheduler.flush"]
        assert open_spans and flush_spans
        assert any(
            f.parent_id == open_spans[0].span_id for f in flush_spans
        ), "the open wave's flush must nest under service.open_sessions"

    def test_enabled_metrics_cover_every_layer_and_match_disabled_rankings(
        self, small_dataset, small_database
    ):
        """Observability on vs off: identical rankings, and the enabled run
        records nonzero metrics for service, scheduler, solver, index (via
        logdb matrix use) and logdb layers."""
        import copy

        from repro.cbir.database import ImageDatabase
        from repro.service import FeedbackRequest, RetrievalService, SearchRequest

        def run_workload():
            database = ImageDatabase(
                small_dataset,
                log_database=copy.deepcopy(small_database.log_database),
            )
            database.build_index("ivf")
            service = RetrievalService(database, log_policy="on_close")
            rankings = []
            responses = service.open_sessions(
                [
                    SearchRequest(query=i, top_k=8, algorithm="lrf-csvm")
                    for i in range(3)
                ]
            )
            rankings.append([np.asarray(r.image_indices).copy() for r in responses])
            batch = [
                FeedbackRequest(
                    session_id=response.session_id,
                    judgements={int(response.image_indices[0]): 1,
                                int(response.image_indices[-1]): -1},
                    top_k=8,
                )
                for response in responses
            ]
            responses = service.submit_feedback_batch(batch)
            rankings.append([np.asarray(r.image_indices).copy() for r in responses])
            service.close_sessions([r.session_id for r in responses])
            service.shutdown()
            return rankings

        baseline = run_workload()
        hub = obs.configure()
        try:
            traced = run_workload()
            snapshot = hub.metrics.snapshot()
        finally:
            obs.disable()

        for round_baseline, round_traced in zip(baseline, traced):
            for a, b in zip(round_baseline, round_traced):
                np.testing.assert_array_equal(a, b)

        def total(name):
            state = snapshot.get(name, {})
            return state.get("value", state.get("count", 0))

        assert total("service.rounds_scored") == 3
        assert total("scheduler.flushes") > 0
        assert total("solver.smo.solves") > 0
        assert total("index.queries") > 0
        assert total("index.ivf.cells_probed") > 0
        assert total("logdb.sessions_appended") == 3
        assert total("service.feedback_batch_seconds") > 0


# ------------------------------------------------------------------- exporters
class TestJSONLExporter:
    def _span(self, tracer, name):
        with tracer.span(name) as span:
            pass
        return span

    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "traces" / "spans.jsonl"
        exporter = JSONLExporter(path)
        tracer = Tracer([exporter])
        for name in ("a", "b", "c"):
            self._span(tracer, name)
        exporter.flush()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert [json.loads(line)["name"] for line in lines] == ["a", "b", "c"]

    def test_auto_flush_every_n_spans(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        exporter = JSONLExporter(path, flush_every=2)
        tracer = Tracer([exporter])
        self._span(tracer, "a")
        assert not path.exists()  # still buffered
        self._span(tracer, "b")
        assert len(path.read_text(encoding="utf-8").splitlines()) == 2

    def test_crash_mid_flush_preserves_previous_file(self, tmp_path, monkeypatch):
        """Kill os.replace mid-flush: the previous complete file survives
        and no temp droppings are left behind."""
        path = tmp_path / "spans.jsonl"
        exporter = JSONLExporter(path, flush_every=100)
        tracer = Tracer([exporter])
        self._span(tracer, "committed")
        exporter.flush()
        before = path.read_text(encoding="utf-8")

        self._span(tracer, "doomed")

        def dying_replace(src, dst):
            raise OSError("simulated crash mid-replace")

        monkeypatch.setattr(exporters_module.os, "replace", dying_replace)
        with pytest.raises(OSError, match="simulated crash"):
            exporter.flush()
        monkeypatch.undo()

        assert path.read_text(encoding="utf-8") == before  # old file intact
        assert not list(tmp_path.glob("*tmp*"))  # temp unlinked
        # Recovery: the buffered spans are still there for the next flush.
        exporter.flush()
        names = [
            json.loads(line)["name"]
            for line in path.read_text(encoding="utf-8").splitlines()
        ]
        assert names == ["committed", "doomed"]

    def test_rejects_bad_flush_every(self, tmp_path):
        with pytest.raises(ValueError, match="flush_every"):
            JSONLExporter(tmp_path / "s.jsonl", flush_every=0)


class TestInMemoryExporter:
    def test_collects_copies_and_clears(self):
        exporter = InMemoryExporter()
        tracer = Tracer([exporter])
        with tracer.span("a"):
            pass
        listed = exporter.spans
        assert len(exporter) == 1 and listed[0].name == "a"
        listed.append("junk")  # the property hands out a copy
        assert len(exporter) == 1
        exporter.clear()
        assert len(exporter) == 0


# ------------------------------------------------------------------ lock waits
class TestLockWaitHooks:
    def _contended(self, hold, acquire):
        """Hold a lock in another thread for ~50 ms, then run *acquire*."""
        holding = threading.Event()
        release = threading.Event()

        def holder():
            with hold():
                holding.set()
                release.wait(timeout=30)

        thread = threading.Thread(target=holder)
        thread.start()
        assert holding.wait(timeout=10)
        timer = threading.Timer(0.05, release.set)
        timer.start()
        try:
            acquire()
        finally:
            release.set()
            thread.join(timeout=10)
            timer.cancel()

    def test_striped_lock_map_reports_stripe_and_wave_waits(self):
        recorded = []
        locks = StripedLockMap(
            num_stripes=2, wait_callback=lambda mode, dt: recorded.append((mode, dt))
        )

        def acquire():
            with locks.holding("key"):
                pass

        self._contended(lambda: locks.holding("key"), acquire)
        stripe_waits = [dt for mode, dt in recorded if mode == "stripe"]
        assert len(stripe_waits) == 2  # holder's (free) + contender's
        assert max(stripe_waits) > 0.01  # the contender really waited

        recorded.clear()
        with locks.all_of(["a", "b", "c"]):
            pass
        assert [mode for mode, _ in recorded] == ["wave"]
        assert recorded[0][1] >= 0.0

    def test_read_write_lock_reports_read_and_write_waits(self):
        recorded = []
        lock = ReadWriteLock(
            wait_callback=lambda mode, dt: recorded.append((mode, dt))
        )
        with lock.read_locked():
            pass
        with lock.write_locked():
            pass
        assert [mode for mode, _ in recorded] == ["read", "write"]

        recorded.clear()

        def acquire():
            with lock.write_locked():
                pass

        self._contended(lambda: lock.read_locked(), acquire)
        write_waits = [dt for mode, dt in recorded if mode == "write"]
        assert write_waits and max(write_waits) > 0.01

    def test_unhooked_primitives_record_nothing(self):
        # The default construction takes no timing at all — this just pins
        # that the callback-free path still works.
        locks = StripedLockMap(num_stripes=2)
        with locks.holding("k"):
            pass
        lock = ReadWriteLock()
        with lock.write_locked():
            pass

    def test_lock_wait_recorder_respects_the_hub_switch(self):
        recorder = obs.lock_wait_recorder("service.session_locks")
        recorder("stripe", 0.5)  # hub disabled: dropped
        hub = obs.configure()
        try:
            recorder("stripe", 0.25)
            snapshot = hub.metrics.snapshot()
        finally:
            obs.disable()
        state = snapshot["service.session_locks.stripe.wait_seconds"]
        assert state["count"] == 1
        assert state["sum"] == pytest.approx(0.25)


# ------------------------------------------------------------------- hub & DTO
class TestHub:
    def test_default_hub_is_disabled_and_noop(self):
        hub = obs.get_hub()
        assert not hub.enabled
        assert hub.span("x") is NULL_SPAN
        hub.count("c")
        hub.observe("h", 1.0)
        hub.set_gauge("g", 2.0)
        with hub.timer("t"):
            pass
        assert hub.metrics.snapshot() == {}

    def test_configure_and_disable_swap_the_process_hub(self):
        exporter = InMemoryExporter()
        hub = obs.configure(exporters=[exporter])
        assert obs.get_hub() is hub and hub.enabled
        with hub.span("op"):
            hub.count("c", 2)
        hub.flush()
        assert len(exporter) == 1
        assert hub.metrics.snapshot()["c"]["value"] == 2.0
        disabled = obs.disable()
        assert obs.get_hub() is disabled and not disabled.enabled

    def test_timer_observes_duration(self):
        hub = obs.configure()
        try:
            with hub.timer("t"):
                pass
            state = hub.metrics.snapshot()["t"]
        finally:
            obs.disable()
        assert state["count"] == 1 and state["sum"] >= 0.0

    def test_render_snapshot_text_and_json(self):
        hub = obs.configure()
        try:
            assert render_snapshot() == "(no metrics recorded)"
            hub.count("solver.smo.solves", 3)
            hub.set_gauge("service.open_sessions", 2)
            hub.observe("logdb.append_seconds", 0.5)
            text = render_snapshot()
            document = render_snapshot("json")
        finally:
            obs.disable()
        assert "solver.smo.solves" in text and "value=3" in text
        assert "count=1" in text  # the histogram line
        assert document["enabled"] is True
        assert document["metrics"]["service.open_sessions"]["value"] == 2.0
        json.dumps(document)  # JSON-safe as promised
        with pytest.raises(ValueError, match="fmt"):
            render_snapshot("yaml")


class TestSolverStatsDTO:
    def test_feedback_response_and_view_surface_solver_counters(
        self, small_dataset, small_database
    ):
        """LRF-CSVM coupled rounds publish their solve cost through the
        response and the session view; round 0 publishes nothing."""
        from repro.service import RetrievalService, SearchRequest

        service = RetrievalService(small_database, log_policy="off")
        opened = service.open_session(
            SearchRequest(query=0, top_k=10, algorithm="lrf-csvm")
        )
        assert opened.solver_stats is None  # round 0: nothing solved yet
        category = small_dataset.category_of(0)
        judgements = {
            int(i): (1 if small_dataset.category_of(int(i)) == category else -1)
            for i in opened.image_indices
        }
        response = service.submit_feedback(opened.session_id, judgements)
        stats = response.solver_stats
        assert stats is not None
        assert stats["path"] == "coupled"
        assert stats["solver_iterations"] >= 1
        assert stats["gram_builds"] >= 1
        assert stats["kernel_evaluations"] > 0
        assert "label_flips" in stats
        view = service.get_session(opened.session_id)
        assert view.solver_stats == stats
        service.discard_session(opened.session_id)

    def test_silent_strategy_yields_none_stats(self, small_database):
        from repro.service import RetrievalService, SearchRequest

        service = RetrievalService(small_database, log_policy="off")
        opened = service.open_session(
            SearchRequest(query=0, top_k=8, algorithm="euclidean")
        )
        response = service.submit_feedback(
            opened.session_id, {int(opened.image_indices[0]): 1}
        )
        assert response.solver_stats is None
        service.discard_session(opened.session_id)
