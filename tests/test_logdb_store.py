"""Tests for the pluggable LogStore backends (repro.logdb v2).

Covers the store protocol and registry, the crash-safe on-disk segment
store (including simulated crash windows and recovery), true multi-process
concurrent appends, and the acceptance property that a service run over the
file-backed store replays to a bit-identical relevance matrix.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, LogDatabaseError, ValidationError
from repro.logdb import (
    FileLogStore,
    InMemoryLogStore,
    LogDatabase,
    LogSession,
    LogSimulationConfig,
    LogStore,
    RelevanceMatrix,
    available_log_stores,
    collect_feedback_log,
    make_log_store,
)
from repro.utils.io import file_lock, load_json, save_json


def _session(judgements, query=None):
    return LogSession(judgements=judgements, query_index=query)


class TestRegistry:
    def test_available_log_stores(self):
        assert available_log_stores() == ["file", "memory"]

    def test_make_memory_store(self):
        store = make_log_store("memory", num_images=5)
        assert isinstance(store, InMemoryLogStore)
        assert store.num_images == 5

    def test_make_file_store(self, tmp_path):
        store = make_log_store("file", num_images=7, directory=tmp_path / "log")
        assert isinstance(store, FileLogStore)
        assert store.num_images == 7

    def test_file_store_requires_directory(self):
        with pytest.raises(ValidationError):
            make_log_store("file", num_images=7)

    def test_unknown_backend(self):
        with pytest.raises(ValidationError):
            make_log_store("redis", num_images=7)


@pytest.fixture(params=["memory", "file"])
def any_store(request, tmp_path) -> LogStore:
    """One store instance per registered backend."""
    if request.param == "file":
        return make_log_store("file", num_images=9, directory=tmp_path / "log")
    return make_log_store("memory", num_images=9)


class TestLogStoreProtocol:
    """Contract shared by every backend."""

    def test_append_assigns_sequential_ids(self, any_store):
        first = any_store.append(_session({0: 1}, query=3))
        second = any_store.append(_session({1: -1}))
        assert (first.session_id, second.session_id) == (0, 1)
        assert len(any_store) == 2

    def test_extend_is_one_batch(self, any_store):
        stored = any_store.extend([_session({0: 1}), _session({2: -1, 3: 1})])
        assert [s.session_id for s in stored] == [0, 1]
        assert len(any_store) == 2

    def test_scan_full_and_suffix(self, any_store):
        any_store.extend([_session({i: 1}) for i in range(5)])
        assert [s.session_id for s in any_store.scan()] == [0, 1, 2, 3, 4]
        suffix = any_store.scan(start=3)
        assert [s.session_id for s in suffix] == [3, 4]
        assert suffix[0].judgements == {3: 1}
        with pytest.raises(LogDatabaseError):
            any_store.scan(start=-1)

    def test_snapshot_is_immutable_tuple(self, any_store):
        any_store.append(_session({0: 1}))
        snap = any_store.snapshot()
        any_store.append(_session({1: 1}))
        assert len(snap) == 1
        assert len(any_store.snapshot()) == 2

    def test_out_of_range_judgement_rejected_atomically(self, any_store):
        with pytest.raises(LogDatabaseError):
            any_store.extend([_session({0: 1}), _session({99: 1})])
        assert len(any_store) == 0  # nothing from the batch landed

    def test_round_trips_query_index_and_judgements(self, any_store):
        any_store.append(_session({4: -1, 2: 1}, query=7))
        session = any_store.scan()[0]
        assert session.query_index == 7
        assert session.judgements == {4: -1, 2: 1}

    def test_save_load_portable_export(self, any_store, tmp_path):
        any_store.extend([_session({0: 1}, query=2), _session({5: -1})])
        path = any_store.save(tmp_path / "export.json")
        loaded = LogStore.load(path)
        assert isinstance(loaded, InMemoryLogStore)
        assert len(loaded) == 2
        assert [s.judgements for s in loaded.scan()] == [{0: 1}, {5: -1}]
        assert loaded.scan()[0].query_index == 2

    def test_load_into_explicit_backend(self, any_store, tmp_path):
        any_store.append(_session({1: 1}))
        path = any_store.save(tmp_path / "export.json")
        destination = make_log_store(
            "file", num_images=9, directory=tmp_path / "dst"
        )
        loaded = LogStore.load(path, store=destination)
        assert loaded is destination
        assert len(loaded) == 1

    def test_scan_stop_bound(self, any_store):
        any_store.extend([_session({i: 1}) for i in range(5)])
        window = any_store.scan(start=1, stop=3)
        assert [s.session_id for s in window] == [1, 2]
        assert any_store.scan(start=2, stop=3)[0].judgements == {2: 1}

    def test_subclass_load_requires_explicit_store(self, any_store, tmp_path):
        """FileLogStore.load(path) must not silently hand back an
        in-memory store — backends needing constructor args demand store=."""
        any_store.append(_session({1: 1}))
        path = any_store.save(tmp_path / "export.json")
        with pytest.raises(LogDatabaseError):
            FileLogStore.load(path)

    def test_load_rejects_nonempty_destination(self, any_store, tmp_path):
        any_store.append(_session({1: 1}))
        path = any_store.save(tmp_path / "export.json")
        destination = make_log_store("memory", num_images=9)
        destination.append(_session({0: 1}))
        with pytest.raises(LogDatabaseError):
            LogStore.load(path, store=destination)

    def test_compact_preserves_contents(self, any_store):
        any_store.extend([_session({i: 1}) for i in range(4)])
        before = [s.judgements for s in any_store.scan()]
        any_store.compact()
        assert [s.judgements for s in any_store.scan()] == before
        assert len(any_store) == 4

    def test_facade_over_any_backend(self, any_store):
        log = LogDatabase(store=any_store)
        log.record_judgements({0: 1, 1: -1})
        log.record_judgements({1: 1})
        matrix = log.relevance_matrix()
        assert matrix.shape == (2, 9)
        assert log.session(1).judgements == {1: 1}
        assert log.store is any_store


class TestFileLogStore:
    def test_reopen_sees_committed_sessions(self, tmp_path):
        store = FileLogStore(tmp_path / "log", num_images=6)
        store.extend([_session({0: 1}), _session({1: -1})])
        reopened = FileLogStore(tmp_path / "log")
        assert reopened.num_images == 6
        assert len(reopened) == 2
        assert [s.session_id for s in reopened.scan()] == [0, 1]

    def test_creation_requires_num_images(self, tmp_path):
        with pytest.raises(LogDatabaseError):
            FileLogStore(tmp_path / "log")

    def test_reopen_validates_num_images(self, tmp_path):
        FileLogStore(tmp_path / "log", num_images=6)
        with pytest.raises(LogDatabaseError):
            FileLogStore(tmp_path / "log", num_images=7)

    def test_pickle_and_fork_safety(self, tmp_path):
        store = FileLogStore(tmp_path / "log", num_images=6)
        store.append(_session({0: 1}))
        clone = pickle.loads(pickle.dumps(store))
        clone.append(_session({1: 1}))
        assert len(store) == 2  # same directory, same committed state

    def test_orphan_segment_is_cleanly_ignored(self, tmp_path):
        """A crash between the segment write and the manifest commit."""
        store = FileLogStore(tmp_path / "log", num_images=6)
        store.extend([_session({0: 1})])
        # Simulate the crash window: a fully-written segment that no
        # manifest names (the writer died before its commit rename).
        orphan = store._segments_dir / store._segment_name(0, 1)
        save_json(
            {"first_id": 1, "count": 1, "sessions": [
                {"judgements": [[5, 1]], "query_index": None}]},
            orphan,
        )
        reopened = FileLogStore(tmp_path / "log")
        assert len(reopened) == 1  # the orphan is invisible
        assert [s.judgements for s in reopened.scan()] == [{0: 1}]

    def test_orphan_is_recovered_by_next_append(self, tmp_path):
        """The next committed batch atomically replaces the orphan's name."""
        store = FileLogStore(tmp_path / "log", num_images=6)
        store.extend([_session({0: 1})])
        orphan = store._segments_dir / store._segment_name(0, 1)
        save_json(
            {"first_id": 1, "count": 1, "sessions": [
                {"judgements": [[5, 1]], "query_index": None}]},
            orphan,
        )
        store.append(_session({3: -1}))  # mints id 1 again → same file name
        assert [s.judgements for s in store.scan()] == [{0: 1}, {3: -1}]
        # The orphaned payload is gone — replaced, not resurrected.
        assert load_json(orphan)["sessions"][0]["judgements"] == [[3, -1]]

    def test_compact_merges_and_removes_orphans(self, tmp_path):
        store = FileLogStore(tmp_path / "log", num_images=6)
        for i in range(4):
            store.append(_session({i: 1}))
        orphan = store._segments_dir / store._segment_name(0, 99)
        save_json({"first_id": 99, "count": 1, "sessions": []}, orphan)
        assert len(list(store._segments_dir.glob("seg-*.json"))) == 5
        removed = store.compact()
        assert removed == 5  # four superseded segments + one orphan
        assert len(list(store._segments_dir.glob("seg-*.json"))) == 1
        assert [s.judgements for s in store.scan()] == [{i: 1} for i in range(4)]
        store.append(_session({5: 1}))  # appends keep working post-compact
        assert len(store) == 5

    def test_crash_mid_segment_write_leaves_no_trace(self, tmp_path, monkeypatch):
        """A writer dying inside the segment save commits nothing."""
        store = FileLogStore(tmp_path / "log", num_images=6)
        store.append(_session({0: 1}))

        import repro.logdb.file_store as module

        real_save_json = module.save_json
        calls = {"n": 0}

        def exploding_save_json(document, path):
            calls["n"] += 1
            if calls["n"] == 1:  # the segment write (manifest comes second)
                raise OSError("simulated crash mid-write")
            return real_save_json(document, path)

        monkeypatch.setattr(module, "save_json", exploding_save_json)
        with pytest.raises(OSError):
            store.append(_session({1: 1}))
        monkeypatch.undo()
        assert len(store) == 1
        assert len(FileLogStore(tmp_path / "log").scan()) == 1
        # The store is not wedged: the lock was released, appends resume.
        store.append(_session({2: 1}))
        assert len(store) == 2


def _ship_sessions(directory: str, worker: int, count: int) -> None:
    """Subprocess body: append `count` marker sessions through the store."""
    store = FileLogStore(directory)
    for i in range(count):
        store.append(
            LogSession(judgements={worker: 1, 2 + i % 3: -1}, query_index=worker)
        )


class TestCrossProcessShipping:
    def test_two_processes_lose_and_duplicate_nothing(self, tmp_path):
        """Acceptance: concurrent appends from two OS processes are exact."""
        directory = tmp_path / "shared-log"
        FileLogStore(directory, num_images=8)
        count = 40
        workers = [
            multiprocessing.Process(
                target=_ship_sessions, args=(str(directory), worker, count)
            )
            for worker in (0, 1)
        ]
        for process in workers:
            process.start()
        for process in workers:
            process.join(timeout=120)
            assert process.exitcode == 0

        store = FileLogStore(directory)
        sessions = store.scan()
        assert len(sessions) == 2 * count
        # Gapless, race-free id assignment.
        assert [s.session_id for s in sessions] == list(range(2 * count))
        # Every worker's sessions all arrived, exactly once, in its order.
        for worker in (0, 1):
            shipped = [s for s in sessions if s.query_index == worker]
            assert len(shipped) == count
        # The facade's incremental matrix over the shared store is exact.
        matrix = LogDatabase(store=store).relevance_matrix()
        rebuilt = RelevanceMatrix.from_sessions(sessions, num_images=8)
        np.testing.assert_array_equal(matrix.toarray(), rebuilt.toarray())

    def test_file_lock_excludes_across_processes(self, tmp_path):
        """The lock primitive itself: a child blocks while the parent holds."""
        lock_path = tmp_path / "test.lock"
        started = multiprocessing.Event()
        release_observed = multiprocessing.Value("d", 0.0)

        def contender():
            import time as _time

            started.set()
            with file_lock(lock_path):
                release_observed.value = _time.monotonic()

        child = multiprocessing.Process(target=contender)
        import time

        with file_lock(lock_path):
            child.start()
            started.wait(timeout=30)
            time.sleep(0.3)
            released_at = time.monotonic()
        child.join(timeout=30)
        assert child.exitcode == 0
        # The child could only enter after the parent released.
        assert release_observed.value >= released_at - 0.02


class TestSimulationAndServiceIntegration:
    def test_collect_feedback_log_writes_through_store(self, small_dataset, tmp_path):
        config = LogSimulationConfig(num_sessions=8, images_per_session=5, seed=4)
        store = make_log_store(
            "file", num_images=small_dataset.num_images, directory=tmp_path / "log"
        )
        log = collect_feedback_log(small_dataset, config, store=store)
        assert log.store is store
        assert log.num_sessions == 8
        # Same campaign through the default in-memory path is bit-identical.
        in_memory = collect_feedback_log(small_dataset, config)
        np.testing.assert_array_equal(
            log.relevance_matrix().toarray(),
            in_memory.relevance_matrix().toarray(),
        )

    def test_collect_feedback_log_rejects_nonempty_store(self, small_dataset):
        store = make_log_store("memory", num_images=small_dataset.num_images)
        store.append(_session({0: 1}))
        with pytest.raises(ConfigurationError):
            collect_feedback_log(small_dataset, store=store)

    def test_per_round_service_over_file_store_replays_bit_identically(
        self, small_dataset, tmp_path
    ):
        """Acceptance: per_round logging through the new store == in-memory."""
        from repro.cbir.database import ImageDatabase
        from repro.service import RetrievalService

        def run(log_database):
            database = ImageDatabase(small_dataset, log_database=log_database)
            service = RetrievalService(
                database, default_algorithm="rf-svm", log_policy="per_round"
            )
            for query in (0, 13, 25):
                initial = service.open_session(query, top_k=10)
                judgements = {
                    int(i): (
                        1
                        if small_dataset.category_of(int(i))
                        == small_dataset.category_of(query)
                        else -1
                    )
                    for i in initial.image_indices
                }
                service.submit_feedback(initial.session_id, judgements)
                service.close_session(initial.session_id)
            return database.log_database

        file_log = run(
            LogDatabase(
                store=make_log_store(
                    "file",
                    num_images=small_dataset.num_images,
                    directory=tmp_path / "svc-log",
                )
            )
        )
        memory_log = run(LogDatabase(small_dataset.num_images))

        assert file_log.num_sessions == memory_log.num_sessions > 0
        replayed = RelevanceMatrix.from_sessions(
            file_log.sessions, num_images=small_dataset.num_images
        )
        reference = memory_log.relevance_matrix()
        np.testing.assert_array_equal(replayed.toarray(), reference.toarray())
        a, b = replayed.tocsr(), reference.tocsr()
        np.testing.assert_array_equal(a.data, b.data)
        np.testing.assert_array_equal(a.indices, b.indices)
        np.testing.assert_array_equal(a.indptr, b.indptr)


class TestFileSessionStoreOrphanSweep:
    """Satellite: TTL eviction also sweeps crash-orphaned array bundles."""

    def test_orphan_bundle_swept_after_ttl(self, tmp_path):
        import time

        from repro.service.store import FileSessionStore
        from repro.utils.io import save_array_bundle

        store = FileSessionStore(tmp_path / "sessions", ttl=10.0)
        # A crash between the npz write and the JSON commit record.  The
        # sweep's age guard runs on wall-clock time (mtimes are wall-clock,
        # the injectable service clock is not), so backdate via utime.
        orphan = store.directory / "crashed.npz"
        save_array_bundle({"x": np.arange(3)}, orphan)
        stale = time.time() - 11.0
        os.utime(orphan, (stale, stale))
        # A *fresh* orphan (a live put mid-rename) must be left alone.
        fresh = store.directory / "inflight.npz"
        save_array_bundle({"x": np.arange(3)}, fresh)

        store.evict_expired(now=1000.0)  # fake service clock — irrelevant here
        assert not orphan.exists()
        assert fresh.exists()

    def test_committed_bundles_survive_the_sweep(self, tmp_path):
        from repro.cbir.query import Query
        from repro.service.state import SessionState
        from repro.service.store import FileSessionStore

        store = FileSessionStore(tmp_path / "sessions", ttl=10.0)
        state = SessionState(
            session_id="alive", query=Query(query_index=0), last_active=995.0
        )
        store.put(state)
        os.utime(store.directory / "alive.npz", (0.0, 0.0))  # ancient mtime
        store.evict_expired(1000.0)
        # The session is not expired (last_active fresh), so neither file
        # moves — the sweep keys off the JSON commit record, not mtime.
        assert (store.directory / "alive.npz").exists()
        assert store.get("alive").session_id == "alive"

    def test_no_sweep_without_ttl(self, tmp_path):
        from repro.service.store import FileSessionStore
        from repro.utils.io import save_array_bundle

        store = FileSessionStore(tmp_path / "sessions")
        orphan = store.directory / "crashed.npz"
        save_array_bundle({"x": np.arange(3)}, orphan)
        os.utime(orphan, (0.0, 0.0))
        store.evict_expired(now=1000.0)
        assert orphan.exists()  # eviction (and the sweep) are TTL-gated
