"""Tests of the durable close protocol (service layer).

Under ``on_close`` + a close-intent-capable store, ``close_sessions`` runs
intent → flush → delete → clear.  These tests drive the protocol through
the deterministic fault seam and assert the two invariants that close the
cluster's last loss window:

* **zero lost rounds** — once the intent is written, the session's records
  reach the log no matter where the close crashes (replay rolls forward);
* **exactly-once** — however many replays run (restart recovery, client
  re-send, explicit recovery calls), the log commits the records once.
"""

from __future__ import annotations

import collections

import pytest

from repro.cbir.database import ImageDatabase
from repro.datasets.pool import GaussianPoolConfig, make_pool_dataset
from repro.exceptions import FaultInjectedError, SessionError
from repro.logdb import FileLogStore
from repro.service import RetrievalService
from repro.service.store import FileSessionStore
from repro.utils.faults import FaultPlan, installed

POOL_CONFIG = GaussianPoolConfig(
    num_vectors=200, dim=5, num_clusters=4, num_queries=3, seed=23
)


@pytest.fixture(scope="module")
def dataset():
    built, _ = make_pool_dataset(POOL_CONFIG, name="close-protocol")
    return built


def _service(dataset, tmp_path):
    """A fresh service over the (shared, on-disk) session and log stores."""
    log_store = FileLogStore(tmp_path / "log", num_images=dataset.num_images)
    database = ImageDatabase(dataset, log_database=log_store)
    return RetrievalService(
        database,
        store=FileSessionStore(tmp_path / "sessions"),
        default_algorithm="euclidean",
        log_policy="on_close",
    )


def _open_with_round(service, session_id="s1", query=0):
    opened = service.open_session(query, top_k=8, session_id=session_id)
    service.submit_feedback(session_id, {int(opened.image_indices[0]): 1})
    return opened


def _log_counts(tmp_path):
    return collections.Counter(
        record.query_index for record in FileLogStore(tmp_path / "log").scan()
    )


class TestHappyPath:
    def test_close_flushes_and_leaves_no_intent(self, dataset, tmp_path):
        service = _service(dataset, tmp_path)
        _open_with_round(service)
        view = service.close_session("s1")
        assert view.closed and view.rounds_completed == 1
        assert _log_counts(tmp_path) == {0: 1}
        assert service.store.close_intent_ids() == []
        with pytest.raises(SessionError):
            service.get_session("s1")

    def test_zero_round_close_skips_the_intent_machinery(self, dataset, tmp_path):
        service = _service(dataset, tmp_path)
        service.open_session(0, top_k=8, session_id="s1")
        # A fault armed on the intent-write step must never fire: sessions
        # with no completed rounds have nothing to lose.
        with installed(FaultPlan.single("store.after_intent_write")):
            view = service.close_session("s1")
        assert view.closed and view.rounds_completed == 0
        assert _log_counts(tmp_path) == {}
        assert service.store.close_intent_ids() == []

    def test_recover_with_no_pending_intents_is_a_noop(self, dataset, tmp_path):
        service = _service(dataset, tmp_path)
        assert service.recover_close_intents() == []
        assert service.recover_close_intents(["missing"]) == []


class TestCrashWindows:
    """One test per protocol step; "raise" faults model the crash point."""

    def test_crash_before_intent_write_loses_only_the_close(self, dataset, tmp_path):
        service = _service(dataset, tmp_path)
        _open_with_round(service)
        with installed(FaultPlan.single("close.before_intent_write")):
            with pytest.raises(FaultInjectedError):
                service.close_session("s1")
        # Nothing committed: no intent, no log records, session intact.
        assert service.store.close_intent_ids() == []
        assert _log_counts(tmp_path) == {}
        # The re-sent close completes normally.
        assert service.close_session("s1").closed
        assert _log_counts(tmp_path) == {0: 1}

    def test_crash_between_intent_and_flush_rolls_forward(self, dataset, tmp_path):
        service = _service(dataset, tmp_path)
        _open_with_round(service)
        with installed(FaultPlan.single("close.before_log_flush")):
            with pytest.raises(FaultInjectedError):
                service.close_session("s1")
        assert service.store.close_intent_ids() == ["s1"]
        assert _log_counts(tmp_path) == {}  # crash BEFORE the flush
        assert service.recover_close_intents() == ["s1"]
        assert _log_counts(tmp_path) == {0: 1}  # rolled forward
        assert service.store.close_intent_ids() == []
        with pytest.raises(SessionError):  # replay completed the delete
            service.get_session("s1")

    def test_crash_between_flush_and_delete_dedups(self, dataset, tmp_path):
        service = _service(dataset, tmp_path)
        _open_with_round(service)
        with installed(FaultPlan.single("close.after_log_flush")):
            with pytest.raises(FaultInjectedError):
                service.close_session("s1")
        assert _log_counts(tmp_path) == {0: 1}  # flushed before the crash
        # The client re-sends the whole close: same deterministic token,
        # so the second flush is a dedup no-op.
        assert service.close_session("s1").closed
        assert _log_counts(tmp_path) == {0: 1}
        assert service.store.close_intent_ids() == []

    def test_crash_between_delete_and_clear_replays_cleanly(self, dataset, tmp_path):
        service = _service(dataset, tmp_path)
        _open_with_round(service)
        with installed(FaultPlan.single("close.after_delete")):
            with pytest.raises(FaultInjectedError):
                service.close_session("s1")
        assert _log_counts(tmp_path) == {0: 1}
        assert service.store.close_intent_ids() == ["s1"]  # only clear was lost
        assert service.recover_close_intents() == ["s1"]
        assert _log_counts(tmp_path) == {0: 1}  # dedup: no double commit
        assert service.store.close_intent_ids() == []


class TestRestartRecovery:
    """The satellite scenarios: orphaned intents replayed on service start."""

    def test_orphan_with_flushed_log(self, dataset, tmp_path):
        # Crash after the flush: intent present, records committed.
        service = _service(dataset, tmp_path)
        _open_with_round(service)
        with installed(FaultPlan.single("close.after_log_flush")):
            with pytest.raises(FaultInjectedError):
                service.close_session("s1")
        del service  # "process crash"

        restarted = _service(dataset, tmp_path)  # __init__ replays intents
        assert restarted.store.close_intent_ids() == []
        assert _log_counts(tmp_path) == {0: 1}  # exactly once
        with pytest.raises(SessionError):
            restarted.get_session("s1")

    def test_orphan_with_missing_log(self, dataset, tmp_path):
        # Crash between intent write and flush: intent present, log empty.
        service = _service(dataset, tmp_path)
        _open_with_round(service)
        with installed(FaultPlan.single("close.before_log_flush")):
            with pytest.raises(FaultInjectedError):
                service.close_session("s1")
        assert _log_counts(tmp_path) == {}
        del service

        restarted = _service(dataset, tmp_path)
        assert restarted.store.close_intent_ids() == []
        assert _log_counts(tmp_path) == {0: 1}  # the intent IS the commit
        with pytest.raises(SessionError):
            restarted.get_session("s1")

    def test_stale_intent_from_prior_epoch_spares_fresh_session(
        self, dataset, tmp_path
    ):
        # An intent stranded by a crashed close must not delete a *fresh*
        # session that merely reused the id after the original was
        # discarded: created_at is the epoch check.
        service = _service(dataset, tmp_path)
        _open_with_round(service)
        with installed(FaultPlan.single("close.before_log_flush")):
            with pytest.raises(FaultInjectedError):
                service.close_session("s1")
        assert service.store.close_intent_ids() == ["s1"]
        service.discard_session("s1")
        service.open_session(1, top_k=8, session_id="s1")  # new epoch
        del service

        restarted = _service(dataset, tmp_path)
        assert restarted.store.close_intent_ids() == []
        assert _log_counts(tmp_path) == {0: 1}  # old rounds still flushed
        # The fresh session survived the replay.
        assert restarted.get_session("s1").rounds_completed == 0

    def test_replay_is_idempotent_across_many_recoveries(self, dataset, tmp_path):
        service = _service(dataset, tmp_path)
        _open_with_round(service)
        with installed(FaultPlan.single("close.before_log_flush")):
            with pytest.raises(FaultInjectedError):
                service.close_session("s1")
        del service
        for _ in range(3):  # every restart replays; only the first commits
            restarted = _service(dataset, tmp_path)
            restarted.recover_close_intents()
            del restarted
        assert _log_counts(tmp_path) == {0: 1}
