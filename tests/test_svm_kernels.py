"""Tests for repro.svm.kernels, including PSD property tests."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.exceptions import ValidationError
from repro.svm.kernels import (
    Kernel,
    LinearKernel,
    PolynomialKernel,
    RBFKernel,
    build_kernel,
    make_kernel,
)


class TestLinearKernel:
    def test_matches_dot_products(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(5, 3)), rng.normal(size=(4, 3))
        np.testing.assert_allclose(LinearKernel()(a, b), a @ b.T)

    def test_diagonal(self):
        a = np.random.default_rng(1).normal(size=(6, 4))
        np.testing.assert_allclose(LinearKernel().diagonal(a), np.sum(a * a, axis=1))


class TestRBFKernel:
    def test_self_similarity_is_one(self):
        a = np.random.default_rng(2).normal(size=(5, 3))
        kernel = RBFKernel(gamma=0.5).fit(a)
        np.testing.assert_allclose(np.diag(kernel.gram(a)), 1.0)

    def test_values_in_unit_interval(self):
        a = np.random.default_rng(3).normal(size=(10, 4))
        gram = RBFKernel(gamma=1.0).fit(a).gram(a)
        assert gram.min() >= 0.0
        assert gram.max() <= 1.0 + 1e-12

    def test_distance_monotonicity(self):
        kernel = RBFKernel(gamma=1.0)
        origin = np.zeros((1, 2))
        near = np.array([[0.1, 0.0]])
        far = np.array([[2.0, 0.0]])
        assert kernel(origin, near)[0, 0] > kernel(origin, far)[0, 0]

    def test_scale_gamma_requires_fit(self):
        kernel = RBFKernel(gamma="scale")
        with pytest.raises(ValidationError):
            kernel(np.ones((2, 2)), np.ones((2, 2)))

    def test_scale_gamma_resolved_by_fit(self):
        data = np.random.default_rng(4).normal(size=(20, 6))
        kernel = RBFKernel(gamma="scale").fit(data)
        expected = 1.0 / (6 * data.var())
        assert kernel.gamma_ == pytest.approx(expected)

    def test_auto_gamma(self):
        data = np.random.default_rng(5).normal(size=(10, 4))
        kernel = RBFKernel(gamma="auto").fit(data)
        assert kernel.gamma_ == pytest.approx(0.25)

    def test_invalid_gamma(self):
        with pytest.raises(ValidationError):
            RBFKernel(gamma=-1.0)
        with pytest.raises(ValidationError):
            RBFKernel(gamma="banana")

    @given(
        hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=2, max_dims=2, min_side=2, max_side=8),
            elements=st.floats(-10, 10),
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_gram_positive_semidefinite(self, data):
        gram = RBFKernel(gamma=0.3).gram(data)
        eigenvalues = np.linalg.eigvalsh(gram)
        assert eigenvalues.min() >= -1e-8


class TestPolynomialKernel:
    def test_degree_one_matches_affine_linear(self):
        rng = np.random.default_rng(6)
        a, b = rng.normal(size=(4, 3)), rng.normal(size=(5, 3))
        kernel = PolynomialKernel(degree=1, gamma=1.0, coef0=0.0)
        np.testing.assert_allclose(kernel(a, b), a @ b.T)

    def test_known_value(self):
        a = np.array([[1.0, 2.0]])
        b = np.array([[3.0, 4.0]])
        kernel = PolynomialKernel(degree=2, gamma=1.0, coef0=1.0)
        assert kernel(a, b)[0, 0] == pytest.approx((11.0 + 1.0) ** 2)

    def test_invalid_parameters(self):
        with pytest.raises(ValidationError):
            PolynomialKernel(degree=0)
        with pytest.raises(ValidationError):
            PolynomialKernel(gamma=0.0)

    def test_diagonal_matches_gram(self):
        a = np.random.default_rng(7).normal(size=(6, 3))
        kernel = PolynomialKernel(degree=3, gamma=0.5, coef0=0.7)
        np.testing.assert_allclose(kernel.diagonal(a), np.diag(kernel.gram(a)))


class _CountingKernel(Kernel):
    """Minimal kernel with no diagonal override, counting batched calls."""

    name = "counting"

    def __init__(self):
        self.calls = 0

    def __call__(self, a, b):
        self.calls += 1
        a = np.atleast_2d(np.asarray(a, dtype=np.float64))
        b = np.atleast_2d(np.asarray(b, dtype=np.float64))
        return (a @ b.T) ** 2


class TestBaseDiagonal:
    def test_single_batched_call(self):
        kernel = _CountingKernel()
        data = np.random.default_rng(8).normal(size=(7, 4))
        diagonal = kernel.diagonal(data)
        assert kernel.calls == 1
        expected = [kernel(row[None, :], row[None, :])[0, 0] for row in data]
        np.testing.assert_allclose(diagonal, expected)

    def test_diagonal_is_writable(self):
        diagonal = _CountingKernel().diagonal(np.ones((3, 2)))
        diagonal[0] = -1.0  # the base implementation must return a copy
        assert diagonal[0] == -1.0

    def test_large_inputs_evaluated_in_blocks(self):
        """Beyond the block size the temporary Gram stays block-bounded."""
        kernel = _CountingKernel()
        data = np.random.default_rng(9).normal(size=(1030, 2))
        diagonal = kernel.diagonal(data)
        assert kernel.calls == 3  # ceil(1030 / 512) blocks, never a full Gram
        np.testing.assert_allclose(diagonal, np.sum(data * data, axis=1) ** 2)


class TestBuildKernel:
    def test_rbf_receives_gamma(self):
        kernel = build_kernel("rbf", gamma=0.25)
        assert isinstance(kernel, RBFKernel)
        assert kernel.gamma == 0.25

    def test_poly_receives_all_hyperparameters(self):
        kernel = build_kernel("poly", gamma=2.0, degree=4, coef0=0.3)
        assert isinstance(kernel, PolynomialKernel)
        assert (kernel.gamma, kernel.degree, kernel.coef0) == (2.0, 4, 0.3)

    def test_poly_string_gamma_defaults(self):
        kernel = build_kernel("poly", gamma="scale")
        assert kernel.gamma == 1.0

    def test_linear_and_pass_through(self):
        assert isinstance(build_kernel("linear"), LinearKernel)
        instance = LinearKernel()
        assert build_kernel(instance) is instance

    def test_unknown_name(self):
        with pytest.raises(ValidationError):
            build_kernel("sigmoid")


class TestMakeKernel:
    def test_by_name(self):
        assert isinstance(make_kernel("linear"), LinearKernel)
        assert isinstance(make_kernel("rbf"), RBFKernel)
        assert isinstance(make_kernel("poly"), PolynomialKernel)

    def test_pass_through_instance(self):
        kernel = LinearKernel()
        assert make_kernel(kernel) is kernel

    def test_unknown_name(self):
        with pytest.raises(ValidationError):
            make_kernel("sigmoid")
