"""Tests for repro.imaging.filters and repro.imaging.canny."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.imaging.canny import canny_edges
from repro.imaging.filters import (
    convolve2d,
    gaussian_blur,
    gaussian_kernel,
    sobel_gradients,
)


class TestConvolve2d:
    def test_identity_kernel(self):
        image = np.random.default_rng(0).random((10, 12))
        identity = np.array([[0, 0, 0], [0, 1, 0], [0, 0, 0]], dtype=float)
        np.testing.assert_allclose(convolve2d(image, identity), image, atol=1e-12)

    def test_shape_preserved(self):
        image = np.random.default_rng(1).random((9, 7))
        kernel = np.ones((3, 3)) / 9.0
        assert convolve2d(image, kernel).shape == image.shape

    def test_box_filter_averages(self):
        image = np.ones((6, 6))
        kernel = np.ones((3, 3)) / 9.0
        np.testing.assert_allclose(convolve2d(image, kernel), 1.0, atol=1e-12)

    def test_kernel_flip(self):
        # Convolution (not correlation): an asymmetric kernel must be flipped.
        image = np.zeros((5, 5))
        image[2, 2] = 1.0
        kernel = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
        result = convolve2d(image, kernel)
        # Convolving an impulse with the kernel reproduces the (flipped)
        # kernel centred at the impulse: the weight left of the kernel centre
        # lands left of the impulse, unlike correlation which would mirror it.
        assert result[2, 1] == pytest.approx(1.0)
        assert result[2, 3] == pytest.approx(0.0)

    def test_rejects_1d_input(self):
        with pytest.raises(ValidationError):
            convolve2d(np.ones(5), np.ones((3, 3)))


class TestGaussian:
    def test_kernel_normalised(self):
        kernel = gaussian_kernel(1.5)
        assert kernel.sum() == pytest.approx(1.0)

    def test_kernel_symmetric(self):
        kernel = gaussian_kernel(1.0)
        np.testing.assert_allclose(kernel, kernel.T)
        np.testing.assert_allclose(kernel, kernel[::-1, ::-1])

    def test_kernel_peak_at_centre(self):
        kernel = gaussian_kernel(2.0)
        centre = tuple(s // 2 for s in kernel.shape)
        assert kernel[centre] == kernel.max()

    def test_invalid_sigma(self):
        with pytest.raises(ValidationError):
            gaussian_kernel(0.0)

    def test_blur_reduces_variance(self):
        rng = np.random.default_rng(2)
        noisy = rng.random((32, 32))
        blurred = gaussian_blur(noisy, sigma=2.0)
        assert blurred.var() < noisy.var()

    def test_blur_preserves_constant(self):
        constant = np.full((16, 16), 0.7)
        np.testing.assert_allclose(gaussian_blur(constant, 1.0), 0.7, atol=1e-10)


class TestSobel:
    def test_vertical_edge_detected_by_gx(self):
        image = np.zeros((10, 10))
        image[:, 5:] = 1.0
        gx, gy = sobel_gradients(image)
        assert np.abs(gx).max() > 1.0
        assert np.abs(gy[2:-2, 2:-2]).max() == pytest.approx(0.0, abs=1e-12)

    def test_horizontal_edge_detected_by_gy(self):
        image = np.zeros((10, 10))
        image[5:, :] = 1.0
        gx, gy = sobel_gradients(image)
        assert np.abs(gy).max() > 1.0
        assert np.abs(gx[2:-2, 2:-2]).max() == pytest.approx(0.0, abs=1e-12)

    def test_constant_image_zero_gradient(self):
        gx, gy = sobel_gradients(np.full((8, 8), 0.3))
        np.testing.assert_allclose(gx, 0.0, atol=1e-12)
        np.testing.assert_allclose(gy, 0.0, atol=1e-12)


class TestCanny:
    def test_detects_step_edge(self):
        image = np.zeros((20, 20))
        image[:, 10:] = 1.0
        result = canny_edges(image)
        assert result.edge_count > 0
        # Edge pixels concentrate around column 10.
        edge_cols = np.where(result.edges)[1]
        assert np.all(np.abs(edge_cols - 10) <= 2)

    def test_constant_image_has_no_edges(self):
        result = canny_edges(np.full((16, 16), 0.5))
        assert result.edge_count == 0

    def test_edges_are_thin(self):
        image = np.zeros((30, 30))
        image[:, 15:] = 1.0
        result = canny_edges(image)
        # Non-maximum suppression keeps at most ~2 pixels per row on a step edge.
        per_row = result.edges.sum(axis=1)
        assert per_row.max() <= 3

    def test_edge_directions_match_edge_orientation(self):
        image = np.zeros((24, 24))
        image[:, 12:] = 1.0  # vertical edge -> horizontal gradient
        result = canny_edges(image)
        directions = np.abs(result.edge_directions())
        # Gradient direction is ~0 or ~pi (pointing along x).
        assert np.all(
            (directions < 0.3) | (np.abs(directions - np.pi) < 0.3)
        )

    def test_threshold_ordering_enforced(self):
        with pytest.raises(ValidationError):
            canny_edges(np.zeros((8, 8)), low_threshold=0.5, high_threshold=0.2)

    def test_rejects_rgb_input(self):
        with pytest.raises(ValidationError):
            canny_edges(np.zeros((8, 8, 3)))

    def test_hysteresis_links_weak_to_strong(self):
        # A diagonal ramp edge: weak sections connected to strong ones survive.
        image = np.zeros((30, 30))
        for row in range(30):
            image[row, 15:] = 0.4 + 0.02 * row
        result = canny_edges(image, low_threshold=0.1, high_threshold=0.4)
        rows_with_edges = np.unique(np.where(result.edges)[0])
        assert rows_with_edges.size >= 20
