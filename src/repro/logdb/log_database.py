"""The :class:`LogDatabase` façade: a log store plus its relevance matrix.

Since the v2 redesign the log layer is split in two:

* a pluggable :class:`~repro.logdb.store.LogStore` backend owns the durable
  session sequence (in-memory, or the on-disk multi-process segment store);
* this façade owns the **derived artifact** — the sparse relevance matrix
  ``R`` — and keeps it fresh *incrementally*: the matrix cache is never
  invalidated by an append; a read extends it by exactly the sessions
  appended since (one CSR block + one ``vstack``, see
  :meth:`~repro.logdb.relevance_matrix.RelevanceMatrix.append_sessions`)
  instead of rebuilding from session zero.

Readers that need a *stable* view while appends continue — feedback
strategies mid-round, the evaluation protocol, concurrent serving threads —
take a :class:`LogSnapshot`: an immutable, versioned capture of ``R`` that
never changes length or contents no matter what lands in the store
afterwards.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import LogDatabaseError
from repro.logdb.relevance_matrix import RelevanceMatrix
from repro.obs import get_hub
from repro.logdb.session import LogSession
from repro.logdb.store import InMemoryLogStore, LogStore

__all__ = ["LogDatabase", "LogSnapshot"]


class LogSnapshot:
    """An immutable, versioned capture of the relevance matrix ``R``.

    A snapshot is what feedback strategies and the evaluation protocol
    consume: taken once per round (or batch of rounds), it guarantees every
    log read inside that round sees the same ``R`` — same number of
    sessions, same judgements — even while other sessions keep appending to
    the underlying store.

    Attributes
    ----------
    version:
        Number of log sessions the snapshot contains.  Snapshots of the
        same store are totally ordered by ``version``; a later snapshot is
        always an extension of an earlier one (the log is append-only).
    matrix:
        The captured :class:`RelevanceMatrix` (immutable).

    Notes
    -----
    Thread-safe: the dense user-log-vector view is materialised lazily at
    most once under an internal lock and returned read-only, so any number
    of rounds (including the parallel scheduler's worker threads) may share
    one snapshot.
    """

    __slots__ = ("version", "matrix", "_dense", "_csr", "_dense_lock")

    def __init__(self, matrix: RelevanceMatrix) -> None:
        self.matrix = matrix
        self.version = int(matrix.num_sessions)
        self._dense: Optional[np.ndarray] = None
        self._csr = None
        self._dense_lock = threading.Lock()

    # ------------------------------------------------------------------ info
    @property
    def num_sessions(self) -> int:
        """Number of log sessions captured (== :attr:`version`)."""
        return self.version

    @property
    def num_images(self) -> int:
        """Number of images the log refers to."""
        return self.matrix.num_images

    @property
    def is_empty(self) -> bool:
        """Whether the snapshot contains no sessions (cold start)."""
        return self.version == 0

    # --------------------------------------------------------------- queries
    def log_vectors(self, image_indices: Optional[Sequence[int]] = None) -> np.ndarray:
        """User-log vectors (one **row per image**) for *image_indices*.

        All images by default; the full dense view is computed once per
        snapshot and shared read-only, so a batch of rounds served off one
        snapshot densifies ``R`` exactly once.

        Returns
        -------
        numpy.ndarray
            Read-only ``(len(image_indices), num_sessions)`` array (slicing
            it produces ordinary writable copies).
        """
        dense = self._dense_vectors()
        if image_indices is None:
            return dense
        indices = np.asarray(image_indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_images):
            raise LogDatabaseError("image_indices out of range")
        return dense[indices]

    def log_vector(self, image_index: int) -> np.ndarray:
        """Dense user-log vector ``r_i`` of one image."""
        return self.matrix.log_vector(image_index)

    def log_csr(self):
        """The captured ``R`` as a shared read-only CSR matrix.

        The **sparse** accessor for consumers that never need dense ``R``
        — e.g. the graph family's log co-relevance kernel computes
        ``R^T R`` straight off this view.  Materialised at most once per
        snapshot (one CSR copy whose buffers are marked read-only) and
        entirely independent of the dense :meth:`log_vectors` cache: a
        snapshot read only through ``log_csr`` never pays the dense
        densification (``logdb.snapshot_densifications`` stays untouched).

        Returns
        -------
        scipy.sparse.csr_matrix
            Read-only ``(num_sessions, num_images)`` matrix.
        """
        if self._csr is None:
            with self._dense_lock:
                if self._csr is None:
                    csr = self.matrix.tocsr()
                    csr.data.setflags(write=False)
                    csr.indices.setflags(write=False)
                    csr.indptr.setflags(write=False)
                    self._csr = csr
        return self._csr

    def _dense_vectors(self) -> np.ndarray:
        """The cached read-only dense ``(num_images, num_sessions)`` view."""
        if self._dense is None:
            with self._dense_lock:
                if self._dense is None:
                    hub = get_hub()
                    with hub.timer("logdb.snapshot_densify_seconds"):
                        dense = self.matrix.log_vectors()
                    hub.count("logdb.snapshot_densifications")
                    dense.setflags(write=False)
                    self._dense = dense
        return self._dense

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return (
            f"LogSnapshot(version={self.version}, num_images={self.num_images})"
        )


class LogDatabase:
    """Thin façade: delegates storage to a :class:`LogStore`, maintains ``R``.

    Parameters
    ----------
    num_images:
        Corpus size; required when no *store* is given (a fresh
        :class:`InMemoryLogStore` is created), otherwise validated against
        the store's.
    store:
        The backing :class:`LogStore`; defaults to a process-local
        in-memory store, the exact behaviour of the pre-v2 ``LogDatabase``.

    Notes
    -----
    **Incremental matrix maintenance.**  Appends never invalidate the
    cached matrix; :meth:`relevance_matrix` grows the cache by exactly the
    sessions the store committed since the cache was built — O(new
    judgements + one CSR concatenation), not O(whole log) — and the result
    is bit-identical to a from-scratch
    :meth:`RelevanceMatrix.from_sessions` build (benchmark-asserted).  This
    also absorbs sessions shipped by *other processes* through a shared
    file store.

    **Thread safety.**  Appends delegate to the store (atomic batches,
    race-free ids); the matrix cache is advanced under an internal lock;
    returned matrices and :class:`LogSnapshot` objects are immutable and
    safe to use lock-free.  Copy/pickle capture a consistent snapshot of
    the store (locks are recreated, caches dropped).
    """

    def __init__(
        self, num_images: Optional[int] = None, *, store: Optional[LogStore] = None
    ) -> None:
        if store is None:
            if num_images is None:
                raise LogDatabaseError(
                    "LogDatabase needs num_images (or a pre-built store)"
                )
            store = InMemoryLogStore(num_images)
        elif num_images is not None and store.num_images != int(num_images):
            raise LogDatabaseError(
                f"store covers {store.num_images} images, got num_images={num_images}"
            )
        self._store = store
        self._matrix_cache: Optional[RelevanceMatrix] = None
        # Guards cache advancement only; storage locking lives in the store.
        self._lock = threading.RLock()

    # ----------------------------------------------------------- copy/pickle
    def __getstate__(self) -> Dict[str, object]:
        """Copy/pickle support: a consistent store snapshot, minus the lock.

        The store serialises itself consistently (its own lock); the matrix
        cache is dropped (lazily regrown), so a copy taken mid-append-burst
        can never pair a stale cache with a longer log.
        """
        state = self.__dict__.copy()
        state["_matrix_cache"] = None
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        """Restore a pickled/copied log with a fresh lock of its own."""
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ info
    def __len__(self) -> int:
        return len(self._store)

    @property
    def store(self) -> LogStore:
        """The backing :class:`LogStore`."""
        return self._store

    @property
    def num_images(self) -> int:
        """Number of images the log refers to."""
        return self._store.num_images

    @property
    def num_sessions(self) -> int:
        """Number of sessions committed so far (store-wide)."""
        return len(self._store)

    @property
    def is_empty(self) -> bool:
        """Whether the log contains no sessions yet (cold start)."""
        return len(self._store) == 0

    @property
    def sessions(self) -> Sequence[LogSession]:
        """A snapshot of the committed sessions, in id order."""
        return self._store.snapshot()

    def session(self, session_id: int) -> LogSession:
        """Return the session with the given id (its insertion index).

        A point lookup: only the storage overlapping ``[id, id + 1)`` is
        read (one segment on the file backend, never the whole log).
        """
        session_id = int(session_id)
        if session_id < 0:
            raise LogDatabaseError(
                f"session_id must be in [0, {len(self._store)}), got {session_id}"
            )
        found = self._store.scan(start=session_id, stop=session_id + 1)
        if not found or found[0].session_id != session_id:
            raise LogDatabaseError(
                f"session_id must be in [0, {len(self._store)}), got {session_id}"
            )
        return found[0]

    # --------------------------------------------------------------- recording
    def record_session(self, session: LogSession) -> LogSession:
        """Append *session* to the log; returns the stored (id-tagged) record.

        Id assignment and the append are one atomic step inside the store;
        the matrix cache is **not** invalidated — the next matrix read
        extends it by this session.
        """
        hub = get_hub()
        if not hub.enabled:
            return self._store.append(session)
        with hub.timer("logdb.append_seconds"):
            stored = self._store.append(session)
        hub.count("logdb.sessions_appended")
        return stored

    def record_judgements(
        self,
        judgements: Dict[int, int],
        *,
        query_index: Optional[int] = None,
    ) -> LogSession:
        """Convenience wrapper building and recording a session from a dict."""
        return self.record_session(
            LogSession(judgements=judgements, query_index=query_index)
        )

    def extend(self, sessions: Iterable[LogSession]) -> List[LogSession]:
        """Record every session in *sessions* as one atomic append batch.

        The batch lands entirely or not at all (the store validates up
        front), so a reader observes the log either before a scheduler
        flush or after it, never half-applied.
        """
        hub = get_hub()
        if not hub.enabled:
            return self._store.extend(sessions)
        with hub.timer("logdb.append_seconds"):
            stored = self._store.extend(sessions)
        hub.count("logdb.sessions_appended", len(stored))
        return stored

    def extend_once(
        self, sessions: Iterable[LogSession], token: str
    ) -> List[LogSession]:
        """Record *sessions* at most once per *token* (idempotent batch).

        Forwards to :meth:`LogStore.extend_once` — the cluster's durable
        close protocol flushes a closing session's rounds through here, so
        a close replayed after a worker death dedups instead of
        double-committing.  Returns ``[]`` when the token already landed.

        Raises
        ------
        LogDatabaseError
            If the backing store does not support idempotent appends, for
            an empty batch/token, or on validation failure.
        """
        hub = get_hub()
        if not hub.enabled:
            return self._store.extend_once(sessions, token)
        with hub.timer("logdb.append_seconds"):
            stored = self._store.extend_once(sessions, token)
        if stored:
            hub.count("logdb.sessions_appended", len(stored))
        return stored

    # --------------------------------------------------------------- matrices
    def relevance_matrix(self) -> RelevanceMatrix:
        """The relevance matrix over all committed sessions (incremental).

        Grows the cached matrix by the sessions appended since it was
        built.  Should the store ever *shrink* (only possible when a caller
        replaces the backing files out-of-band), the cache falls back to a
        full rebuild.
        """
        hub = get_hub()
        with self._lock:
            cache = self._matrix_cache
            count = len(self._store)
            if cache is None or cache.num_sessions > count:
                with hub.timer("logdb.matrix_rebuild_seconds"):
                    cache = RelevanceMatrix.from_sessions(
                        self._store.scan(), num_images=self.num_images
                    )
                hub.count("logdb.matrix_rebuilds")
            elif cache.num_sessions < count:
                with hub.timer("logdb.matrix_extend_seconds"):
                    cache = cache.append_sessions(
                        self._store.scan(start=cache.num_sessions)
                    )
                hub.count("logdb.matrix_extensions")
                hub.count("logdb.matrix_sessions_absorbed", count - self._matrix_cache.num_sessions)
            self._matrix_cache = cache
            return cache

    def snapshot(self) -> LogSnapshot:
        """An immutable, versioned :class:`LogSnapshot` of the current log.

        The object every log *reader* should hold for the duration of a
        round: its length and contents never change, no matter how many
        sessions other threads or processes append meanwhile.
        """
        hub = get_hub()
        if not hub.enabled:
            return LogSnapshot(self.relevance_matrix())
        with hub.span("logdb.snapshot") as span:
            snapshot = LogSnapshot(self.relevance_matrix())
            span.set(version=snapshot.version)
        return snapshot

    def log_vectors(self, image_indices: Optional[Sequence[int]] = None) -> np.ndarray:
        """User-log vectors for *image_indices* (rows), all images by default.

        With an empty log the vectors have zero columns; callers that need a
        non-degenerate representation should check :attr:`is_empty` first.
        Callers making several reads per round should take one
        :meth:`snapshot` instead and read through it.
        """
        return self.relevance_matrix().log_vectors(image_indices)

    # ------------------------------------------------------------- statistics
    def judged_image_indices(self) -> np.ndarray:
        """Indices of images that received at least one judgement."""
        matrix = self.relevance_matrix().tocsr()
        judged = np.asarray((matrix != 0).sum(axis=0)).ravel() > 0
        return np.flatnonzero(judged)

    def coverage(self) -> float:
        """Fraction of database images with at least one judgement."""
        return self.judged_image_indices().size / self.num_images

    def statistics(self) -> Dict[str, float]:
        """Summary statistics of the log (sessions, judgements, coverage)."""
        matrix = self.relevance_matrix()
        return {
            "num_sessions": float(matrix.num_sessions),
            "num_judgements": float(matrix.nnz),
            "num_positive": float(matrix.num_positive),
            "num_negative": float(matrix.num_negative),
            "coverage": float(self.coverage()),
            "density": float(matrix.density),
        }
