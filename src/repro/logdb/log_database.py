"""The :class:`LogDatabase`: storage and retrieval of feedback-log sessions."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import LogDatabaseError
from repro.logdb.relevance_matrix import RelevanceMatrix
from repro.logdb.session import LogSession

__all__ = ["LogDatabase"]


class LogDatabase:
    """Accumulates :class:`LogSession` records and exposes the matrix ``R``.

    The relevance matrix is materialised lazily and invalidated whenever a
    new session is recorded, so interactive use (the CBIR engine records a
    session after every feedback round) stays cheap.
    """

    def __init__(self, num_images: int) -> None:
        if num_images < 1:
            raise LogDatabaseError(f"num_images must be >= 1, got {num_images}")
        self._num_images = int(num_images)
        self._sessions: List[LogSession] = []
        self._matrix_cache: Optional[RelevanceMatrix] = None

    # ------------------------------------------------------------------ info
    def __len__(self) -> int:
        return len(self._sessions)

    @property
    def num_images(self) -> int:
        """Number of images the log refers to."""
        return self._num_images

    @property
    def num_sessions(self) -> int:
        """Number of sessions recorded so far."""
        return len(self._sessions)

    @property
    def is_empty(self) -> bool:
        """Whether the log contains no sessions yet (cold start)."""
        return not self._sessions

    @property
    def sessions(self) -> Sequence[LogSession]:
        """The recorded sessions, in insertion order."""
        return tuple(self._sessions)

    def session(self, session_id: int) -> LogSession:
        """Return the session with the given id (its insertion index)."""
        if not 0 <= session_id < len(self._sessions):
            raise LogDatabaseError(
                f"session_id must be in [0, {len(self._sessions)}), got {session_id}"
            )
        return self._sessions[session_id]

    # --------------------------------------------------------------- recording
    def record_session(self, session: LogSession) -> LogSession:
        """Append *session* to the log; returns the stored (id-tagged) session."""
        indices, _ = session.as_arrays()
        if indices.size and indices.max() >= self._num_images:
            raise LogDatabaseError(
                f"session references image {indices.max()} but the database "
                f"only has {self._num_images} images"
            )
        stored = session.with_session_id(len(self._sessions))
        self._sessions.append(stored)
        self._matrix_cache = None
        return stored

    def record_judgements(
        self,
        judgements: Dict[int, int],
        *,
        query_index: Optional[int] = None,
    ) -> LogSession:
        """Convenience wrapper building and recording a session from a dict."""
        return self.record_session(
            LogSession(judgements=judgements, query_index=query_index)
        )

    def extend(self, sessions: Iterable[LogSession]) -> None:
        """Record every session in *sessions*."""
        for session in sessions:
            self.record_session(session)

    # --------------------------------------------------------------- matrices
    def relevance_matrix(self) -> RelevanceMatrix:
        """The (cached) relevance matrix built from all recorded sessions."""
        if self._matrix_cache is None:
            if self.is_empty:
                self._matrix_cache = RelevanceMatrix.empty(num_images=self._num_images)
            else:
                self._matrix_cache = RelevanceMatrix.from_sessions(
                    self._sessions, num_images=self._num_images
                )
        return self._matrix_cache

    def log_vectors(self, image_indices: Optional[Sequence[int]] = None) -> np.ndarray:
        """User-log vectors for *image_indices* (rows), all images by default.

        With an empty log the vectors have zero columns; callers that need a
        non-degenerate representation should check :attr:`is_empty` first.
        """
        return self.relevance_matrix().log_vectors(image_indices)

    # ------------------------------------------------------------- statistics
    def judged_image_indices(self) -> np.ndarray:
        """Indices of images that received at least one judgement."""
        matrix = self.relevance_matrix().tocsr()
        judged = np.asarray((matrix != 0).sum(axis=0)).ravel() > 0
        return np.flatnonzero(judged)

    def coverage(self) -> float:
        """Fraction of database images with at least one judgement."""
        return self.judged_image_indices().size / self._num_images

    def statistics(self) -> Dict[str, float]:
        """Summary statistics of the log (sessions, judgements, coverage)."""
        matrix = self.relevance_matrix()
        positives = sum(session.num_positive for session in self._sessions)
        negatives = sum(session.num_negative for session in self._sessions)
        return {
            "num_sessions": float(self.num_sessions),
            "num_judgements": float(matrix.nnz),
            "num_positive": float(positives),
            "num_negative": float(negatives),
            "coverage": float(self.coverage()),
            "density": float(matrix.density),
        }
