"""The :class:`LogDatabase`: storage and retrieval of feedback-log sessions."""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.exceptions import LogDatabaseError
from repro.logdb.relevance_matrix import RelevanceMatrix
from repro.logdb.session import LogSession

__all__ = ["LogDatabase"]


class LogDatabase:
    """Accumulates :class:`LogSession` records and exposes the matrix ``R``.

    The relevance matrix is materialised lazily and invalidated whenever a
    new session is recorded, so interactive use (the CBIR engine records a
    session after every feedback round) stays cheap.

    Thread safety
    -------------
    The log is safe to share across serving threads.  Appends follow an
    atomic-append discipline: every :meth:`record_session` (and the whole of
    an :meth:`extend` batch) happens under one internal lock, so session ids
    are assigned race-free, records are never lost or duplicated, and the
    matrix cache can never pair a stale matrix with a longer log.  Reads of
    the cached matrix take the same lock only to *build* the cache; the
    returned :class:`RelevanceMatrix` is immutable and safe to use lock-free.
    """

    def __init__(self, num_images: int) -> None:
        if num_images < 1:
            raise LogDatabaseError(f"num_images must be >= 1, got {num_images}")
        self._num_images = int(num_images)
        self._sessions: List[LogSession] = []
        self._matrix_cache: Optional[RelevanceMatrix] = None
        # Guards _sessions and _matrix_cache (see "Thread safety" above).
        # Re-entrant: statistics() → relevance_matrix() nests the hold.
        self._lock = threading.RLock()

    # ----------------------------------------------------------- copy/pickle
    def __getstate__(self) -> Dict[str, object]:
        """Copy/pickle support: a consistent snapshot, minus the lock.

        The session list is snapshotted (not shared) under the lock and the
        matrix cache is dropped (it is lazily rebuilt), so a copy taken
        while another thread records sessions can never pair a stale cache
        with a longer log or keep mutating through a shared list.
        """
        with self._lock:
            state = self.__dict__.copy()
            state["_sessions"] = list(self._sessions)
            state["_matrix_cache"] = None
        del state["_lock"]
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        """Restore a pickled/copied log with a fresh lock of its own."""
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------------ info
    def __len__(self) -> int:
        return len(self._sessions)

    @property
    def num_images(self) -> int:
        """Number of images the log refers to."""
        return self._num_images

    @property
    def num_sessions(self) -> int:
        """Number of sessions recorded so far."""
        return len(self._sessions)

    @property
    def is_empty(self) -> bool:
        """Whether the log contains no sessions yet (cold start)."""
        return not self._sessions

    @property
    def sessions(self) -> Sequence[LogSession]:
        """A snapshot of the recorded sessions, in insertion order."""
        with self._lock:
            return tuple(self._sessions)

    def session(self, session_id: int) -> LogSession:
        """Return the session with the given id (its insertion index)."""
        with self._lock:
            if not 0 <= session_id < len(self._sessions):
                raise LogDatabaseError(
                    f"session_id must be in [0, {len(self._sessions)}), got {session_id}"
                )
            return self._sessions[session_id]

    # --------------------------------------------------------------- recording
    def record_session(self, session: LogSession) -> LogSession:
        """Append *session* to the log; returns the stored (id-tagged) session.

        The id assignment, the append and the cache invalidation form one
        atomic step under the internal lock, so concurrent recorders can
        never mint the same session id or drop a record.
        """
        self._validate_session(session)
        with self._lock:
            return self._append_locked(session)

    def record_judgements(
        self,
        judgements: Dict[int, int],
        *,
        query_index: Optional[int] = None,
    ) -> LogSession:
        """Convenience wrapper building and recording a session from a dict."""
        return self.record_session(
            LogSession(judgements=judgements, query_index=query_index)
        )

    def extend(self, sessions: Iterable[LogSession]) -> None:
        """Record every session in *sessions* as one atomic append batch.

        The whole batch is validated up front and then lands under a single
        lock hold: a reader (or a validation failure) observes the log
        either before the batch or after it, never with a scheduler flush
        half-applied.
        """
        batch = list(sessions)
        for session in batch:
            self._validate_session(session)
        with self._lock:
            for session in batch:
                self._append_locked(session)

    def _append_locked(self, session: LogSession) -> LogSession:
        """Id-tag and append an already-validated session (lock held)."""
        stored = session.with_session_id(len(self._sessions))
        self._sessions.append(stored)
        self._matrix_cache = None
        return stored

    def _validate_session(self, session: LogSession) -> None:
        """Reject sessions referencing images outside the database."""
        indices, _ = session.as_arrays()
        if indices.size and indices.max() >= self._num_images:
            raise LogDatabaseError(
                f"session references image {indices.max()} but the database "
                f"only has {self._num_images} images"
            )

    # --------------------------------------------------------------- matrices
    def relevance_matrix(self) -> RelevanceMatrix:
        """The (cached) relevance matrix built from all recorded sessions."""
        with self._lock:
            if self._matrix_cache is None:
                if self.is_empty:
                    self._matrix_cache = RelevanceMatrix.empty(num_images=self._num_images)
                else:
                    self._matrix_cache = RelevanceMatrix.from_sessions(
                        self._sessions, num_images=self._num_images
                    )
            return self._matrix_cache

    def log_vectors(self, image_indices: Optional[Sequence[int]] = None) -> np.ndarray:
        """User-log vectors for *image_indices* (rows), all images by default.

        With an empty log the vectors have zero columns; callers that need a
        non-degenerate representation should check :attr:`is_empty` first.
        """
        return self.relevance_matrix().log_vectors(image_indices)

    # ------------------------------------------------------------- statistics
    def judged_image_indices(self) -> np.ndarray:
        """Indices of images that received at least one judgement."""
        matrix = self.relevance_matrix().tocsr()
        judged = np.asarray((matrix != 0).sum(axis=0)).ravel() > 0
        return np.flatnonzero(judged)

    def coverage(self) -> float:
        """Fraction of database images with at least one judgement."""
        return self.judged_image_indices().size / self._num_images

    def statistics(self) -> Dict[str, float]:
        """Summary statistics of the log (sessions, judgements, coverage)."""
        matrix = self.relevance_matrix()
        positives = sum(session.num_positive for session in self._sessions)
        negatives = sum(session.num_negative for session in self._sessions)
        return {
            "num_sessions": float(self.num_sessions),
            "num_judgements": float(matrix.nnz),
            "num_positive": float(positives),
            "num_negative": float(negatives),
            "coverage": float(self.coverage()),
            "density": float(matrix.density),
        }
