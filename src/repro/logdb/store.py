"""The :class:`LogStore` protocol: pluggable storage of feedback-log sessions.

A log store is the durable half of the log subsystem — an append-only,
id-ordered sequence of :class:`~repro.logdb.session.LogSession` records.
The :class:`~repro.logdb.log_database.LogDatabase` façade layers relevance-
matrix maintenance on top of whichever backend it is given, so everything
that *writes* logs (service close-batches, ``per_round`` policies, the
simulation campaign) and everything that *reads* them (feedback strategies,
the evaluation protocol) is backend-agnostic.

Two backends ship, mirroring the ``repro.index`` registry pattern:

* :class:`InMemoryLogStore` — a mutex-guarded list; fastest, dies with the
  process.
* :class:`~repro.logdb.file_store.FileLogStore` — a crash-safe append-only
  on-disk segment store whose file-lock append protocol lets multiple OS
  *processes* ship logs into one store.

The contract every backend honours:

* **ids are insertion order** — session ``i`` is the ``i``-th record ever
  appended, store-wide (across processes for shared backends);
* **appends are atomic batches** — one :meth:`LogStore.extend` call lands
  entirely or not at all, and two concurrent appenders can never mint the
  same id, lose a record, or duplicate one;
* **reads are consistent prefixes** — :meth:`LogStore.scan` /
  :meth:`LogStore.snapshot` observe some complete prefix of the append
  order, never a torn batch.
"""

from __future__ import annotations

import abc
import threading
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.exceptions import LogDatabaseError
from repro.logdb.session import LogSession
from repro.utils.io import load_json, save_json

__all__ = ["LogStore", "InMemoryLogStore"]

PathLike = Union[str, Path]

#: Version tag of the portable single-file export format.
_EXPORT_VERSION = 1


class LogStore(abc.ABC):
    """Append-only, id-ordered storage of feedback-log sessions.

    Parameters
    ----------
    num_images:
        Size of the image corpus the log refers to; every judgement is
        validated against it on append.

    Notes
    -----
    All methods are safe to call from concurrent threads; whether two
    *processes* may share one store is a backend property (the in-memory
    backend is process-local, the file backend is explicitly multi-process).
    """

    #: Registry name of the backend (see :func:`repro.logdb.make_log_store`).
    kind: str = "log-store"

    def __init__(self, num_images: int) -> None:
        if num_images < 1:
            raise LogDatabaseError(f"num_images must be >= 1, got {num_images}")
        self._num_images = int(num_images)

    # ------------------------------------------------------------------ info
    @property
    def num_images(self) -> int:
        """Number of images the log refers to."""
        return self._num_images

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of sessions committed so far (store-wide)."""

    # -------------------------------------------------------------- appending
    def append(self, session: LogSession) -> LogSession:
        """Append one session; returns the stored (id-tagged) record.

        Raises
        ------
        LogDatabaseError
            If the session references an image outside the corpus.
        """
        return self.extend([session])[0]

    @abc.abstractmethod
    def extend(self, sessions: Iterable[LogSession]) -> List[LogSession]:
        """Append *sessions* as one atomic batch; returns the stored records.

        The whole batch is validated up front and lands under one mutual
        exclusion (a lock hold in memory, a file-lock hold on disk): a
        concurrent reader or appender observes the store either before the
        batch or after it, never in between.

        Raises
        ------
        LogDatabaseError
            If any session references an image outside the corpus (the
            store is left unchanged).
        """

    def extend_once(
        self, sessions: Iterable[LogSession], token: str
    ) -> List[LogSession]:
        """Append *sessions* atomically **at most once** per *token*.

        The durability primitive of the cluster's close protocol: a close
        replayed after a worker death re-sends the same records under the
        same deterministic token, and the store commits them exactly once —
        the first call appends and remembers the token, every later call
        with that token returns ``[]`` without touching the log.  Checking
        the token and appending the batch are a single atomic step (same
        mutual exclusion as :meth:`extend`), so two concurrent replays of
        one close can never double-commit.

        Parameters
        ----------
        sessions:
            The batch, as for :meth:`extend`.
        token:
            Non-empty dedup key; callers derive it deterministically from
            what is being committed (the close protocol uses the session
            id, its creation stamp and its round count).

        Returns
        -------
        list of LogSession
            The stored records, or ``[]`` when *token* already committed.

        Raises
        ------
        LogDatabaseError
            For an empty token, an empty batch (a token must commit
            something to dedup against), or validation failures.
        """
        raise LogDatabaseError(
            f"{type(self).__name__} does not support idempotent appends"
        )

    def has_token(self, token: str) -> bool:
        """Whether :meth:`extend_once` already committed under *token*."""
        return False

    @staticmethod
    def _check_once_args(batch: List[LogSession], token: str) -> None:
        """Shared argument validation of the :meth:`extend_once` backends."""
        if not token or not isinstance(token, str):
            raise LogDatabaseError(
                f"extend_once needs a non-empty string token, got {token!r}"
            )
        if not batch:
            raise LogDatabaseError(
                "extend_once needs a non-empty batch (an empty commit would "
                "burn the token without persisting anything)"
            )

    # ---------------------------------------------------------------- reading
    @abc.abstractmethod
    def scan(self, start: int = 0, stop: Optional[int] = None) -> List[LogSession]:
        """The committed sessions with ids in ``[start, stop)``, in id order.

        ``scan(0)`` is the full log; the façade's incremental matrix
        maintenance scans only the suffix appended since its cached matrix,
        and point lookups pass ``stop=start + 1`` so backends only touch
        the storage overlapping the requested range.

        Raises
        ------
        LogDatabaseError
            If *start* is negative.
        """

    def snapshot(self) -> Tuple[LogSession, ...]:
        """An immutable, consistent snapshot of the whole log."""
        return tuple(self.scan())

    # ------------------------------------------------------------ maintenance
    def compact(self) -> int:
        """Reorganise storage for reading; returns the number of files removed.

        A no-op for backends without fragmentation (the in-memory store);
        the segment store merges its committed segments into one and deletes
        orphans left behind by crashed writers.
        """
        return 0

    # ------------------------------------------------------------ persistence
    def save(self, path: PathLike) -> Path:
        """Export the full log as one portable JSON document, atomically.

        The export is backend-independent: any store can :meth:`load` it.

        Returns
        -------
        Path
            The path actually written.
        """
        document = {
            "version": _EXPORT_VERSION,
            "kind": self.kind,
            "num_images": self.num_images,
            "sessions": [_session_document(s) for s in self.snapshot()],
        }
        return save_json(document, path)

    @classmethod
    def load(cls, path: PathLike, *, store: Optional["LogStore"] = None) -> "LogStore":
        """Rebuild a store from a :meth:`save` export.

        Parameters
        ----------
        path:
            The exported document.
        store:
            Optional **empty** destination backend; when omitted, a fresh
            :class:`InMemoryLogStore` is created — but only when called as
            ``LogStore.load`` / ``InMemoryLogStore.load``.  A backend that
            needs constructor arguments (``FileLogStore.load(path)``)
            requires an explicit ``store=`` so callers never silently get
            a different backend than the one they named.  Sessions are
            replayed in id order, so the rebuilt store assigns identical
            ids.

        Raises
        ------
        LogDatabaseError
            For an unsupported export version, a corpus-size mismatch with
            *store*, a non-empty destination, or a missing ``store=`` on a
            backend that cannot be default-constructed.
        """
        document = load_json(path)
        version = int(document.get("version", -1))
        if version != _EXPORT_VERSION:
            raise LogDatabaseError(
                f"unsupported log export version {version} (expected {_EXPORT_VERSION})"
            )
        num_images = int(document["num_images"])
        if store is None:
            if cls not in (LogStore, InMemoryLogStore):
                raise LogDatabaseError(
                    f"{cls.__name__}.load needs an explicit destination: pass "
                    f"store={cls.__name__}(...) (an empty one)"
                )
            store = InMemoryLogStore(num_images)
        elif store.num_images != num_images:
            raise LogDatabaseError(
                f"export covers {num_images} images but the destination store "
                f"covers {store.num_images}"
            )
        if len(store) != 0:
            raise LogDatabaseError("LogStore.load requires an empty destination store")
        store.extend(
            _session_from_document(entry) for entry in document["sessions"]
        )
        return store

    # ------------------------------------------------------------- validation
    def _validate(self, session: LogSession) -> None:
        """Reject sessions referencing images outside the corpus."""
        indices, _ = session.as_arrays()
        if indices.size and indices.max() >= self._num_images:
            raise LogDatabaseError(
                f"session references image {indices.max()} but the database "
                f"only has {self._num_images} images"
            )


class InMemoryLogStore(LogStore):
    """List-backed store: fastest, lives and dies with the process.

    One mutex guards the list, so appends from concurrent threads are
    atomic batches with race-free id assignment, and scans return
    consistent snapshots.  Copy/pickle take the same mutex, so a copy made
    while another thread appends is a consistent prefix of the log.
    """

    kind = "memory"

    def __init__(self, num_images: int) -> None:
        super().__init__(num_images)
        self._sessions: List[LogSession] = []
        self._tokens: set = set()
        self._mutex = threading.Lock()

    def __len__(self) -> int:
        """Number of sessions appended so far."""
        return len(self._sessions)

    def extend(self, sessions: Iterable[LogSession]) -> List[LogSession]:
        """Append *sessions* as one atomic, validated batch (see base class)."""
        batch = list(sessions)
        for session in batch:
            self._validate(session)
        with self._mutex:
            return self._extend_locked(batch)

    def extend_once(
        self, sessions: Iterable[LogSession], token: str
    ) -> List[LogSession]:
        """Append at most once per *token* (see base class); token check and
        append are one mutex hold."""
        batch = list(sessions)
        self._check_once_args(batch, token)
        for session in batch:
            self._validate(session)
        with self._mutex:
            if token in self._tokens:
                return []
            stored = self._extend_locked(batch)
            self._tokens.add(token)
            return stored

    def has_token(self, token: str) -> bool:
        """Whether *token* already committed a batch in this store."""
        with self._mutex:
            return token in self._tokens

    def _extend_locked(self, batch: List[LogSession]) -> List[LogSession]:
        stored = [
            session.with_session_id(len(self._sessions) + offset)
            for offset, session in enumerate(batch)
        ]
        self._sessions.extend(stored)
        return stored

    def scan(self, start: int = 0, stop: Optional[int] = None) -> List[LogSession]:
        """The sessions with ids in ``[start, stop)`` (a consistent list copy)."""
        if start < 0:
            raise LogDatabaseError(f"start must be >= 0, got {start}")
        with self._mutex:
            return self._sessions[start:stop]

    # ----------------------------------------------------------- copy/pickle
    def __getstate__(self) -> Dict[str, object]:
        """Pickle/copy support: a consistent snapshot, minus the mutex."""
        with self._mutex:
            state = self.__dict__.copy()
            state["_sessions"] = list(self._sessions)
        del state["_mutex"]
        return state

    def __setstate__(self, state: Dict[str, object]) -> None:
        """Restore a pickled/copied store with a fresh mutex of its own."""
        self.__dict__.update(state)
        self._mutex = threading.Lock()


def _session_document(session: LogSession) -> Dict[str, object]:
    """One session as a JSON-safe document (order-preserving pair list)."""
    return {
        "judgements": [[int(k), int(v)] for k, v in session.judgements.items()],
        "query_index": (
            None if session.query_index is None else int(session.query_index)
        ),
    }


def _session_from_document(document: Dict[str, object]) -> LogSession:
    """Rebuild a session from :func:`_session_document` output."""
    return LogSession(
        judgements={int(k): int(v) for k, v in document["judgements"]},
        query_index=(
            None
            if document.get("query_index") is None
            else int(document["query_index"])
        ),
    )
