"""Registry / factory for log-store backends (mirrors ``index.registry``)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.exceptions import ValidationError
from repro.logdb.file_store import FileLogStore
from repro.logdb.store import InMemoryLogStore, LogStore

__all__ = ["make_log_store", "available_log_stores"]

_FACTORIES: Dict[str, Callable[..., LogStore]] = {
    InMemoryLogStore.kind: InMemoryLogStore,
    FileLogStore.kind: FileLogStore,
}


def available_log_stores() -> List[str]:
    """Names of every registered log-store backend."""
    return sorted(_FACTORIES)


def make_log_store(kind: str, *, num_images: int, **kwargs) -> LogStore:
    """Instantiate a log-store backend by name.

    Parameters
    ----------
    kind:
        Registry name: ``"memory"`` (:class:`InMemoryLogStore`) or
        ``"file"`` (:class:`~repro.logdb.file_store.FileLogStore`, which
        additionally needs ``directory=...``).
    num_images:
        Corpus size the store validates judgements against.
    kwargs:
        Backend-specific parameters, forwarded to the constructor.

    Raises
    ------
    ValidationError
        For an unknown backend name.
    """
    try:
        factory = _FACTORIES[kind]
    except KeyError:
        raise ValidationError(
            f"unknown log store '{kind}', expected one of {available_log_stores()}"
        ) from None
    if factory is FileLogStore:
        if "directory" not in kwargs:
            raise ValidationError("the 'file' log store requires directory=...")
        return FileLogStore(kwargs.pop("directory"), num_images=num_images, **kwargs)
    return factory(num_images, **kwargs)
