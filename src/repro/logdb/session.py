"""The :class:`LogSession` record: one relevance-feedback round."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Mapping, Optional, Tuple

import numpy as np

from repro.exceptions import LogDatabaseError

__all__ = ["LogSession"]


@dataclass(frozen=True)
class LogSession:
    """One unit of user-feedback log: a single relevance-feedback round.

    Attributes
    ----------
    judgements:
        Mapping of image index → ±1 relevance judgement for the images shown
        in this round (images not shown are simply absent = unknown).
    query_index:
        Optional index of the query image that triggered the session.
    session_id:
        Optional identifier assigned by the :class:`LogDatabase`.
    """

    judgements: Mapping[int, int]
    query_index: Optional[int] = None
    session_id: Optional[int] = None

    def __post_init__(self) -> None:
        cleaned: Dict[int, int] = {}
        for image_index, judgement in dict(self.judgements).items():
            index = int(image_index)
            value = int(judgement)
            if index < 0:
                raise LogDatabaseError(f"image index must be non-negative, got {index}")
            if value not in (-1, 1):
                raise LogDatabaseError(
                    f"judgement for image {index} must be +1 or -1, got {value}"
                )
            cleaned[index] = value
        if not cleaned:
            raise LogDatabaseError("a log session must contain at least one judgement")
        object.__setattr__(self, "judgements", cleaned)

    # ------------------------------------------------------------------ info
    def __len__(self) -> int:
        return len(self.judgements)

    @property
    def image_indices(self) -> Tuple[int, ...]:
        """Indices of the images judged in this session (sorted)."""
        return tuple(sorted(self.judgements))

    @property
    def positive_indices(self) -> Tuple[int, ...]:
        """Images marked relevant."""
        return tuple(sorted(i for i, v in self.judgements.items() if v > 0))

    @property
    def negative_indices(self) -> Tuple[int, ...]:
        """Images marked irrelevant."""
        return tuple(sorted(i for i, v in self.judgements.items() if v < 0))

    @property
    def num_positive(self) -> int:
        """Number of relevant judgements."""
        return len(self.positive_indices)

    @property
    def num_negative(self) -> int:
        """Number of irrelevant judgements."""
        return len(self.negative_indices)

    def judgement_for(self, image_index: int) -> int:
        """Judgement of *image_index*: +1, −1, or 0 when not judged."""
        return int(self.judgements.get(int(image_index), 0))

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Return ``(image_indices, judgements)`` as aligned arrays."""
        indices = np.array(self.image_indices, dtype=np.int64)
        values = np.array([self.judgements[i] for i in indices], dtype=np.int8)
        return indices, values

    def with_session_id(self, session_id: int) -> "LogSession":
        """Return a copy of the session tagged with *session_id*."""
        return LogSession(
            judgements=dict(self.judgements),
            query_index=self.query_index,
            session_id=int(session_id),
        )
