"""Simulated collection of the user-feedback log (paper Section 6.3).

The paper collects 150 real-user sessions per dataset with its CBIR system:
a user submits a query, the system returns 20 images, the user ticks the
relevant ones, and — because the system is "powered with a relevance
feedback mechanism" — the user typically runs *several* feedback rounds for
the same query, each round being recorded as one log session.  Different
users disagree, so the log contains noise.

:class:`SimulatedUser` and :func:`collect_feedback_log` reproduce that
protocol against the synthetic corpus:

* log queries cycle over the categories (real users query all semantic
  topics, which is what gives the log its coverage);
* round 1 of a query shows the top-20 images by Euclidean distance on the
  visual features;
* subsequent rounds re-rank with an SVM trained on the judgements collected
  so far (the paper's own RF-SVM mechanism) and show the best *not yet
  judged* images — this is what surfaces the semantically-relevant but
  visually-dissimilar images that make the log valuable;
* every judgement is flipped with probability ``noise_rate`` to model human
  subjectivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.datasets.dataset import ImageDataset
from repro.exceptions import ConfigurationError
from repro.logdb.log_database import LogDatabase
from repro.logdb.session import LogSession
from repro.logdb.store import LogStore
from repro.utils.rng import RandomState, ensure_rng
from repro.utils.validation import check_probability

__all__ = ["SimulatedUser", "LogSimulationConfig", "collect_feedback_log"]


@dataclass(frozen=True)
class LogSimulationConfig:
    """Configuration of the log-collection campaign.

    Attributes
    ----------
    num_sessions:
        Total number of feedback sessions to record (150 in the paper).
    images_per_session:
        Number of images shown and judged per session (20 in the paper).
    rounds_per_query:
        Number of consecutive feedback rounds a simulated user performs for
        each query; each round is one log session.  Values above 1 reproduce
        the paper's long-term-learning setting where users iterate with the
        relevance-feedback tool.
    noise_rate:
        Probability of flipping each judgement, modelling user subjectivity.
    seed:
        Seed of the campaign (query choice and noise).
    """

    num_sessions: int = 150
    images_per_session: int = 20
    rounds_per_query: int = 2
    noise_rate: float = 0.1
    seed: int = 13

    def __post_init__(self) -> None:
        if self.num_sessions < 0:
            raise ConfigurationError(f"num_sessions must be >= 0, got {self.num_sessions}")
        if self.images_per_session < 1:
            raise ConfigurationError(
                f"images_per_session must be >= 1, got {self.images_per_session}"
            )
        if self.rounds_per_query < 1:
            raise ConfigurationError(
                f"rounds_per_query must be >= 1, got {self.rounds_per_query}"
            )
        check_probability(self.noise_rate, name="noise_rate")


class SimulatedUser:
    """Judges retrieved images from ground truth with configurable noise."""

    def __init__(
        self,
        dataset: ImageDataset,
        *,
        noise_rate: float = 0.1,
        random_state: RandomState = None,
    ) -> None:
        self.dataset = dataset
        self.noise_rate = check_probability(noise_rate, name="noise_rate")
        self._rng = ensure_rng(random_state)

    def judge(self, query_index: int, image_indices: Sequence[int]) -> Dict[int, int]:
        """Return ±1 judgements for *image_indices* with respect to the query."""
        query_category = self.dataset.category_of(int(query_index))
        judgements: Dict[int, int] = {}
        for image_index in image_indices:
            relevant = self.dataset.category_of(int(image_index)) == query_category
            judgement = 1 if relevant else -1
            if self.noise_rate > 0 and self._rng.random() < self.noise_rate:
                judgement = -judgement
            judgements[int(image_index)] = judgement
        return judgements

    def feedback_session(
        self, query_index: int, image_indices: Sequence[int]
    ) -> LogSession:
        """Judge the returned images and wrap the result in a :class:`LogSession`."""
        return LogSession(
            judgements=self.judge(query_index, image_indices),
            query_index=int(query_index),
        )


def _refined_ranking(
    features: np.ndarray, judgements: Dict[int, int], *, svm_C: float = 10.0
) -> np.ndarray:
    """Re-rank the database with an SVM trained on the judgements so far.

    This mirrors the RF-SVM mechanism of the CBIR system the paper used to
    collect its log.  When the judgements contain a single class (rare) the
    positive — or failing that negative — prototype distance is used instead.
    """
    from repro.svm.svc import SVC  # local import: keep logdb importable standalone

    indices = np.array(sorted(judgements), dtype=np.int64)
    labels = np.array([judgements[i] for i in indices], dtype=np.float64)
    if np.unique(labels).size < 2:
        sign = 1.0 if labels[0] > 0 else -1.0
        prototype = features[indices].mean(axis=0)
        scores = -sign * np.linalg.norm(features - prototype, axis=1)
        return np.argsort(-scores, kind="stable")
    classifier = SVC(C=svm_C, kernel="rbf", gamma="scale")
    classifier.fit(features[indices], labels)
    scores = classifier.decision_function(features)
    return np.argsort(-scores, kind="stable")


def collect_feedback_log(
    dataset: ImageDataset,
    config: Optional[LogSimulationConfig] = None,
    *,
    random_state: RandomState = None,
    store: Optional[LogStore] = None,
) -> LogDatabase:
    """Simulate a full log-collection campaign against *dataset*.

    Queries cycle over the categories; for every query the simulated user
    runs ``rounds_per_query`` feedback rounds, judging
    ``images_per_session`` previously-unjudged images per round, and each
    round is recorded as one log session.  The campaign stops once
    ``num_sessions`` sessions have been recorded.

    Parameters
    ----------
    dataset:
        The corpus (must carry extracted features).
    config:
        Campaign configuration; defaults to the paper's setting.
    random_state:
        Overrides the configured seed when given.
    store:
        Optional :class:`~repro.logdb.store.LogStore` backend the campaign
        writes through (e.g. a file store shared with a serving process);
        defaults to a fresh in-memory store.  Must be empty and cover
        ``dataset.num_images`` images.
    """
    cfg = config if config is not None else LogSimulationConfig()
    if not dataset.has_features:
        raise ConfigurationError(
            "collect_feedback_log requires a dataset with extracted features"
        )
    if store is not None and len(store) != 0:
        raise ConfigurationError(
            "collect_feedback_log requires an empty log store "
            f"(got one with {len(store)} sessions)"
        )
    rng = ensure_rng(cfg.seed if random_state is None else random_state)
    user = SimulatedUser(dataset, noise_rate=cfg.noise_rate, random_state=rng)
    log = LogDatabase(dataset.num_images, store=store)
    if cfg.num_sessions == 0:
        return log

    features = dataset.features
    categories = np.arange(dataset.num_categories)
    rng.shuffle(categories)
    category_cursor = 0

    while log.num_sessions < cfg.num_sessions:
        # Queries cycle over categories so the log covers every semantic topic.
        category = int(categories[category_cursor % dataset.num_categories])
        category_cursor += 1
        query_index = int(rng.choice(dataset.indices_of_category(category)))

        judged: Dict[int, int] = {}
        for round_index in range(cfg.rounds_per_query):
            if log.num_sessions >= cfg.num_sessions:
                break
            if round_index == 0:
                distances = np.linalg.norm(features - features[query_index], axis=1)
                ranking = np.argsort(distances, kind="stable")
            else:
                ranking = _refined_ranking(features, judged)
            shown = [int(i) for i in ranking if int(i) not in judged]
            shown = shown[: cfg.images_per_session]
            if not shown:
                break
            session = user.feedback_session(query_index, shown)
            log.record_session(session)
            judged.update(session.judgements)
    return log
