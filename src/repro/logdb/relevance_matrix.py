"""The sparse relevance matrix ``R`` (Section 2 of the paper).

``R`` has one row per log session and one column per image.  Entry
``R[j, i]`` is +1 when image ``i`` was marked relevant in session ``j``,
−1 when marked irrelevant, and 0 when it was not shown.  The column ``r_i``
is the *user log vector* of image ``i`` — the second modality fed to the
coupled SVM.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np
from scipy import sparse

from repro.exceptions import LogDatabaseError
from repro.logdb.session import LogSession

__all__ = ["RelevanceMatrix"]


class RelevanceMatrix:
    """Sessions × images relevance matrix backed by scipy CSR storage."""

    def __init__(self, matrix: sparse.spmatrix, *, num_images: int) -> None:
        csr = sparse.csr_matrix(matrix, dtype=np.float64)
        if csr.shape[1] != num_images:
            raise LogDatabaseError(
                f"matrix has {csr.shape[1]} columns but num_images={num_images}"
            )
        self._matrix = csr
        self._num_images = int(num_images)

    # ------------------------------------------------------------ construction
    @classmethod
    def from_sessions(
        cls, sessions: Sequence[LogSession], *, num_images: int
    ) -> "RelevanceMatrix":
        """Build the matrix from an ordered sequence of log sessions."""
        if num_images < 1:
            raise LogDatabaseError(f"num_images must be >= 1, got {num_images}")
        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        for row_index, session in enumerate(sessions):
            indices, values = session.as_arrays()
            if indices.size and indices.max() >= num_images:
                raise LogDatabaseError(
                    f"session {row_index} references image {indices.max()} "
                    f"but the database only has {num_images} images"
                )
            rows.extend([row_index] * len(indices))
            cols.extend(indices.tolist())
            data.extend(values.astype(np.float64).tolist())
        matrix = sparse.csr_matrix(
            (data, (rows, cols)), shape=(len(sessions), num_images), dtype=np.float64
        )
        return cls(matrix, num_images=num_images)

    @classmethod
    def empty(cls, *, num_images: int) -> "RelevanceMatrix":
        """An empty matrix with zero sessions (cold-start log database)."""
        return cls(sparse.csr_matrix((0, num_images), dtype=np.float64), num_images=num_images)

    # ------------------------------------------------------------------ shape
    @property
    def num_sessions(self) -> int:
        """Number of log sessions (rows)."""
        return int(self._matrix.shape[0])

    @property
    def num_images(self) -> int:
        """Number of images (columns)."""
        return self._num_images

    @property
    def shape(self) -> tuple[int, int]:
        """``(num_sessions, num_images)``."""
        return (self.num_sessions, self.num_images)

    @property
    def nnz(self) -> int:
        """Number of stored (non-zero) judgements."""
        return int(self._matrix.nnz)

    @property
    def density(self) -> float:
        """Fraction of matrix entries that carry a judgement."""
        total = self.num_sessions * self.num_images
        return self.nnz / total if total else 0.0

    @property
    def num_positive(self) -> int:
        """Number of +1 (relevant) judgements stored in the matrix."""
        return int((self._matrix.data > 0).sum())

    @property
    def num_negative(self) -> int:
        """Number of −1 (irrelevant) judgements stored in the matrix."""
        return int((self._matrix.data < 0).sum())

    # ---------------------------------------------------------------- queries
    def log_vector(self, image_index: int) -> np.ndarray:
        """Dense user-log vector ``r_i`` (length = number of sessions)."""
        if not 0 <= image_index < self.num_images:
            raise LogDatabaseError(
                f"image_index must be in [0, {self.num_images}), got {image_index}"
            )
        return np.asarray(self._matrix[:, image_index].todense()).ravel()

    def log_vectors(self, image_indices: Optional[Sequence[int]] = None) -> np.ndarray:
        """Dense matrix of user-log vectors, one **row per image**.

        Returns an ``(len(image_indices), num_sessions)`` array (all images by
        default), i.e. the transpose of ``R`` restricted to the requested
        columns — the layout the SVMs consume directly.
        """
        if image_indices is None:
            return np.asarray(self._matrix.todense()).T.copy()
        indices = np.asarray(image_indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self.num_images):
            raise LogDatabaseError("image_indices out of range")
        submatrix = self._matrix[:, indices]
        return np.asarray(submatrix.todense()).T.copy()

    def session_row(self, session_index: int) -> np.ndarray:
        """Dense row of judgements recorded by session *session_index*."""
        if not 0 <= session_index < self.num_sessions:
            raise LogDatabaseError(
                f"session_index must be in [0, {self.num_sessions}), got {session_index}"
            )
        return np.asarray(self._matrix[session_index].todense()).ravel()

    def toarray(self) -> np.ndarray:
        """Full dense ``(num_sessions, num_images)`` matrix."""
        return np.asarray(self._matrix.todense())

    def tocsr(self) -> sparse.csr_matrix:
        """The underlying CSR matrix (a copy)."""
        return self._matrix.copy()

    # ------------------------------------------------------- immutable growth
    def append_session(self, session: LogSession) -> "RelevanceMatrix":
        """Return a new matrix with *session* appended as the last row."""
        return self.append_sessions([session])

    def append_sessions(
        self, sessions: Sequence[LogSession]
    ) -> "RelevanceMatrix":
        """Return a new matrix with *sessions* appended as the last rows.

        This is the incremental-maintenance primitive of the log façade:
        growing an ``n``-session matrix by a batch of ``k`` sessions costs
        one CSR block build plus one ``vstack`` — O(nnz) of raw memory
        copies — instead of re-walking all ``n + k`` sessions in Python.
        The result is **bit-identical** to
        :meth:`from_sessions` over the concatenated session sequence (both
        produce canonical CSR: rows in order, columns sorted, no
        duplicates), which the log-append benchmark asserts.

        Parameters
        ----------
        sessions:
            The new rows, in append order.  An empty batch returns ``self``
            (matrices are immutable, so sharing is safe).
        """
        batch = list(sessions)
        if not batch:
            return self
        block = RelevanceMatrix.from_sessions(batch, num_images=self.num_images)
        stacked = sparse.vstack([self._matrix, block._matrix], format="csr")
        return RelevanceMatrix(stacked, num_images=self.num_images)
