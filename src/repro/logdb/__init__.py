"""User-feedback log subsystem (Sections 2 and 6.3 of the paper).

The log of historical relevance-feedback sessions is the second information
modality the coupled SVM learns from.  A *log session* is one feedback round:
a set of images judged relevant (+1) or irrelevant (−1) by a user.  Sessions
are collected into a :class:`LogDatabase`, which materialises the sparse
relevance matrix ``R`` (sessions × images); the column ``r_i`` of that matrix
is the "user log vector" describing image ``i``.

Because no real users are available, :class:`SimulatedUser` and
:func:`collect_feedback_log` replay the paper's collection protocol: a random
query, an initial top-20 retrieval by low-level features, then a relevance
judgement of those 20 images from ground-truth category membership perturbed
by a configurable noise rate (human subjectivity).
"""

from __future__ import annotations

from repro.logdb.log_database import LogDatabase
from repro.logdb.relevance_matrix import RelevanceMatrix
from repro.logdb.session import LogSession
from repro.logdb.simulation import (
    LogSimulationConfig,
    SimulatedUser,
    collect_feedback_log,
)

__all__ = [
    "LogSession",
    "RelevanceMatrix",
    "LogDatabase",
    "SimulatedUser",
    "LogSimulationConfig",
    "collect_feedback_log",
]
