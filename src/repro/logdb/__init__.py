"""User-feedback log subsystem (Sections 2 and 6.3 of the paper).

The log of historical relevance-feedback sessions is the second information
modality the coupled SVM learns from.  A *log session* is one feedback round:
a set of images judged relevant (+1) or irrelevant (−1) by a user.

Since the v2 redesign the subsystem is layered like the index subsystem:

* :class:`LogStore` — the pluggable storage protocol
  (``append``/``extend``/``scan``/``snapshot``/``compact``/``save``/``load``),
  with :class:`InMemoryLogStore` and the crash-safe, multi-process
  :class:`FileLogStore` segment store, built by :func:`make_log_store`;
* :class:`LogDatabase` — the façade that maintains the sparse relevance
  matrix ``R`` (sessions × images) *incrementally* over any store; the
  column ``r_i`` of ``R`` is the "user log vector" describing image ``i``;
* :class:`LogSnapshot` — an immutable, versioned capture of ``R`` that
  feedback strategies and the evaluation protocol read while appends
  continue.

Because no real users are available, :class:`SimulatedUser` and
:func:`collect_feedback_log` replay the paper's collection protocol: a random
query, an initial top-20 retrieval by low-level features, then a relevance
judgement of those 20 images from ground-truth category membership perturbed
by a configurable noise rate (human subjectivity).
"""

from __future__ import annotations

from repro.logdb.file_store import FileLogStore
from repro.logdb.log_database import LogDatabase, LogSnapshot
from repro.logdb.registry import available_log_stores, make_log_store
from repro.logdb.relevance_matrix import RelevanceMatrix
from repro.logdb.session import LogSession
from repro.logdb.simulation import (
    LogSimulationConfig,
    SimulatedUser,
    collect_feedback_log,
)
from repro.logdb.store import InMemoryLogStore, LogStore

__all__ = [
    "LogSession",
    "RelevanceMatrix",
    "LogDatabase",
    "LogSnapshot",
    "LogStore",
    "InMemoryLogStore",
    "FileLogStore",
    "make_log_store",
    "available_log_stores",
    "SimulatedUser",
    "LogSimulationConfig",
    "collect_feedback_log",
]
