"""The on-disk :class:`FileLogStore`: crash-safe, multi-process log shipping.

An append-only segment store.  Layout of the store directory::

    manifest.json            the commit record (atomic, see below)
    store.lock               the cross-process append lock
    segments/
        seg-00000000-...json one immutable JSON segment per committed batch

**Append protocol** (the ROADMAP "cross-process log shipping" item): every
append/extend runs under an exclusive :func:`repro.utils.io.file_lock` on
``store.lock`` —

1. read ``manifest.json`` (the session count there mints the batch's ids);
2. write the batch as a brand-new segment file via
   write-temp-then-:func:`os.replace`;
3. rewrite ``manifest.json`` (again atomically) naming the new segment.

Step 3 is the *commit*: a reader keys everything off the manifest, so any
number of OS processes can ship logs into one directory and no record is
ever lost, duplicated, or observed half-written.

**Crash safety.**  The kernel releases the file lock when a writer dies, so
a crash can never wedge the store, and each crash window is benign:

* crash mid-step-2 — only a ``.tmp-…`` file exists; atomic savers clean up
  on error and readers never glob temporaries;
* crash between 2 and 3 — the segment file exists but no manifest names it
  (an *orphan*).  Reads cleanly ignore it; the next committed batch reuses
  the same id range and therefore the same segment name, atomically
  replacing the orphan (recovery by overwrite); :meth:`compact` deletes
  any that remain.

Segments named by a committed manifest are immutable; :meth:`compact`
(under the lock) merges them into one segment of a new *generation* and
deletes every file the new manifest no longer references.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.exceptions import LogDatabaseError
from repro.logdb.session import LogSession
from repro.logdb.store import LogStore, _session_document, _session_from_document
from repro.obs import get_hub
from repro.utils.io import file_lock, load_json, save_json

__all__ = ["FileLogStore"]

PathLike = Union[str, Path]

#: Version tag written into every manifest.
_MANIFEST_VERSION = 1


class FileLogStore(LogStore):
    """Append-only on-disk segment store shared safely by many processes.

    Parameters
    ----------
    directory:
        The store directory (created if missing).  Opening an existing
        store reads ``num_images`` from its manifest.
    num_images:
        Corpus size; required when creating a new store, validated against
        the manifest when opening an existing one (``None`` = take the
        manifest's value).

    Raises
    ------
    LogDatabaseError
        When creating without ``num_images``, opening with a mismatching
        ``num_images``, or opening a directory whose manifest is from an
        unsupported version.

    Notes
    -----
    Thread-safe *and* process-safe: every append runs under the store's
    cross-process file lock, and reads are lock-free (they key off the
    atomically-replaced manifest).  Handles are never kept open, so the
    object is trivially picklable and ``fork``-safe.
    """

    kind = "file"

    def __init__(self, directory: PathLike, *, num_images: Optional[int] = None) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._segments_dir = self.directory / "segments"
        self._segments_dir.mkdir(exist_ok=True)
        self._manifest_path = self.directory / "manifest.json"
        self._lock_path = self.directory / "store.lock"
        if not self._manifest_path.exists():
            # Creation races with another process are settled under the
            # lock: whoever arrives second sees the manifest and validates.
            with file_lock(self._lock_path):
                if not self._manifest_path.exists():
                    if num_images is None:
                        raise LogDatabaseError(
                            "creating a FileLogStore requires num_images"
                        )
                    save_json(
                        {
                            "version": _MANIFEST_VERSION,
                            "num_images": int(num_images),
                            "num_sessions": 0,
                            "generation": 0,
                            "segments": [],
                        },
                        self._manifest_path,
                    )
        manifest = self._read_manifest()
        if num_images is not None and int(manifest["num_images"]) != int(num_images):
            raise LogDatabaseError(
                f"store at {self.directory} covers {manifest['num_images']} images, "
                f"asked to open it with num_images={num_images}"
            )
        super().__init__(int(manifest["num_images"]))

    # ------------------------------------------------------------------ info
    def __len__(self) -> int:
        """Number of sessions committed store-wide (reads the manifest)."""
        return int(self._read_manifest()["num_sessions"])

    # -------------------------------------------------------------- appending
    def extend(self, sessions: Iterable[LogSession]) -> List[LogSession]:
        """Ship *sessions* into the store as one committed segment.

        Runs the full append protocol (see module docstring) under the
        cross-process file lock; an empty batch commits nothing.
        """
        batch = list(sessions)
        for session in batch:
            self._validate(session)
        if not batch:
            return []
        hub = get_hub()
        lock_requested = time.perf_counter() if hub.enabled else 0.0
        with file_lock(self._lock_path):
            if hub.enabled:
                hub.observe(
                    "logdb.file.lock_wait_seconds", time.perf_counter() - lock_requested
                )
            manifest = self._read_manifest()
            stored = self._append_locked(manifest, batch)
            save_json(manifest, self._manifest_path)  # the commit point
            hub.count("logdb.file.segments_written")
            hub.set_gauge("logdb.file.segments", len(manifest["segments"]))
        return stored

    def extend_once(
        self, sessions: Iterable[LogSession], token: str
    ) -> List[LogSession]:
        """Ship *sessions* at most once per *token* (see base class).

        The token rides **inside the manifest** (``applied_tokens``), so
        "segment committed" and "token recorded" are one atomic
        ``os.replace`` of the manifest — there is no crash window in which
        one exists without the other.  A crash after the segment write but
        before the manifest commit leaves an orphan segment and an
        unrecorded token; the replayed call re-mints the same ids, lands
        on the same deterministic segment name, and atomically overwrites
        the orphan (the store's standard recovery-by-overwrite).
        """
        batch = list(sessions)
        self._check_once_args(batch, token)
        for session in batch:
            self._validate(session)
        hub = get_hub()
        with file_lock(self._lock_path):
            manifest = self._read_manifest()
            tokens = manifest.setdefault("applied_tokens", [])
            if token in tokens:
                hub.count("logdb.file.dedup_skips")
                return []
            stored = self._append_locked(manifest, batch)
            tokens.append(token)
            save_json(manifest, self._manifest_path)  # segment + token commit
            hub.count("logdb.file.segments_written")
            hub.set_gauge("logdb.file.segments", len(manifest["segments"]))
        return stored

    def has_token(self, token: str) -> bool:
        """Whether *token* already committed a batch (lock-free manifest read)."""
        return token in self._read_manifest().get("applied_tokens", [])

    def _append_locked(
        self, manifest: Dict[str, object], batch: List[LogSession]
    ) -> List[LogSession]:
        """Write *batch* as a new segment and book it into *manifest*.

        Caller holds the file lock and performs the manifest save (the
        commit) — keeping the commit in one place lets :meth:`extend_once`
        add its token to the very same atomic rewrite.
        """
        first_id = int(manifest["num_sessions"])
        stored = [
            session.with_session_id(first_id + offset)
            for offset, session in enumerate(batch)
        ]
        name = self._segment_name(int(manifest["generation"]), first_id)
        save_json(
            {
                "first_id": first_id,
                "count": len(stored),
                "sessions": [_session_document(s) for s in stored],
            },
            self._segments_dir / name,
        )
        manifest["segments"].append(
            {"name": name, "first_id": first_id, "count": len(stored)}
        )
        manifest["num_sessions"] = first_id + len(stored)
        return stored

    # ---------------------------------------------------------------- reading
    def scan(self, start: int = 0, stop: Optional[int] = None) -> List[LogSession]:
        """The committed sessions with ids in ``[start, stop)``, in id order.

        Lock-free: keys off one atomically-replaced manifest, and only the
        segments overlapping the requested id range are read at all.  A
        compaction racing the read can delete a just-listed segment; the
        read then simply retries against the newer manifest.
        """
        if start < 0:
            raise LogDatabaseError(f"start must be >= 0, got {start}")
        for _ in range(8):
            manifest = self._read_manifest()
            try:
                return self._scan_manifest(manifest, start, stop)
            except FileNotFoundError:
                time.sleep(0.005)  # compaction in flight — retry on fresh manifest
        raise LogDatabaseError(
            f"could not obtain a consistent scan of {self.directory} "
            "(segments kept disappearing mid-read)"
        )

    # ------------------------------------------------------------ maintenance
    def compact(self) -> int:
        """Merge all committed segments into one; delete unreferenced files.

        Runs under the append lock.  Removes crash orphans (segments no
        manifest names) and superseded generations; returns the number of
        files deleted.  Ids, contents and scan order are unchanged — and so
        is the ``applied_tokens`` ledger: :meth:`extend_once` dedup keys
        survive compaction, so a close replayed arbitrarily late still
        cannot double-commit.
        """
        with file_lock(self._lock_path):
            manifest = self._read_manifest()
            generation = int(manifest["generation"]) + 1
            sessions = self._scan_manifest(manifest, 0)
            keep: List[Dict[str, object]] = []
            if sessions:
                name = self._segment_name(generation, 0)
                save_json(
                    {
                        "first_id": 0,
                        "count": len(sessions),
                        "sessions": [_session_document(s) for s in sessions],
                    },
                    self._segments_dir / name,
                )
                keep.append({"name": name, "first_id": 0, "count": len(sessions)})
            manifest["generation"] = generation
            manifest["segments"] = keep
            save_json(manifest, self._manifest_path)  # the commit point
            referenced = {str(entry["name"]) for entry in keep}
            removed = 0
            for path in self._segments_dir.glob("seg-*.json"):
                if path.name not in referenced:
                    path.unlink(missing_ok=True)
                    removed += 1
            hub = get_hub()
            hub.count("logdb.file.compactions")
            hub.set_gauge("logdb.file.segments", len(keep))
            return removed

    # ------------------------------------------------------------- internals
    def _read_manifest(self) -> Dict[str, object]:
        """Load and version-check the manifest."""
        manifest = load_json(self._manifest_path)
        version = int(manifest.get("version", -1))
        if version != _MANIFEST_VERSION:
            raise LogDatabaseError(
                f"unsupported log-store manifest version {version} "
                f"(expected {_MANIFEST_VERSION})"
            )
        return manifest

    def _scan_manifest(
        self, manifest: Dict[str, object], start: int, stop: Optional[int] = None
    ) -> List[LogSession]:
        """Read the manifest's segments overlapping ``[start, stop)``."""
        out: List[LogSession] = []
        for entry in manifest["segments"]:
            first = int(entry["first_id"])
            count = int(entry["count"])
            if first + count <= start or (stop is not None and first >= stop):
                continue  # segment entirely outside the requested range
            document = load_json(self._segments_dir / str(entry["name"]))
            for offset, record in enumerate(document["sessions"]):
                session_id = first + offset
                if session_id < start:
                    continue
                if stop is not None and session_id >= stop:
                    break
                out.append(
                    _session_from_document(record).with_session_id(session_id)
                )
        return out

    @staticmethod
    def _segment_name(generation: int, first_id: int) -> str:
        """Deterministic segment file name: generation + first session id.

        Determinism is what makes orphan *recovery by overwrite* work: a
        batch re-attempted after a crash-before-commit minted the same ids,
        so it lands on the same name and atomically replaces the orphan.
        """
        return f"seg-g{generation:04d}-{first_id:08d}.json"
