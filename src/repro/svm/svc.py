"""A scikit-learn-like SVC estimator on top of the SMO solver.

The estimator deliberately mirrors the familiar ``fit`` /
``decision_function`` / ``predict`` interface, but adds the one capability
the coupled SVM needs: :meth:`fit` accepts *per-sample* upper bounds via the
``sample_weight`` argument, so that labelled samples are bounded by ``C`` and
unlabeled (transductive) samples by ``rho * C``.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.exceptions import SolverError, ValidationError
from repro.svm.kernels import Kernel, make_kernel
from repro.svm.model import SVMModel
from repro.svm.smo import SMOResult, SMOSolver

__all__ = ["SVC"]


class SVC:
    """Support-vector classifier with per-sample box constraints.

    Parameters
    ----------
    C:
        Base regularisation parameter; per-sample bounds are
        ``C * sample_weight``.
    kernel:
        Kernel name (``"linear"``, ``"rbf"``, ``"poly"``) or a
        :class:`~repro.svm.kernels.Kernel` instance.
    gamma:
        RBF bandwidth (ignored for other kernels): a float, ``"scale"`` or
        ``"auto"``.
    tolerance, max_iter:
        Passed through to the :class:`~repro.svm.smo.SMOSolver`.
    """

    def __init__(
        self,
        *,
        C: float = 1.0,
        kernel: Union[str, Kernel] = "rbf",
        gamma: Union[float, str] = "scale",
        tolerance: float = 1e-3,
        max_iter: int = 20000,
    ) -> None:
        if C <= 0:
            raise ValidationError(f"C must be positive, got {C}")
        self.C = float(C)
        if isinstance(kernel, str) and kernel == "rbf":
            self.kernel: Kernel = make_kernel(kernel, gamma=gamma)
        else:
            self.kernel = make_kernel(kernel)
        self.tolerance = float(tolerance)
        self.max_iter = int(max_iter)

        self.model_: Optional[SVMModel] = None
        self.result_: Optional[SMOResult] = None
        self.support_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ API
    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has produced a model."""
        return self.model_ is not None

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        *,
        sample_weight: Optional[np.ndarray] = None,
    ) -> "SVC":
        """Train the classifier.

        Parameters
        ----------
        features:
            ``(N, D)`` training matrix.
        labels:
            ``(N,)`` vector of ±1 labels.
        sample_weight:
            Optional ``(N,)`` positive multipliers of ``C``; the effective
            upper bound for sample ``i`` is ``C * sample_weight[i]``.
        """
        x = np.atleast_2d(np.asarray(features, dtype=np.float64))
        y = np.asarray(labels, dtype=np.float64).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValidationError(
                f"features ({x.shape[0]}) and labels ({y.shape[0]}) must align"
            )
        if sample_weight is None:
            bounds = np.full(y.shape[0], self.C)
        else:
            weights = np.asarray(sample_weight, dtype=np.float64).ravel()
            if weights.shape[0] != y.shape[0]:
                raise ValidationError(
                    f"sample_weight ({weights.shape[0]}) must align with labels ({y.shape[0]})"
                )
            if np.any(weights <= 0):
                raise ValidationError("sample_weight entries must be strictly positive")
            bounds = self.C * weights

        self.kernel = self.kernel.fit(x)
        gram = self.kernel.gram(x)
        solver = SMOSolver(tolerance=self.tolerance, max_iter=self.max_iter)
        result = solver.solve(gram, y, bounds)

        support_mask = result.alphas > 1e-10
        if not support_mask.any():
            # Degenerate but possible with extreme parameters: keep an
            # all-zero model that predicts from the bias alone.
            support_mask = np.zeros_like(support_mask)
        self.support_ = np.flatnonzero(support_mask)
        self.model_ = SVMModel(
            support_vectors=x[support_mask] if support_mask.any() else np.zeros((0, x.shape[1])),
            dual_coef=(result.alphas * y)[support_mask],
            bias=result.bias,
            kernel=self.kernel,
            alphas=result.alphas,
        )
        self.result_ = result
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed decision values ``f(x)`` for each row of *features*."""
        self._check_fitted()
        return self.model_.decision_function(features)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted ±1 labels for each row of *features*."""
        self._check_fitted()
        return self.model_.predict(features)

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on ``(features, labels)``."""
        predictions = self.predict(features)
        y = np.asarray(labels, dtype=np.float64).ravel()
        return float(np.mean(predictions == y))

    # ------------------------------------------------------------- internals
    def _check_fitted(self) -> None:
        if self.model_ is None:
            raise SolverError("SVC must be fitted before calling predict/decision_function")
