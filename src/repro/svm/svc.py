"""A scikit-learn-like SVC estimator on top of the SMO solver.

The estimator deliberately mirrors the familiar ``fit`` /
``decision_function`` / ``predict`` interface, but adds the capabilities the
coupled SVM needs:

* :meth:`fit` accepts *per-sample* upper bounds via the ``sample_weight``
  argument, so that labelled samples are bounded by ``C`` and unlabeled
  (transductive) samples by ``rho * C``;
* a ``precomputed_gram=`` fast path that skips kernel evaluation entirely
  (the coupled SVM computes each modality's Gram once per fit through
  :class:`repro.svm.gram_cache.GramCache` and re-solves against it);
* warm starts: ``initial_alphas=`` seeds the SMO solver with the multipliers
  of a previous, similar solve, and ``warm_start=True`` does so
  automatically from the estimator's own last fit.

Fit-time work is counted in ``kernel_evaluations_`` (kernel-matrix entries
computed) and ``solver_iterations_`` (cumulative SMO pair updates) so the
warm-started pipeline's savings are observable.
"""

from __future__ import annotations

import warnings
from typing import Optional, Union

import numpy as np

from repro.exceptions import SolverError, ValidationError
from repro.svm.kernels import Kernel, build_kernel
from repro.svm.model import SVMModel
from repro.svm.smo import SMOResult, SMOSolver

__all__ = ["SVC"]


class SVC:
    """Support-vector classifier with per-sample box constraints.

    Parameters
    ----------
    C:
        Base regularisation parameter; per-sample bounds are
        ``C * sample_weight``.
    kernel:
        Kernel name (``"linear"``, ``"rbf"``, ``"poly"``) or a
        :class:`~repro.svm.kernels.Kernel` instance.
    gamma:
        Kernel bandwidth: a float, ``"scale"`` or ``"auto"``.  Forwarded to
        the RBF kernel, and — when numeric — to the polynomial kernel.
    degree, coef0:
        Polynomial-kernel hyper-parameters (ignored by other kernels).
    tolerance, max_iter, shrinking:
        Passed through to the :class:`~repro.svm.smo.SMOSolver`.
    warm_start:
        When ``True``, successive :meth:`fit` calls on same-sized problems
        seed the solver with the previous solution's multipliers.
    """

    def __init__(
        self,
        *,
        C: float = 1.0,
        kernel: Union[str, Kernel] = "rbf",
        gamma: Union[float, str] = "scale",
        degree: int = 3,
        coef0: float = 1.0,
        tolerance: float = 1e-3,
        max_iter: int = 20000,
        shrinking: bool = False,
        warm_start: bool = False,
    ) -> None:
        if C <= 0:
            raise ValidationError(f"C must be positive, got {C}")
        self.C = float(C)
        self.kernel: Kernel = build_kernel(kernel, gamma=gamma, degree=degree, coef0=coef0)
        self.tolerance = float(tolerance)
        self.max_iter = int(max_iter)
        self.shrinking = bool(shrinking)
        self.warm_start = bool(warm_start)

        self.model_: Optional[SVMModel] = None
        self.result_: Optional[SMOResult] = None
        self.support_: Optional[np.ndarray] = None
        #: Kernel-matrix entries computed across all fits of this estimator.
        self.kernel_evaluations_ = 0
        #: SMO pair updates across all fits of this estimator.
        self.solver_iterations_ = 0

    # ------------------------------------------------------------------ API
    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has produced a model."""
        return self.model_ is not None

    def fit(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        *,
        sample_weight: Optional[np.ndarray] = None,
        precomputed_gram: Optional[np.ndarray] = None,
        initial_alphas: Optional[np.ndarray] = None,
    ) -> "SVC":
        """Train the classifier.

        Parameters
        ----------
        features:
            ``(N, D)`` training matrix.
        labels:
            ``(N,)`` vector of ±1 labels.
        sample_weight:
            Optional ``(N,)`` positive multipliers of ``C``; the effective
            upper bound for sample ``i`` is ``C * sample_weight[i]``.
        precomputed_gram:
            Optional ``(N, N)`` kernel matrix of *features* with itself.
            When given, no kernel evaluation happens at fit time; the caller
            is responsible for the matrix matching ``self.kernel`` (the
            kernel is still fitted on *features* so ``decision_function``
            works).
        initial_alphas:
            Optional warm-start multipliers forwarded to
            :meth:`SMOSolver.solve`.  When omitted and ``warm_start=True``,
            the previous fit's multipliers are used if the problem size
            matches.
        """
        x = np.atleast_2d(np.asarray(features, dtype=np.float64))
        y = np.asarray(labels, dtype=np.float64).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValidationError(
                f"features ({x.shape[0]}) and labels ({y.shape[0]}) must align"
            )
        if sample_weight is None:
            bounds = np.full(y.shape[0], self.C)
        else:
            weights = np.asarray(sample_weight, dtype=np.float64).ravel()
            if weights.shape[0] != y.shape[0]:
                raise ValidationError(
                    f"sample_weight ({weights.shape[0]}) must align with labels ({y.shape[0]})"
                )
            if np.any(weights <= 0):
                raise ValidationError("sample_weight entries must be strictly positive")
            bounds = self.C * weights

        self.kernel = self.kernel.fit(x)
        if precomputed_gram is not None:
            gram = np.asarray(precomputed_gram, dtype=np.float64)
            if gram.shape != (x.shape[0], x.shape[0]):
                raise ValidationError(
                    f"precomputed_gram must have shape {(x.shape[0], x.shape[0])}, "
                    f"got {gram.shape}"
                )
        else:
            gram = self.kernel.gram(x)
            self.kernel_evaluations_ += int(gram.size)

        if (
            initial_alphas is None
            and self.warm_start
            and self.result_ is not None
            and self.result_.alphas.shape[0] == y.shape[0]
        ):
            initial_alphas = self.result_.alphas

        solver = SMOSolver(
            tolerance=self.tolerance, max_iter=self.max_iter, shrinking=self.shrinking
        )
        result = solver.solve(gram, y, bounds, initial_alphas=initial_alphas)
        self.solver_iterations_ += result.iterations
        if not result.converged:
            warnings.warn(
                f"SMO solver hit max_iter={self.max_iter} before reaching the "
                f"KKT tolerance {self.tolerance}; the model may be inaccurate "
                "(raise max_iter or loosen tolerance)",
                RuntimeWarning,
                stacklevel=2,
            )

        support_mask = result.alphas > 1e-10
        self.support_ = np.flatnonzero(support_mask)
        if support_mask.any():
            support_vectors = x[support_mask]
            dual_coef = (result.alphas * y)[support_mask]
        else:
            # Degenerate but possible with extreme parameters (e.g. a nearly
            # singular two-variable sub-problem yields vanishing updates):
            # keep an explicit empty model that predicts from the bias alone.
            support_vectors = np.zeros((0, x.shape[1]))
            dual_coef = np.zeros(0)
        self.model_ = SVMModel(
            support_vectors=support_vectors,
            dual_coef=dual_coef,
            bias=result.bias,
            kernel=self.kernel,
            alphas=result.alphas,
        )
        self.result_ = result
        return self

    def decision_function(self, features: np.ndarray) -> np.ndarray:
        """Signed decision values ``f(x)`` for each row of *features*."""
        self._check_fitted()
        return self.model_.decision_function(features)

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predicted ±1 labels for each row of *features*."""
        self._check_fitted()
        return self.model_.predict(features)

    def score(self, features: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on ``(features, labels)``."""
        predictions = self.predict(features)
        y = np.asarray(labels, dtype=np.float64).ravel()
        return float(np.mean(predictions == y))

    # ------------------------------------------------------------- internals
    def _check_fitted(self) -> None:
        if self.model_ is None:
            raise SolverError("SVC must be fitted before calling predict/decision_function")
