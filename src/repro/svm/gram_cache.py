"""Per-modality Gram caching for the coupled SVM's Alternating Optimization.

The AO loop of :class:`repro.core.coupled_svm.CoupledSVM` retrains each
modality SVM at every ``rho*`` annealing stage and every label-switching
pass, but the training rows — the labelled samples stacked on top of the
selected unlabeled pool — never change within one ``fit``.  Rebuilding the
RBF Gram matrix for every solve therefore repeats the same ``O(N^2 D)``
kernel work up to dozens of times per feedback round.

:class:`GramCache` computes each modality's full Gram exactly once per fit
and serves everything the loop needs from it:

* the training Gram for :class:`repro.svm.smo.SMOSolver` /
  :class:`repro.svm.svc.SVC` (zero kernel evaluations per solve);
* the Q-matrix ``K * y y^T``, updated by **sign flips** of the rows/columns
  of the flipped pseudo-labels (exact in IEEE arithmetic) instead of a full
  ``O(N^2)`` re-multiplication when labels change;
* batched decision values on the unlabeled pool via the cached cross-Gram
  rows, so label switching never calls the kernel either.

The cache also counts its work (``gram_computations``,
``kernel_evaluations``) so callers can assert the "Gram computed once per
fit" invariant and track kernel-evaluation budgets in benchmarks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.obs import get_hub
from repro.svm.kernels import Kernel

__all__ = ["GramCache"]


class GramCache:
    """Cache of one modality's training Gram across repeated SMO solves.

    Parameters
    ----------
    kernel:
        Kernel to evaluate; fitted here on the stacked training matrix (so
        data-dependent hyper-parameters like ``gamma="scale"`` are resolved
        exactly once).
    labeled_features:
        ``(N_l, D)`` labelled rows of this modality.
    unlabeled_features:
        ``(N_u, D)`` unlabeled-pool rows of this modality.

    Attributes
    ----------
    features:
        The stacked ``(N_l + N_u, D)`` training matrix.
    gram:
        The full training Gram, computed once in ``__init__``.
    gram_computations:
        Number of full training-Gram computations performed (always 1; the
        counter exists so callers can assert it stays 1).
    kernel_evaluations:
        Number of kernel-matrix entries evaluated through this cache.
    """

    def __init__(
        self,
        kernel: Kernel,
        labeled_features: np.ndarray,
        unlabeled_features: np.ndarray,
    ) -> None:
        x_l = np.atleast_2d(np.asarray(labeled_features, dtype=np.float64))
        x_u = np.atleast_2d(np.asarray(unlabeled_features, dtype=np.float64))
        if x_l.shape[1] != x_u.shape[1]:
            raise ValidationError(
                "labeled and unlabeled features must share dimensionality, got "
                f"{x_l.shape[1]} and {x_u.shape[1]}"
            )
        self.num_labeled = int(x_l.shape[0])
        self.num_unlabeled = int(x_u.shape[0])
        self.features = np.vstack([x_l, x_u])
        self.kernel = kernel.fit(self.features)
        hub = get_hub()
        with hub.timer("solver.gram.build_seconds"):
            self.gram = self.kernel.gram(self.features)
        self.gram_computations = 1
        self.kernel_evaluations = int(self.gram.size)
        hub.count("solver.gram.builds")
        hub.count("solver.gram.kernel_evaluations", self.kernel_evaluations)
        self._q: Optional[np.ndarray] = None
        self._q_labels: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ API
    @property
    def num_samples(self) -> int:
        """Total number of training rows (labelled + unlabeled)."""
        return self.num_labeled + self.num_unlabeled

    def q_matrix(self, labels: np.ndarray) -> np.ndarray:
        """The dual Q-matrix ``K * y y^T`` for the given ±1 labels.

        The first call builds the matrix; later calls update it in place by
        flipping the sign of the rows and columns whose label changed (the
        diagonal blocks of doubly-flipped pairs cancel, which is exactly the
        identity ``K y'_i y'_j = K y_i y_j * s_i s_j`` for sign changes
        ``s``).  The returned array is owned by the cache: treat it as
        read-only, as :class:`~repro.svm.smo.SMOSolver` does.
        """
        y = np.asarray(labels, dtype=np.float64).ravel()
        if y.shape[0] != self.num_samples:
            raise ValidationError(
                f"labels ({y.shape[0]}) must match cached rows ({self.num_samples})"
            )
        if self._q is None or self._q_labels is None:
            get_hub().count("solver.gram.q_misses")
            self._q = self.gram * np.outer(y, y)
            self._q_labels = y.copy()
            return self._q
        get_hub().count("solver.gram.q_hits")
        flipped = self._q_labels != y
        if flipped.any():
            self._q[flipped, :] *= -1.0
            self._q[:, flipped] *= -1.0
            self._q_labels[flipped] = y[flipped]
        return self._q

    def unlabeled_decision_values(
        self, alphas: np.ndarray, labels: np.ndarray, bias: float
    ) -> np.ndarray:
        """Decision values ``f(x)`` on the unlabeled pool, from cached rows.

        Computes ``K[unlabeled, :] @ (alphas * labels) + bias`` — one matvec
        on the cached cross-Gram block, no kernel evaluations.
        """
        coef = np.asarray(alphas, dtype=np.float64) * np.asarray(
            labels, dtype=np.float64
        )
        if coef.shape[0] != self.num_samples:
            raise ValidationError(
                f"alphas/labels ({coef.shape[0]}) must match cached rows ({self.num_samples})"
            )
        return self.gram[self.num_labeled :, :] @ coef + float(bias)
