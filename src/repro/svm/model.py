"""The trained-SVM value object."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.svm.kernels import Kernel

__all__ = ["SVMModel"]


@dataclass
class SVMModel:
    """A trained support-vector machine.

    The decision function is
    ``f(x) = sum_i alpha_i * y_i * k(sv_i, x) + bias``.

    Attributes
    ----------
    support_vectors:
        ``(S, D)`` matrix of support vectors (training rows with alpha > 0).
    dual_coef:
        ``(S,)`` vector of ``alpha_i * y_i`` for the support vectors.
    bias:
        The intercept ``b``.
    kernel:
        The (already fitted) kernel used during training.
    alphas:
        Full ``(N,)`` vector of Lagrange multipliers from training (optional,
        kept for diagnostics and tests).
    """

    support_vectors: np.ndarray
    dual_coef: np.ndarray
    bias: float
    kernel: Kernel
    alphas: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        self.support_vectors = np.atleast_2d(np.asarray(self.support_vectors, dtype=np.float64))
        self.dual_coef = np.asarray(self.dual_coef, dtype=np.float64).ravel()
        if self.support_vectors.shape[0] != self.dual_coef.shape[0]:
            raise ValidationError(
                "support_vectors and dual_coef must have the same number of rows "
                f"({self.support_vectors.shape[0]} vs {self.dual_coef.shape[0]})"
            )
        self.bias = float(self.bias)

    @property
    def num_support_vectors(self) -> int:
        """Number of support vectors retained by the model."""
        return int(self.support_vectors.shape[0])

    def decision_function(self, x: np.ndarray) -> np.ndarray:
        """Signed distance-like score ``f(x)`` for each row of *x*."""
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if self.num_support_vectors == 0:
            return np.full(x.shape[0], self.bias)
        gram = self.kernel(x, self.support_vectors)
        return gram @ self.dual_coef + self.bias

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Predicted ±1 labels (ties broken towards +1)."""
        return np.where(self.decision_function(x) >= 0.0, 1.0, -1.0)
