"""Support-vector-machine substrate (Section 3 of the paper).

The paper implements its coupled SVM by modifying LIBSVM; the only
modification the algorithm needs is *per-sample box constraints* so that
labelled samples are weighted by ``C`` while unlabeled (transductive) samples
are weighted by ``rho * C``.  This package provides a from-scratch SMO solver
with exactly that capability plus the usual kernel machinery, wrapped in a
scikit-learn-like :class:`SVC` estimator.
"""

from __future__ import annotations

from repro.svm.gram_cache import GramCache
from repro.svm.kernels import (
    Kernel,
    LinearKernel,
    PolynomialKernel,
    RBFKernel,
    build_kernel,
    make_kernel,
)
from repro.svm.model import SVMModel
from repro.svm.smo import SMOSolver, SMOResult
from repro.svm.svc import SVC

__all__ = [
    "Kernel",
    "LinearKernel",
    "RBFKernel",
    "PolynomialKernel",
    "make_kernel",
    "build_kernel",
    "GramCache",
    "SVMModel",
    "SMOSolver",
    "SMOResult",
    "SVC",
]
