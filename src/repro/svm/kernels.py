"""Mercer kernels for the SVM substrate.

All kernels operate on ``(N, D)`` row matrices and return an ``(N, M)`` Gram
matrix.  The RBF kernel supports the ``"scale"`` gamma convention
(``1 / (D * var(X))``) so default settings behave sensibly for the 36-d
visual features and for the high-dimensional, sparse log vectors alike.
"""

from __future__ import annotations

import abc
from typing import Optional, Union

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.arrays import pairwise_squared_distances

__all__ = [
    "Kernel",
    "LinearKernel",
    "RBFKernel",
    "PolynomialKernel",
    "make_kernel",
    "build_kernel",
]


class Kernel(abc.ABC):
    """Abstract Mercer kernel ``k(x, y)`` evaluated on row matrices."""

    #: Registry-friendly kernel name.
    name: str = "kernel"

    @abc.abstractmethod
    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Gram matrix between the rows of *a* and the rows of *b*."""

    def gram(self, x: np.ndarray) -> np.ndarray:
        """Symmetric Gram matrix of *x* with itself."""
        return self(x, x)

    def diagonal(self, x: np.ndarray) -> np.ndarray:
        """Diagonal ``k(x_i, x_i)`` computed in batched kernel calls.

        Rows are evaluated in blocks so the temporary Gram stays bounded at
        ``block^2`` entries regardless of ``N`` (one call for typical sizes).
        Subclasses with a closed-form diagonal (linear, RBF, polynomial)
        override this to avoid the quadratic block evaluation entirely.
        """
        matrix = np.atleast_2d(np.asarray(x, dtype=np.float64))
        count = matrix.shape[0]
        block = 512
        if count <= block:
            return np.diag(self(matrix, matrix)).copy()
        out = np.empty(count)
        for start in range(0, count, block):
            stop = min(start + block, count)
            out[start:stop] = np.diag(self(matrix[start:stop], matrix[start:stop]))
        return out

    def fit(self, x: np.ndarray) -> "Kernel":
        """Resolve data-dependent hyper-parameters (e.g. ``gamma='scale'``)."""
        return self


class LinearKernel(Kernel):
    """The linear kernel ``k(x, y) = x . y``."""

    name = "linear"

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.atleast_2d(np.asarray(a, dtype=np.float64))
        b = np.atleast_2d(np.asarray(b, dtype=np.float64))
        return a @ b.T

    def diagonal(self, x: np.ndarray) -> np.ndarray:
        matrix = np.atleast_2d(np.asarray(x, dtype=np.float64))
        return np.sum(matrix * matrix, axis=1)


class RBFKernel(Kernel):
    """The Gaussian RBF kernel ``k(x, y) = exp(-gamma |x - y|^2)``.

    Parameters
    ----------
    gamma:
        Positive float, or ``"scale"`` to use ``1 / (D * var(X))`` resolved at
        :meth:`fit` time (the scikit-learn convention), or ``"auto"`` for
        ``1 / D``.
    """

    name = "rbf"

    def __init__(self, gamma: Union[float, str] = "scale") -> None:
        if isinstance(gamma, str):
            if gamma not in ("scale", "auto"):
                raise ValidationError(f"gamma must be positive, 'scale' or 'auto', got {gamma!r}")
        elif gamma <= 0:
            raise ValidationError(f"gamma must be positive, got {gamma}")
        self.gamma = gamma
        self.gamma_: Optional[float] = gamma if isinstance(gamma, (int, float)) else None

    def fit(self, x: np.ndarray) -> "RBFKernel":
        matrix = np.atleast_2d(np.asarray(x, dtype=np.float64))
        if isinstance(self.gamma, str):
            num_features = matrix.shape[1]
            if self.gamma == "scale":
                variance = float(matrix.var())
                self.gamma_ = 1.0 / (num_features * variance) if variance > 1e-12 else 1.0 / num_features
            else:  # "auto"
                self.gamma_ = 1.0 / num_features
        return self

    def _resolved_gamma(self) -> float:
        if self.gamma_ is None:
            raise ValidationError(
                "RBFKernel with gamma='scale'/'auto' must be fitted before evaluation"
            )
        return float(self.gamma_)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        gamma = self._resolved_gamma()
        squared = pairwise_squared_distances(a, b)
        return np.exp(-gamma * squared)

    def diagonal(self, x: np.ndarray) -> np.ndarray:
        matrix = np.atleast_2d(np.asarray(x, dtype=np.float64))
        return np.ones(matrix.shape[0])


class PolynomialKernel(Kernel):
    """The polynomial kernel ``k(x, y) = (gamma x . y + coef0) ** degree``."""

    name = "poly"

    def __init__(self, degree: int = 3, gamma: float = 1.0, coef0: float = 1.0) -> None:
        if degree < 1:
            raise ValidationError(f"degree must be >= 1, got {degree}")
        if gamma <= 0:
            raise ValidationError(f"gamma must be positive, got {gamma}")
        self.degree = int(degree)
        self.gamma = float(gamma)
        self.coef0 = float(coef0)

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = np.atleast_2d(np.asarray(a, dtype=np.float64))
        b = np.atleast_2d(np.asarray(b, dtype=np.float64))
        return (self.gamma * (a @ b.T) + self.coef0) ** self.degree

    def diagonal(self, x: np.ndarray) -> np.ndarray:
        matrix = np.atleast_2d(np.asarray(x, dtype=np.float64))
        return (self.gamma * np.sum(matrix * matrix, axis=1) + self.coef0) ** self.degree


def make_kernel(kernel: Union[str, Kernel], **kwargs) -> Kernel:
    """Build a kernel from a name (``"linear"``, ``"rbf"``, ``"poly"``) or pass through."""
    if isinstance(kernel, Kernel):
        return kernel
    if kernel == "linear":
        return LinearKernel()
    if kernel == "rbf":
        return RBFKernel(**kwargs)
    if kernel == "poly":
        return PolynomialKernel(**kwargs)
    raise ValidationError(f"unknown kernel '{kernel}', expected linear/rbf/poly")


def build_kernel(
    kernel: Union[str, Kernel],
    *,
    gamma: Union[float, str] = "scale",
    degree: int = 3,
    coef0: float = 1.0,
) -> Kernel:
    """Build a kernel, forwarding only the hyper-parameters it accepts.

    Unlike :func:`make_kernel`, this helper routes ``gamma`` to both the RBF
    and polynomial kernels (the polynomial kernel only accepts numeric
    ``gamma``; the ``"scale"``/``"auto"`` conventions are RBF-specific and
    fall back to the polynomial default of 1.0) and routes ``degree``/``coef0``
    to the polynomial kernel.  Estimators should use this instead of
    :func:`make_kernel` so hyper-parameters are never silently dropped.
    """
    if isinstance(kernel, Kernel):
        return kernel
    if kernel == "rbf":
        return make_kernel("rbf", gamma=gamma)
    if kernel == "poly":
        poly_gamma = 1.0 if isinstance(gamma, str) else float(gamma)
        return make_kernel("poly", degree=degree, gamma=poly_gamma, coef0=coef0)
    return make_kernel(kernel)
