"""Sequential Minimal Optimization (SMO) solver for the SVM dual.

Solves

.. math::

    \\min_\\alpha \\; \\tfrac12 \\alpha^T Q \\alpha - e^T \\alpha
    \\quad \\text{s.t.} \\quad y^T \\alpha = 0, \\; 0 \\le \\alpha_i \\le C_i,

where ``Q_ij = y_i y_j k(x_i, x_j)``.  The per-sample upper bounds ``C_i``
are the single LIBSVM modification the coupled SVM needs: labelled samples
use ``C`` and transductive (unlabeled) samples use ``rho * C`` (Eq. 1–3 of
the paper).

The implementation follows the LIBSVM working-set-selection scheme
(maximal violating pair), the analytic two-variable update with clipping to
the per-sample box, incremental gradient maintenance and the standard
free-support-vector rule for recovering the bias.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import SolverError, ValidationError
from repro.utils.validation import check_array, check_consistent_length, check_labels

__all__ = ["SMOResult", "SMOSolver"]

#: Lower bound on the curvature of the two-variable sub-problem, mirroring
#: LIBSVM's TAU; keeps updates finite when the kernel is (numerically)
#: singular along the selected direction.
_TAU = 1e-12


@dataclass
class SMOResult:
    """Solution of the dual problem.

    Attributes
    ----------
    alphas:
        Optimal Lagrange multipliers, one per training sample.
    bias:
        Intercept ``b`` of the decision function.
    iterations:
        Number of SMO pair updates performed.
    converged:
        Whether the KKT stopping criterion was met before ``max_iter``.
    objective:
        Final value of the dual objective ``1/2 a'Qa - e'a`` (lower is better).
    """

    alphas: np.ndarray
    bias: float
    iterations: int
    converged: bool
    objective: float


class SMOSolver:
    """SMO solver with per-sample box constraints.

    Parameters
    ----------
    tolerance:
        KKT violation tolerance used as the stopping criterion.
    max_iter:
        Hard cap on the number of pair updates.
    """

    def __init__(self, *, tolerance: float = 1e-3, max_iter: int = 20000) -> None:
        if tolerance <= 0:
            raise ValidationError(f"tolerance must be positive, got {tolerance}")
        if max_iter < 1:
            raise ValidationError(f"max_iter must be >= 1, got {max_iter}")
        self.tolerance = float(tolerance)
        self.max_iter = int(max_iter)

    # ------------------------------------------------------------------ API
    def solve(
        self,
        gram: np.ndarray,
        labels: np.ndarray,
        upper_bounds: np.ndarray,
    ) -> SMOResult:
        """Solve the dual given a precomputed Gram matrix.

        Parameters
        ----------
        gram:
            ``(N, N)`` kernel matrix ``k(x_i, x_j)``.
        labels:
            ``(N,)`` vector of ±1 labels.
        upper_bounds:
            ``(N,)`` vector of per-sample upper bounds ``C_i`` (all positive).
        """
        kernel_matrix = check_array(gram, name="gram", ndim=2)
        y = check_labels(labels)
        c = np.asarray(upper_bounds, dtype=np.float64).ravel()
        check_consistent_length(kernel_matrix, y, c, names=("gram", "labels", "upper_bounds"))
        if kernel_matrix.shape[0] != kernel_matrix.shape[1]:
            raise ValidationError(
                f"gram must be square, got shape {kernel_matrix.shape}"
            )
        if np.any(c <= 0):
            raise ValidationError("all upper bounds must be strictly positive")
        if np.unique(y).size < 2:
            raise SolverError(
                "SMO requires at least one sample of each class (+1 and -1)"
            )

        n = y.shape[0]
        q_matrix = kernel_matrix * np.outer(y, y)
        q_diag = np.diag(q_matrix).copy()

        alphas = np.zeros(n)
        gradient = -np.ones(n)  # gradient of 1/2 a'Qa - e'a at alpha = 0

        iterations = 0
        converged = False
        while iterations < self.max_iter:
            selection = self._select_working_set(y, alphas, c, gradient)
            if selection is None:
                converged = True
                break
            i, j = selection
            self._update_pair(i, j, y, alphas, c, gradient, q_matrix, q_diag)
            iterations += 1

        bias = self._compute_bias(y, alphas, c, gradient)
        objective = float(0.5 * alphas @ q_matrix @ alphas - alphas.sum())
        return SMOResult(
            alphas=alphas,
            bias=bias,
            iterations=iterations,
            converged=converged,
            objective=objective,
        )

    # --------------------------------------------------------------- details
    def _select_working_set(
        self,
        y: np.ndarray,
        alphas: np.ndarray,
        c: np.ndarray,
        gradient: np.ndarray,
    ) -> Optional[Tuple[int, int]]:
        """Maximal-violating-pair selection; ``None`` signals convergence."""
        minus_y_grad = -y * gradient

        in_up = ((y > 0) & (alphas < c - 1e-12)) | ((y < 0) & (alphas > 1e-12))
        in_low = ((y > 0) & (alphas > 1e-12)) | ((y < 0) & (alphas < c - 1e-12))

        if not in_up.any() or not in_low.any():
            return None

        up_scores = np.where(in_up, minus_y_grad, -np.inf)
        low_scores = np.where(in_low, minus_y_grad, np.inf)
        i = int(np.argmax(up_scores))
        j = int(np.argmin(low_scores))

        if up_scores[i] - low_scores[j] < self.tolerance:
            return None
        return i, j

    @staticmethod
    def _update_pair(
        i: int,
        j: int,
        y: np.ndarray,
        alphas: np.ndarray,
        c: np.ndarray,
        gradient: np.ndarray,
        q_matrix: np.ndarray,
        q_diag: np.ndarray,
    ) -> None:
        """Analytic two-variable update with clipping to the per-sample box."""
        old_alpha_i = alphas[i]
        old_alpha_j = alphas[j]
        c_i, c_j = c[i], c[j]

        if y[i] != y[j]:
            quad = q_diag[i] + q_diag[j] + 2.0 * q_matrix[i, j]
            quad = max(quad, _TAU)
            delta = (-gradient[i] - gradient[j]) / quad
            diff = alphas[i] - alphas[j]
            alphas[i] += delta
            alphas[j] += delta
            if diff > 0:
                if alphas[j] < 0:
                    alphas[j] = 0.0
                    alphas[i] = diff
            else:
                if alphas[i] < 0:
                    alphas[i] = 0.0
                    alphas[j] = -diff
            if diff > c_i - c_j:
                if alphas[i] > c_i:
                    alphas[i] = c_i
                    alphas[j] = c_i - diff
            else:
                if alphas[j] > c_j:
                    alphas[j] = c_j
                    alphas[i] = c_j + diff
        else:
            quad = q_diag[i] + q_diag[j] - 2.0 * q_matrix[i, j]
            quad = max(quad, _TAU)
            delta = (gradient[i] - gradient[j]) / quad
            total = alphas[i] + alphas[j]
            alphas[i] -= delta
            alphas[j] += delta
            if total > c_i:
                if alphas[i] > c_i:
                    alphas[i] = c_i
                    alphas[j] = total - c_i
            else:
                if alphas[j] < 0:
                    alphas[j] = 0.0
                    alphas[i] = total
            if total > c_j:
                if alphas[j] > c_j:
                    alphas[j] = c_j
                    alphas[i] = total - c_j
            else:
                if alphas[i] < 0:
                    alphas[i] = 0.0
                    alphas[j] = total

        delta_i = alphas[i] - old_alpha_i
        delta_j = alphas[j] - old_alpha_j
        gradient += q_matrix[:, i] * delta_i + q_matrix[:, j] * delta_j

    @staticmethod
    def _compute_bias(
        y: np.ndarray,
        alphas: np.ndarray,
        c: np.ndarray,
        gradient: np.ndarray,
    ) -> float:
        """Recover the intercept from the KKT conditions.

        Free support vectors (``0 < alpha_i < C_i``) satisfy
        ``y_i f(x_i) = 1``, so ``b = y_i - sum_j alpha_j y_j k(x_j, x_i)``,
        which equals ``-y_i * gradient_i`` given how the gradient is defined.
        When no free support vector exists the midpoint of the feasible
        interval is used, mirroring LIBSVM.
        """
        y_grad = y * gradient
        free = (alphas > 1e-12) & (alphas < c - 1e-12)
        if free.any():
            return float(-y_grad[free].mean())

        upper = np.inf
        lower = -np.inf
        at_upper = alphas >= c - 1e-12
        at_lower = alphas <= 1e-12
        # KKT conditions at the bounds constrain the bias from above
        # (alpha = C with y = +1, or alpha = 0 with y = -1) and from below
        # (alpha = 0 with y = +1, or alpha = C with y = -1).
        upper_candidates = np.concatenate(
            [-y_grad[at_upper & (y > 0)], -y_grad[at_lower & (y < 0)]]
        )
        lower_candidates = np.concatenate(
            [-y_grad[at_lower & (y > 0)], -y_grad[at_upper & (y < 0)]]
        )
        if upper_candidates.size:
            upper = float(upper_candidates.min())
        if lower_candidates.size:
            lower = float(lower_candidates.max())
        if np.isfinite(upper) and np.isfinite(lower):
            return 0.5 * (upper + lower)
        if np.isfinite(upper):
            return upper
        if np.isfinite(lower):
            return lower
        return 0.0
