"""Sequential Minimal Optimization (SMO) solver for the SVM dual.

Solves

.. math::

    \\min_\\alpha \\; \\tfrac12 \\alpha^T Q \\alpha - e^T \\alpha
    \\quad \\text{s.t.} \\quad y^T \\alpha = 0, \\; 0 \\le \\alpha_i \\le C_i,

where ``Q_ij = y_i y_j k(x_i, x_j)``.  The per-sample upper bounds ``C_i``
are the single LIBSVM modification the coupled SVM needs: labelled samples
use ``C`` and transductive (unlabeled) samples use ``rho * C`` (Eq. 1–3 of
the paper).

The implementation follows LIBSVM:

* **second-order working-set selection (WSS2)** — ``i`` is the maximal
  violator in the "up" set; ``j`` maximises the guaranteed objective
  decrease ``b_ij^2 / a_ij`` among the "low" candidates — which typically
  needs far fewer pair updates than the classic maximal-violating-pair rule
  (~1.4–1.8× fewer in aggregate on this repo's workloads).  On degenerate
  duals — rank-deficient Gram with large ``C`` — any pair-update scheme can
  zigzag towards the ``max_iter`` cap; :class:`repro.svm.svc.SVC` raises a
  ``RuntimeWarning`` when a fit ends unconverged;
* the analytic two-variable update with clipping to the per-sample box,
  incremental gradient maintenance, and the free-support-vector rule for
  recovering the bias;
* **warm starts** — :meth:`SMOSolver.solve` accepts ``initial_alphas`` from a
  previous (similar) problem; the starting point is projected back onto the
  feasible set (box + equality constraint) and the initial gradient is
  recovered in a single matmul ``Q alpha - e`` instead of assuming
  ``alpha = 0``.  This is the workhorse of the coupled SVM's Alternating
  Optimization, where consecutive solves differ only by a few flipped
  pseudo-labels and a doubled ``rho*``;
* an optional **shrinking heuristic** — samples pinned at a bound that
  clearly satisfy their KKT condition are removed from the working set, and
  the gradient is only maintained on the active set; the full gradient is
  reconstructed and the stopping criterion re-checked over *all* samples
  before convergence is declared, so shrinking never changes the solution.

``solve`` also accepts a precomputed ``q_matrix`` (``K * y y^T``) so callers
that cache Gram matrices across solves (see
:class:`repro.svm.gram_cache.GramCache`) can skip the ``O(N^2)`` rebuild.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.exceptions import SolverError, ValidationError
from repro.obs import get_hub
from repro.utils.validation import check_array, check_consistent_length, check_labels

__all__ = ["SMOResult", "SMOSolver"]

#: Lower bound on the curvature of the two-variable sub-problem, mirroring
#: LIBSVM's TAU; keeps updates finite when the kernel is (numerically)
#: singular along the selected direction.
_TAU = 1e-12

#: Slack used when classifying multipliers as "at a bound".
_BOUND_EPS = 1e-12


@dataclass
class SMOResult:
    """Solution of the dual problem.

    Attributes
    ----------
    alphas:
        Optimal Lagrange multipliers, one per training sample.
    bias:
        Intercept ``b`` of the decision function.
    iterations:
        Number of SMO pair updates performed.
    converged:
        Whether the KKT stopping criterion was met before ``max_iter``.
    objective:
        Final value of the dual objective ``1/2 a'Qa - e'a`` (lower is better).
    gradient:
        Final gradient ``Q alpha - e`` of the dual objective; callers can
        reuse it for diagnostics or to warm-start a subsequent solve.
    """

    alphas: np.ndarray
    bias: float
    iterations: int
    converged: bool
    objective: float
    gradient: Optional[np.ndarray] = None


class SMOSolver:
    """SMO solver with per-sample box constraints.

    Parameters
    ----------
    tolerance:
        KKT violation tolerance used as the stopping criterion.
    max_iter:
        Hard cap on the number of pair updates.
    shrinking:
        Enable the LIBSVM-style shrinking heuristic.  Bound samples whose
        KKT condition is satisfied with margin are dropped from the working
        set between periodic checks; the solution is unaffected because the
        full gradient is reconstructed and the stopping criterion re-checked
        on all samples before convergence is declared.
    """

    def __init__(
        self,
        *,
        tolerance: float = 1e-3,
        max_iter: int = 20000,
        shrinking: bool = False,
    ) -> None:
        if tolerance <= 0:
            raise ValidationError(f"tolerance must be positive, got {tolerance}")
        if max_iter < 1:
            raise ValidationError(f"max_iter must be >= 1, got {max_iter}")
        self.tolerance = float(tolerance)
        self.max_iter = int(max_iter)
        self.shrinking = bool(shrinking)

    # ------------------------------------------------------------------ API
    def solve(
        self,
        gram: Optional[np.ndarray],
        labels: np.ndarray,
        upper_bounds: np.ndarray,
        *,
        initial_alphas: Optional[np.ndarray] = None,
        q_matrix: Optional[np.ndarray] = None,
    ) -> SMOResult:
        """Solve the dual given a precomputed Gram matrix.

        Parameters
        ----------
        gram:
            ``(N, N)`` kernel matrix ``k(x_i, x_j)``.  May be ``None`` when
            ``q_matrix`` is supplied.
        labels:
            ``(N,)`` vector of ±1 labels.
        upper_bounds:
            ``(N,)`` vector of per-sample upper bounds ``C_i`` (all positive).
        initial_alphas:
            Optional warm-start point from a previous solve.  It is clipped
            to the box ``[0, C_i]`` and projected back onto the equality
            constraint ``y' alpha = 0``; the initial gradient is computed as
            ``Q alpha - e`` in one matmul.
        q_matrix:
            Optional precomputed ``K * y y^T`` matching *labels*.  The solver
            only reads from it (never writes), so callers may hand out a
            cached matrix.  When omitted it is built from *gram*.
        """
        hub = get_hub()
        if not hub.enabled:
            return self._solve(
                gram, labels, upper_bounds, initial_alphas=initial_alphas, q_matrix=q_matrix
            )
        with hub.span(
            "solver.smo.solve",
            samples=int(np.asarray(labels).size),
            warm_start=initial_alphas is not None,
        ) as span:
            result = self._solve(
                gram, labels, upper_bounds, initial_alphas=initial_alphas, q_matrix=q_matrix
            )
            span.set(
                iterations=result.iterations,
                converged=result.converged,
                objective=result.objective,
            )
        hub.count("solver.smo.solves")
        hub.count("solver.smo.iterations", result.iterations)
        if not result.converged:
            hub.count("solver.smo.unconverged")
        hub.observe("solver.smo.solve_seconds", span.duration)
        return result

    def _solve(
        self,
        gram: Optional[np.ndarray],
        labels: np.ndarray,
        upper_bounds: np.ndarray,
        *,
        initial_alphas: Optional[np.ndarray] = None,
        q_matrix: Optional[np.ndarray] = None,
    ) -> SMOResult:
        """The uninstrumented solve (see :meth:`solve` for the contract)."""
        y = check_labels(labels)
        c = np.asarray(upper_bounds, dtype=np.float64).ravel()
        if q_matrix is not None:
            q = np.asarray(q_matrix, dtype=np.float64)
            if q.ndim != 2 or q.shape[0] != q.shape[1]:
                raise ValidationError(f"q_matrix must be square, got shape {q.shape}")
            check_consistent_length(q, y, c, names=("q_matrix", "labels", "upper_bounds"))
        else:
            kernel_matrix = check_array(gram, name="gram", ndim=2)
            check_consistent_length(
                kernel_matrix, y, c, names=("gram", "labels", "upper_bounds")
            )
            if kernel_matrix.shape[0] != kernel_matrix.shape[1]:
                raise ValidationError(
                    f"gram must be square, got shape {kernel_matrix.shape}"
                )
            q = kernel_matrix * np.outer(y, y)
        if np.any(c <= 0):
            raise ValidationError("all upper bounds must be strictly positive")
        if np.unique(y).size < 2:
            raise SolverError(
                "SMO requires at least one sample of each class (+1 and -1)"
            )

        n = y.shape[0]
        q_diag = np.diag(q).copy()

        if initial_alphas is None:
            alphas = np.zeros(n)
            gradient = -np.ones(n)  # gradient of 1/2 a'Qa - e'a at alpha = 0
        else:
            start = np.asarray(initial_alphas, dtype=np.float64).ravel()
            if start.shape[0] != n:
                raise ValidationError(
                    f"initial_alphas ({start.shape[0]}) must align with labels ({n})"
                )
            alphas = self._project_feasible(start, y, c)
            gradient = q @ alphas - 1.0

        active = np.ones(n, dtype=bool)
        shrink_interval = min(1000, max(n, 32))
        next_shrink = shrink_interval

        iterations = 0
        converged = False
        while iterations < self.max_iter:
            selection = self._select_working_set(y, alphas, c, gradient, q, q_diag, active)
            if selection is None:
                if active.all():
                    converged = True
                    break
                # The shrunk problem is solved: reconstruct the full gradient
                # and re-check optimality over every sample before stopping.
                gradient = q @ alphas - 1.0
                active[:] = True
                selection = self._select_working_set(
                    y, alphas, c, gradient, q, q_diag, active
                )
                if selection is None:
                    converged = True
                    break
            i, j = selection
            self._update_pair(i, j, y, alphas, c, gradient, q, q_diag, active)
            iterations += 1
            if self.shrinking and iterations >= next_shrink:
                self._shrink(y, alphas, c, gradient, active)
                next_shrink += shrink_interval

        if not active.all():
            # max_iter hit while shrunk: the inactive gradient entries are
            # stale, so rebuild before recovering the bias and objective.
            gradient = q @ alphas - 1.0

        bias = self._compute_bias(y, alphas, c, gradient)
        # With gradient = Q a - e the objective is 1/2 a'(gradient - e),
        # avoiding a second O(N^2) matmul.
        objective = float(0.5 * (alphas @ gradient - alphas.sum()))
        return SMOResult(
            alphas=alphas,
            bias=bias,
            iterations=iterations,
            converged=converged,
            objective=objective,
            gradient=gradient,
        )

    # --------------------------------------------------------------- details
    @staticmethod
    def _candidate_sets(
        y: np.ndarray, alphas: np.ndarray, c: np.ndarray, active: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """The "up"/"low" candidate sets of the KKT violation certificate."""
        in_up = active & (
            ((y > 0) & (alphas < c - _BOUND_EPS)) | ((y < 0) & (alphas > _BOUND_EPS))
        )
        in_low = active & (
            ((y > 0) & (alphas > _BOUND_EPS)) | ((y < 0) & (alphas < c - _BOUND_EPS))
        )
        return in_up, in_low

    @staticmethod
    def _project_feasible(alphas: np.ndarray, y: np.ndarray, c: np.ndarray) -> np.ndarray:
        """Project a warm-start point onto ``{0 <= a <= C, y'a = 0}``.

        Clips to the box, then removes the equality residual by spreading it
        over the samples that still have room to move in the required
        direction (proportionally to that room).  Falls back to a cold start
        in the degenerate case where the residual exceeds the available room.
        """
        projected = np.clip(alphas, 0.0, c)
        residual = float(y @ projected)
        if abs(residual) <= 1e-12:
            return projected
        # Moving alpha_i by delta changes y'a by y_i * delta, so the useful
        # direction for sample i is sign(-residual * y_i).
        move_up = (y * residual) < 0
        room = np.where(move_up, c - projected, projected)
        total_room = float(room.sum())
        if total_room < abs(residual):
            return np.zeros_like(projected)
        scale = abs(residual) / total_room
        projected += np.where(move_up, room * scale, -room * scale)
        return np.clip(projected, 0.0, c)

    def _select_working_set(
        self,
        y: np.ndarray,
        alphas: np.ndarray,
        c: np.ndarray,
        gradient: np.ndarray,
        q_matrix: np.ndarray,
        q_diag: np.ndarray,
        active: np.ndarray,
    ) -> Optional[Tuple[int, int]]:
        """LIBSVM WSS2 selection on the active set; ``None`` signals optimality.

        ``i`` is the maximal violator among the "up" candidates; ``j``
        maximises the guaranteed decrease ``b^2 / a`` of the two-variable
        sub-problem among the "low" candidates, where ``b = G_max + y_t g_t``
        and ``a = Q_ii + Q_tt - 2 y_i y_t Q_it``.
        """
        minus_y_grad = -y * gradient

        in_up, in_low = self._candidate_sets(y, alphas, c, active)
        if not in_up.any() or not in_low.any():
            return None

        up_scores = np.where(in_up, minus_y_grad, -np.inf)
        i = int(np.argmax(up_scores))
        g_max = up_scores[i]
        low_scores = np.where(in_low, minus_y_grad, np.inf)
        g_min = float(low_scores.min())

        if g_max - g_min < self.tolerance:
            return None

        decrease = g_max - minus_y_grad  # "b" of the sub-problem, > 0 for candidates
        curvature = q_diag[i] + q_diag - 2.0 * y[i] * (y * q_matrix[i])
        curvature = np.where(curvature > _TAU, curvature, _TAU)
        gains = np.where(
            in_low & (minus_y_grad < g_max),
            (decrease * decrease) / curvature,
            -np.inf,
        )
        j = int(np.argmax(gains))
        return i, j

    def _shrink(
        self,
        y: np.ndarray,
        alphas: np.ndarray,
        c: np.ndarray,
        gradient: np.ndarray,
        active: np.ndarray,
    ) -> None:
        """Deactivate bound samples whose KKT condition holds with margin.

        A sample pinned at a bound belongs to only one of the up/low sets; it
        cannot participate in a violating pair when its score is more than
        ``tolerance`` inside the current ``[G_min, G_max]`` certificate, so it
        is dropped from the working set.  Convergence is still verified on
        the full set (see :meth:`solve`), keeping the heuristic exact.
        """
        minus_y_grad = -y * gradient
        in_up, in_low = self._candidate_sets(y, alphas, c, active)
        if not in_up.any() or not in_low.any():
            return
        g_max = float(minus_y_grad[in_up].max())
        g_min = float(minus_y_grad[in_low].min())
        shrinkable = (in_up & ~in_low & (minus_y_grad < g_min + self.tolerance)) | (
            in_low & ~in_up & (minus_y_grad > g_max - self.tolerance)
        )
        active &= ~shrinkable

    @staticmethod
    def _update_pair(
        i: int,
        j: int,
        y: np.ndarray,
        alphas: np.ndarray,
        c: np.ndarray,
        gradient: np.ndarray,
        q_matrix: np.ndarray,
        q_diag: np.ndarray,
        active: np.ndarray,
    ) -> None:
        """Analytic two-variable update with clipping to the per-sample box."""
        old_alpha_i = alphas[i]
        old_alpha_j = alphas[j]
        c_i, c_j = c[i], c[j]

        if y[i] != y[j]:
            quad = q_diag[i] + q_diag[j] + 2.0 * q_matrix[i, j]
            quad = max(quad, _TAU)
            delta = (-gradient[i] - gradient[j]) / quad
            diff = alphas[i] - alphas[j]
            alphas[i] += delta
            alphas[j] += delta
            if diff > 0:
                if alphas[j] < 0:
                    alphas[j] = 0.0
                    alphas[i] = diff
            else:
                if alphas[i] < 0:
                    alphas[i] = 0.0
                    alphas[j] = -diff
            if diff > c_i - c_j:
                if alphas[i] > c_i:
                    alphas[i] = c_i
                    alphas[j] = c_i - diff
            else:
                if alphas[j] > c_j:
                    alphas[j] = c_j
                    alphas[i] = c_j + diff
        else:
            quad = q_diag[i] + q_diag[j] - 2.0 * q_matrix[i, j]
            quad = max(quad, _TAU)
            delta = (gradient[i] - gradient[j]) / quad
            total = alphas[i] + alphas[j]
            alphas[i] -= delta
            alphas[j] += delta
            if total > c_i:
                if alphas[i] > c_i:
                    alphas[i] = c_i
                    alphas[j] = total - c_i
            else:
                if alphas[j] < 0:
                    alphas[j] = 0.0
                    alphas[i] = total
            if total > c_j:
                if alphas[j] > c_j:
                    alphas[j] = c_j
                    alphas[i] = total - c_j
            else:
                if alphas[i] < 0:
                    alphas[i] = 0.0
                    alphas[j] = total
        delta_i = alphas[i] - old_alpha_i
        delta_j = alphas[j] - old_alpha_j
        if active.all():
            gradient += q_matrix[i] * delta_i + q_matrix[j] * delta_j
        else:
            # Only the active entries are kept fresh while shrunk; the rest
            # are reconstructed in one matmul before convergence is declared.
            gradient[active] += (
                q_matrix[i, active] * delta_i + q_matrix[j, active] * delta_j
            )

    @staticmethod
    def _compute_bias(
        y: np.ndarray,
        alphas: np.ndarray,
        c: np.ndarray,
        gradient: np.ndarray,
    ) -> float:
        """Recover the intercept from the KKT conditions.

        Free support vectors (``0 < alpha_i < C_i``) satisfy
        ``y_i f(x_i) = 1``, so ``b = y_i - sum_j alpha_j y_j k(x_j, x_i)``,
        which equals ``-y_i * gradient_i`` given how the gradient is defined.
        When no free support vector exists the midpoint of the feasible
        interval is used, mirroring LIBSVM.
        """
        y_grad = y * gradient
        free = (alphas > 1e-12) & (alphas < c - 1e-12)
        if free.any():
            return float(-y_grad[free].mean())

        upper = np.inf
        lower = -np.inf
        at_upper = alphas >= c - 1e-12
        at_lower = alphas <= 1e-12
        # KKT conditions at the bounds constrain the bias from above
        # (alpha = C with y = +1, or alpha = 0 with y = -1) and from below
        # (alpha = 0 with y = +1, or alpha = C with y = -1).
        upper_candidates = np.concatenate(
            [-y_grad[at_upper & (y > 0)], -y_grad[at_lower & (y < 0)]]
        )
        lower_candidates = np.concatenate(
            [-y_grad[at_lower & (y > 0)], -y_grad[at_upper & (y < 0)]]
        )
        if upper_candidates.size:
            upper = float(upper_candidates.min())
        if lower_candidates.size:
            lower = float(lower_candidates.max())
        if np.isfinite(upper) and np.isfinite(lower):
            return 0.5 * (upper + lower)
        if np.isfinite(upper):
            return upper
        if np.isfinite(lower):
            return lower
        return 0.0
