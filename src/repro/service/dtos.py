"""Typed request/response DTOs of the retrieval service.

The service speaks value objects, not engine internals: a client opens a
session with a :class:`SearchRequest`, drives rounds with
:class:`FeedbackRequest`\\ s, reads rankings from
:class:`RankingResponse`\\ s and inspects lifecycle state through
:class:`SessionView`\\ s.  All four are frozen dataclasses that validate on
construction, so malformed traffic is rejected at the API boundary instead
of deep inside a solver — and being immutable, they are safe to share
across serving threads without any locking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Union

import numpy as np

from repro.cbir.query import Query, RetrievalResult
from repro.exceptions import ValidationError
from repro.feedback.base import RelevanceFeedbackAlgorithm

__all__ = [
    "SearchRequest",
    "FeedbackRequest",
    "RankingResponse",
    "SessionView",
]


def _clean_judgements(judgements: Mapping[int, int]) -> Dict[int, int]:
    """Validate a ±1 judgement mapping, preserving its insertion order.

    Order is semantic: judgements arrive in ranking order and the SVM stages
    consume the labelled set in exactly that order, so two sessions fed the
    same judgements in the same order reproduce each other bit-for-bit.
    """
    cleaned = {int(k): int(v) for k, v in dict(judgements).items()}
    if not cleaned:
        raise ValidationError("a feedback round needs at least one judgement")
    if any(v not in (-1, 1) for v in cleaned.values()):
        raise ValidationError("judgements must be +1 or -1")
    if any(k < 0 for k in cleaned):
        raise ValidationError("judged image indices must be non-negative")
    return cleaned


@dataclass(frozen=True)
class SearchRequest:
    """Open a retrieval session and run the first-round search.

    Attributes
    ----------
    query:
        Database image index, :class:`~repro.cbir.query.Query`, or an
        external feature vector.
    top_k:
        Size of the initial ranking (``None`` returns the full ranking).
    algorithm:
        Feedback scheme for this session's rounds: a registry name
        (serializable sessions) or an already-built strategy instance
        (shared-instance sessions; these cannot be persisted to disk).
        ``None`` uses the service default.
    algorithm_params:
        Constructor parameters for a *named* algorithm.
    session_id:
        Optional client-chosen id (letters, digits, ``. _ -``); the service
        assigns one when omitted.
    """

    query: Union[int, np.integer, np.ndarray, Query]
    top_k: Optional[int] = 20
    algorithm: Union[None, str, RelevanceFeedbackAlgorithm] = None
    algorithm_params: Mapping[str, Any] = field(default_factory=dict)
    session_id: Optional[str] = None

    def __post_init__(self) -> None:
        query = self.query
        if isinstance(query, (int, np.integer)):
            query = Query(query_index=int(query))
        elif isinstance(query, np.ndarray):
            query = Query(feature_vector=query)
        elif not isinstance(query, Query):
            raise ValidationError(
                "query must be a database index, a feature vector, or a Query, "
                f"got {type(self.query).__name__}"
            )
        object.__setattr__(self, "query", query)
        if self.top_k is not None and int(self.top_k) < 1:
            raise ValidationError(f"top_k must be >= 1, got {self.top_k}")
        if self.algorithm_params and not isinstance(self.algorithm, str):
            raise ValidationError(
                "algorithm_params only apply to a registry-named algorithm"
            )
        if self.session_id is not None and not _is_safe_id(self.session_id):
            raise ValidationError(
                "session_id must match [A-Za-z0-9._-]+ , got "
                f"{self.session_id!r}"
            )
        object.__setattr__(self, "algorithm_params", dict(self.algorithm_params))


@dataclass(frozen=True)
class FeedbackRequest:
    """Submit one round of relevance judgements to an open session.

    Attributes
    ----------
    session_id:
        The session the round belongs to.
    judgements:
        Image index → ±1 mapping; insertion order is preserved and matters
        (see :func:`_clean_judgements`).  Judgements accumulate across the
        session's rounds.
    top_k:
        Size of the refined ranking; ``None`` returns the full ranking
        (matching :meth:`RelevanceFeedbackAlgorithm.rank`).
    """

    session_id: str
    judgements: Mapping[int, int]
    top_k: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.session_id:
            raise ValidationError("session_id must not be empty")
        object.__setattr__(self, "judgements", _clean_judgements(self.judgements))
        if self.top_k is not None and int(self.top_k) < 1:
            raise ValidationError(f"top_k must be >= 1, got {self.top_k}")


@dataclass(frozen=True)
class RankingResponse:
    """One ranking produced by the service for one session.

    Attributes
    ----------
    session_id:
        The session the ranking belongs to.
    round_index:
        0 for the initial (pre-feedback) retrieval, then 1, 2, ... for the
        refined rankings of each feedback round.
    result:
        The ranked images, scores, query and algorithm label.
    solver_stats:
        Per-round solve cost published by the strategy (scoring ``path``,
        ``solver_iterations``, ``label_flips``, ``gram_builds``,
        ``kernel_evaluations``); ``None`` for round 0 and for strategies
        that publish nothing.
    """

    session_id: str
    round_index: int
    result: RetrievalResult
    solver_stats: Optional[Mapping[str, Any]] = None

    @property
    def image_indices(self) -> np.ndarray:
        """Ranked database indices (most relevant first)."""
        return self.result.image_indices

    @property
    def scores(self) -> np.ndarray:
        """Scores aligned with :attr:`image_indices`."""
        return self.result.scores


@dataclass(frozen=True)
class SessionView:
    """Read-only snapshot of one session's lifecycle state.

    Attributes
    ----------
    session_id, query, algorithm:
        Identity of the session and the scheme serving it.
    rounds_completed:
        Number of feedback rounds scored so far (0 right after opening).
    judgements:
        Accumulated judgements, in arrival order.
    created_at, last_active:
        Service-clock timestamps (TTL eviction measures idleness from
        ``last_active``).
    closed:
        Whether the session has been closed (its rounds flushed to the log).
    solver_stats:
        Last round's solve cost, as in
        :attr:`RankingResponse.solver_stats` (``None`` before the first
        scored round or when the strategy publishes nothing).
    """

    session_id: str
    query: Query
    algorithm: str
    rounds_completed: int
    judgements: Mapping[int, int]
    created_at: float
    last_active: float
    closed: bool = False
    solver_stats: Optional[Mapping[str, Any]] = None


def _is_safe_id(session_id: str) -> bool:
    return bool(session_id) and all(
        ch.isalnum() or ch in "._-" for ch in session_id
    )
