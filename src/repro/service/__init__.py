"""repro.service — the session-oriented retrieval-service API.

The multi-user interaction surface of the system (and the replacement for
driving :class:`~repro.cbir.engine.CBIREngine` objects directly):

* :class:`RetrievalService` — the facade: ``open_session`` →
  ``submit_feedback``\\ * → ``close_session`` over one shared database.
* :class:`SearchRequest` / :class:`FeedbackRequest` /
  :class:`RankingResponse` / :class:`SessionView` — the typed DTOs.
* :class:`SessionState` — the explicit, serializable per-session state the
  stateless feedback strategies operate on.
* :class:`SessionStore` (+ :class:`InMemorySessionStore`,
  :class:`FileSessionStore`) — thread-safe session persistence with
  lock-aware TTL eviction and atomic on-disk writes.
* :class:`MicroBatchScheduler` — batches first-round searches through
  :meth:`VectorIndex.batch_search` and session closes into log appends.
* :class:`ParallelScheduler` — the same batching plus a thread pool that
  fans independent per-session work across workers (true parallel serving
  with bit-identical results).

Every public entry point of the service is thread-safe; see
:mod:`repro.service.service` for the lock discipline.
"""

from __future__ import annotations

from repro.service.dtos import (
    FeedbackRequest,
    RankingResponse,
    SearchRequest,
    SessionView,
)
from repro.service.scheduler import MicroBatchScheduler, ParallelScheduler
from repro.service.service import LOG_POLICIES, SCHEDULERS, RetrievalService
from repro.service.state import SessionState
from repro.service.store import FileSessionStore, InMemorySessionStore, SessionStore

__all__ = [
    "RetrievalService",
    "LOG_POLICIES",
    "SCHEDULERS",
    "SearchRequest",
    "FeedbackRequest",
    "RankingResponse",
    "SessionView",
    "SessionState",
    "SessionStore",
    "InMemorySessionStore",
    "FileSessionStore",
    "MicroBatchScheduler",
    "ParallelScheduler",
]
