"""repro.service — the session-oriented retrieval-service API.

The multi-user interaction surface of the system (and the replacement for
driving :class:`~repro.cbir.engine.CBIREngine` objects directly):

* :class:`RetrievalService` — the facade: ``open_session`` →
  ``submit_feedback``\\ * → ``close_session`` over one shared database.
* :class:`SearchRequest` / :class:`FeedbackRequest` /
  :class:`RankingResponse` / :class:`SessionView` — the typed DTOs.
* :class:`SessionState` — the explicit, serializable per-session state the
  stateless feedback strategies operate on.
* :class:`SessionStore` (+ :class:`InMemorySessionStore`,
  :class:`FileSessionStore`) — session persistence with TTL eviction.
* :class:`MicroBatchScheduler` — batches first-round searches through
  :meth:`VectorIndex.batch_search` and session closes into log appends.
"""

from __future__ import annotations

from repro.service.dtos import (
    FeedbackRequest,
    RankingResponse,
    SearchRequest,
    SessionView,
)
from repro.service.scheduler import MicroBatchScheduler
from repro.service.service import LOG_POLICIES, RetrievalService
from repro.service.state import SessionState
from repro.service.store import FileSessionStore, InMemorySessionStore, SessionStore

__all__ = [
    "RetrievalService",
    "LOG_POLICIES",
    "SearchRequest",
    "FeedbackRequest",
    "RankingResponse",
    "SessionView",
    "SessionState",
    "SessionStore",
    "InMemorySessionStore",
    "FileSessionStore",
    "MicroBatchScheduler",
]
