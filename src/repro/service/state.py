"""The explicit, serializable per-session state of the retrieval service.

This is the other half of the strategy/state split: feedback algorithms are
stateless, and everything a session accumulates — judgements across rounds,
the per-round record that becomes :class:`~repro.logdb.session.LogSession`
appends at close, the last ranking, and the
:class:`~repro.feedback.base.FeedbackMemory` of warm-start α vectors — lives
here, in a value object any :class:`~repro.service.store.SessionStore` can
round-trip.  Serialization is split into a JSON-safe document plus a bundle
of numpy arrays (saved losslessly), so a reloaded session continues
bit-identically to an uninterrupted one.

A :class:`SessionState` is a plain mutable value object and is **not**
internally synchronised: exactly one thread may mutate a given state at a
time.  The :class:`~repro.service.service.RetrievalService` guarantees this
by holding the session's striped lock for the whole of every round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.cbir.query import Query, RetrievalResult
from repro.exceptions import SessionError, ValidationError
from repro.feedback.base import FeedbackMemory, RelevanceFeedbackAlgorithm
from repro.service.dtos import SessionView, _clean_judgements

__all__ = ["SessionState"]

#: Version tag written into every serialised session document.
_STATE_VERSION = 1


@dataclass
class SessionState:
    """Everything one retrieval session owns.

    Attributes
    ----------
    session_id:
        Store key of the session.
    query:
        The query being refined (internal index or external vector).
    algorithm:
        Registry name of the session's feedback scheme (empty string for
        instance-backed sessions, which carry the strategy in ``instance``
        and cannot be serialised).
    algorithm_params:
        Constructor parameters of a named algorithm.
    top_k:
        Default ranking size of the initial retrieval.
    judgements:
        Accumulated image → ±1 judgements in arrival order.
    round_judgements:
        The per-round judgement dicts, in round order — exactly what gets
        appended to the log database when the session closes.
    memory:
        The session's :class:`FeedbackMemory` (warm starts + diagnostics).
    created_at, last_active:
        Service-clock timestamps.
    """

    session_id: str
    query: Query
    algorithm: str = ""
    algorithm_params: Dict[str, Any] = field(default_factory=dict)
    top_k: Optional[int] = 20
    created_at: float = 0.0
    last_active: float = 0.0
    judgements: Dict[int, int] = field(default_factory=dict)
    round_judgements: List[Dict[int, int]] = field(default_factory=list)
    memory: FeedbackMemory = field(default_factory=FeedbackMemory)
    closed: bool = False
    last_indices: Optional[np.ndarray] = None
    last_scores: Optional[np.ndarray] = None
    last_algorithm_label: str = ""
    #: Strategy instance for instance-backed sessions (never serialised).
    instance: Optional[RelevanceFeedbackAlgorithm] = None

    # ------------------------------------------------------------------ info
    @property
    def rounds_completed(self) -> int:
        """Number of feedback rounds scored so far."""
        return len(self.round_judgements)

    @property
    def algorithm_label(self) -> str:
        """Display name of the session's scheme."""
        if self.instance is not None:
            return self.instance.name
        return self.algorithm

    def view(self) -> SessionView:
        """A read-only :class:`SessionView` snapshot."""
        return SessionView(
            session_id=self.session_id,
            query=self.query,
            algorithm=self.algorithm_label,
            rounds_completed=self.rounds_completed,
            judgements=dict(self.judgements),
            created_at=self.created_at,
            last_active=self.last_active,
            closed=self.closed,
            solver_stats=self.solver_stats(),
        )

    def solver_stats(self) -> Optional[Dict[str, Any]]:
        """The last round's solve cost, as published into the memory meta.

        Strategies that report their work (LRF-CSVM writes ``last_path``,
        ``last_solver_iterations``, ``last_label_flips``,
        ``last_gram_builds``, ``last_kernel_evaluations``, ...) surface it
        here with the ``last_`` prefix stripped; ``None`` when the memory
        carries none of these keys (round 0, or a silent strategy).
        """
        keys = (
            "last_path",
            "last_candidates",
            "last_solver_iterations",
            "last_label_flips",
            "last_gram_builds",
            "last_kernel_evaluations",
        )
        stats = {
            key[len("last_") :]: self.memory.meta[key]
            for key in keys
            if key in self.memory.meta
        }
        return stats or None

    # --------------------------------------------------------------- rounds
    def apply_round(self, judgements: Mapping[int, int]) -> Dict[int, int]:
        """Validate and fold one round of judgements into the session."""
        if self.closed:
            raise SessionError(f"session '{self.session_id}' is closed")
        cleaned = _clean_judgements(judgements)
        self.judgements.update(cleaned)
        self.round_judgements.append(cleaned)
        return cleaned

    def labeled_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """``(labeled_indices, labels)`` in judgement arrival order."""
        if not self.judgements:
            raise SessionError(
                f"session '{self.session_id}' has no judgements yet"
            )
        indices = np.fromiter(self.judgements.keys(), dtype=np.int64)
        labels = np.fromiter(
            (float(v) for v in self.judgements.values()), dtype=np.float64
        )
        return indices, labels

    def record_ranking(self, result: RetrievalResult) -> None:
        """Remember the most recent ranking (for resume/inspection)."""
        self.last_indices = np.asarray(result.image_indices, dtype=np.int64).copy()
        self.last_scores = np.asarray(result.scores, dtype=np.float64).copy()
        self.last_algorithm_label = str(result.algorithm)

    def last_result(self) -> Optional[RetrievalResult]:
        """The most recent ranking as a :class:`RetrievalResult`, if any."""
        if self.last_indices is None or self.last_scores is None:
            return None
        return RetrievalResult(
            image_indices=self.last_indices,
            scores=self.last_scores,
            query=self.query,
            algorithm=self.last_algorithm_label or "unknown",
        )

    # ----------------------------------------------------------- persistence
    def to_payload(self) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
        """Split the state into a JSON document and an array bundle.

        Judgement dicts are stored as ``[index, value]`` pair lists because
        their *order* is part of the state (JSON objects would stringify the
        integer keys, and the SVM stages consume the labelled set in arrival
        order).
        """
        if self.instance is not None:
            raise ValidationError(
                "instance-backed sessions cannot be serialised; open the "
                "session with a registry-named algorithm instead"
            )
        document: Dict[str, Any] = {
            "version": _STATE_VERSION,
            "session_id": self.session_id,
            "algorithm": self.algorithm,
            "algorithm_params": dict(self.algorithm_params),
            "top_k": self.top_k,
            "created_at": float(self.created_at),
            "last_active": float(self.last_active),
            "closed": bool(self.closed),
            "judgements": [[int(k), int(v)] for k, v in self.judgements.items()],
            "round_judgements": [
                [[int(k), int(v)] for k, v in judged.items()]
                for judged in self.round_judgements
            ],
            "query_index": (
                int(self.query.query_index) if self.query.is_internal else None
            ),
            "last_algorithm_label": self.last_algorithm_label,
            "memory_meta": dict(self.memory.meta),
            "memory_keys": sorted(self.memory.arrays),
        }
        arrays: Dict[str, np.ndarray] = {}
        # Round stamp: lets from_payload detect a document/bundle pair torn
        # by a crash between the store's two atomic renames (the bundle one
        # round ahead of the committed document) and discard the skewed
        # scratch instead of resuming with mismatched warm starts.
        arrays["__rounds__"] = np.asarray(len(self.round_judgements), dtype=np.int64)
        if not self.query.is_internal:
            arrays["query_vector"] = np.asarray(
                self.query.feature_vector, dtype=np.float64
            )
        if self.last_indices is not None:
            arrays["last_indices"] = self.last_indices
            arrays["last_scores"] = self.last_scores
        for key, value in self.memory.arrays.items():
            arrays[f"mem_{key}"] = np.asarray(value)
        return document, arrays

    @classmethod
    def from_payload(
        cls, document: Mapping[str, Any], arrays: Mapping[str, np.ndarray]
    ) -> "SessionState":
        """Rebuild a state saved by :meth:`to_payload`.

        A document/bundle pair whose round stamps disagree (a crash landed
        between the store's two atomic renames) is degraded safely: the
        committed document wins, and the skewed per-round scratch — warm
        starts and the last-ranking snapshot — is discarded, so the session
        resumes correctly from the committed round with a cold solver seed.
        """
        version = int(document.get("version", -1))
        if version != _STATE_VERSION:
            raise ValidationError(
                f"unsupported session-state version {version} "
                f"(expected {_STATE_VERSION})"
            )
        document_rounds = len(document.get("round_judgements", []))
        skewed = "__rounds__" in arrays and int(arrays["__rounds__"]) != document_rounds
        query_index = document.get("query_index")
        if query_index is not None:
            query = Query(query_index=int(query_index))
        else:
            query = Query(feature_vector=np.asarray(arrays["query_vector"]))
        memory = FeedbackMemory(
            arrays=(
                {}
                if skewed
                else {
                    str(key): np.array(arrays[f"mem_{key}"])
                    for key in document.get("memory_keys", [])
                }
            ),
            meta=dict(document.get("memory_meta", {})),
        )
        state = cls(
            session_id=str(document["session_id"]),
            query=query,
            algorithm=str(document.get("algorithm", "")),
            algorithm_params=dict(document.get("algorithm_params", {})),
            top_k=document.get("top_k"),
            created_at=float(document.get("created_at", 0.0)),
            last_active=float(document.get("last_active", 0.0)),
            judgements={int(k): int(v) for k, v in document.get("judgements", [])},
            round_judgements=[
                {int(k): int(v) for k, v in judged}
                for judged in document.get("round_judgements", [])
            ],
            memory=memory,
            closed=bool(document.get("closed", False)),
            last_algorithm_label=str(document.get("last_algorithm_label", "")),
        )
        if "last_indices" in arrays and not skewed:
            state.last_indices = np.asarray(arrays["last_indices"], dtype=np.int64)
            state.last_scores = np.asarray(arrays["last_scores"], dtype=np.float64)
        return state
