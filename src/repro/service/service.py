"""The :class:`RetrievalService`: a multi-session retrieval facade.

This is the system's public interaction surface: many concurrent users, each
owning an explicit session (``open_session`` → ``submit_feedback``\\ * →
``close_session``), served over **one** shared
:class:`~repro.cbir.database.ImageDatabase` with its attached
:class:`~repro.index.VectorIndex`.  Feedback algorithms are stateless
strategies; everything a session accumulates lives in its
:class:`~repro.service.state.SessionState`, which any
:class:`~repro.service.store.SessionStore` backend can persist and a fresh
service can resume bit-identically.  Waves of first-round searches are
micro-batched through the scheduler, and closed sessions' rounds are what
grows the shared log database — the long-term resource the paper's LRF-CSVM
exploits.

Thread safety and lock discipline
---------------------------------
Every public entry point is safe to call from any number of threads.  The
service layers three locks (acquired strictly in this order, see
:data:`repro.utils.concurrency.LOCK_ORDER`):

1. **Session stripes** (:class:`~repro.utils.concurrency.StripedLockMap`)
   — each call locks the stripes of every session it touches, in canonical
   order, for its whole duration.  Two calls on the same session serialise;
   calls on disjoint sessions run truly in parallel.  TTL eviction only
   *try-locks* a stripe and skips busy sessions, so it can never race a
   live round.
2. **Attachment read/write lock**
   (:class:`~repro.utils.concurrency.ReadWriteLock`) — serving holds it
   shared (searches, feedback scoring and candidate pruning only *read*
   the features, the index and the log vectors); :meth:`attach_index` /
   :meth:`build_index` / :meth:`detach_index` and the deferred KD-tree
   rebuild hold it exclusively.
3. **Scheduler wave mutex** — one wave's enqueue→flush is exclusive, so
   concurrent waves keep the "one wave = one ``batch_search`` flush"
   property; queued log records land in the shared log as one atomic
   append batch.  The log target is a pluggable
   :class:`~repro.logdb.store.LogStore` behind the
   :class:`~repro.logdb.log_database.LogDatabase` façade (which carries
   its own innermost synchronisation) — give the database a
   file-backed store and many service *processes* ship their logs into
   one directory.  Feedback rounds read the log through a versioned
   immutable :class:`~repro.logdb.log_database.LogSnapshot` captured
   once per batch, so scoring sees a consistent relevance matrix while
   appends continue.

Running on a :class:`~repro.service.scheduler.ParallelScheduler` adds a
thread pool *inside* a wave: independent per-session feedback solves and
bookkeeping fan out across workers (NumPy releases the GIL in the dense
kernels), while rankings and log records stay bit-identical to serial
execution.  Strategy instances passed by the caller (instance-backed
sessions) are served one group at a time and never cloned — their thread
safety remains the caller's responsibility; registry-named algorithms are
materialised per round and are fully safe.
"""

from __future__ import annotations

import itertools
import json
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.cbir.database import ImageDatabase
from repro.cbir.query import Query
from repro.cbir.search import SearchEngine
from repro.exceptions import SessionError, ValidationError
from repro.feedback.base import FeedbackContext, RelevanceFeedbackAlgorithm
from repro.feedback.registry import make_algorithm
from repro.index.base import VectorIndex
from repro.logdb.session import LogSession
from repro.logdb.store import _session_document, _session_from_document
from repro.obs import get_hub, lock_wait_recorder
from repro.service.dtos import FeedbackRequest, RankingResponse, SearchRequest, SessionView
from repro.service.scheduler import MicroBatchScheduler, ParallelScheduler
from repro.service.state import SessionState
from repro.service.store import InMemorySessionStore, SessionStore
from repro.utils.concurrency import ReadWriteLock, StripedLockMap
from repro.utils.faults import trip as _fault_trip

__all__ = ["RetrievalService", "LOG_POLICIES", "SCHEDULERS"]

#: When closed sessions' judgements reach the shared log database:
#: ``on_close`` appends one log session per completed round at close time
#: (the service default — in-flight sessions never contaminate each other),
#: ``per_round`` appends immediately after every round (the legacy
#: :class:`CBIREngine` behaviour), ``off`` never appends (evaluation runs).
LOG_POLICIES = ("on_close", "per_round", "off")

#: Scheduler choices: ``micro-batch`` serves waves cooperatively on the
#: calling thread; ``parallel`` additionally fans independent per-session
#: work across a thread pool (see :class:`ParallelScheduler`).
SCHEDULERS = ("micro-batch", "parallel")


class RetrievalService:
    """Session-oriented retrieval service over one shared image database.

    Parameters
    ----------
    database:
        The shared corpus (features + feedback log).
    store:
        Session storage backend; defaults to an in-memory store.
    default_algorithm:
        Scheme used when a :class:`SearchRequest` names none.
    log_policy:
        One of :data:`LOG_POLICIES`.
    distance:
        Metric of the first-round retrieval.
    index:
        ``None`` to use whatever index the database carries, a backend name
        (built and attached), or an already-built index (attached) — the
        same semantics the engine had.
    session_ttl:
        Convenience: TTL installed on the *default* store.  Pass a
        pre-configured store to control TTL per backend.
    clock:
        Seconds-returning callable used for timestamps and TTL eviction
        (injectable for tests); defaults to :func:`time.time`.
    scheduler:
        One of :data:`SCHEDULERS` (default ``micro-batch``).
    max_workers:
        Thread-pool size of the ``parallel`` scheduler (defaults to the
        CPU count); rejected for ``micro-batch``, which is single-threaded
        by definition.

    Raises
    ------
    ValidationError
        For an unknown log policy or scheduler, a ``session_ttl`` passed
        alongside an explicit store, or ``max_workers`` without the
        parallel scheduler.

    Notes
    -----
    All entry points are thread-safe; see the module docstring for the
    lock discipline and the bit-identity guarantees of parallel serving.
    """

    def __init__(
        self,
        database: ImageDatabase,
        *,
        store: Optional[SessionStore] = None,
        default_algorithm: Union[str, RelevanceFeedbackAlgorithm] = "lrf-csvm",
        log_policy: str = "on_close",
        distance: str = "euclidean",
        index: Union[None, str, VectorIndex] = None,
        session_ttl: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
        scheduler: str = "micro-batch",
        max_workers: Optional[int] = None,
    ) -> None:
        if log_policy not in LOG_POLICIES:
            raise ValidationError(
                f"log_policy must be one of {LOG_POLICIES}, got {log_policy!r}"
            )
        if scheduler not in SCHEDULERS:
            raise ValidationError(
                f"scheduler must be one of {SCHEDULERS}, got {scheduler!r}"
            )
        if max_workers is not None and scheduler != "parallel":
            raise ValidationError(
                "max_workers only applies to the 'parallel' scheduler"
            )
        if store is not None and session_ttl is not None:
            raise ValidationError(
                "session_ttl configures the default store; set ttl on the "
                "store you are passing instead"
            )
        self.database = database
        if isinstance(index, str):
            database.build_index(index)
        elif index is not None:
            database.attach_index(index)
        self.search_engine = SearchEngine(database, distance=distance)
        self.store: SessionStore = (
            store if store is not None else InMemorySessionStore(ttl=session_ttl)
        )
        self.default_algorithm = default_algorithm
        self.log_policy = log_policy
        if scheduler == "parallel":
            self.scheduler: MicroBatchScheduler = ParallelScheduler(
                self.search_engine, database.log_database, max_workers=max_workers
            )
        else:
            self.scheduler = MicroBatchScheduler(
                self.search_engine, database.log_database
            )
        self._clock = clock if clock is not None else time.time
        self._id_counter = itertools.count(1)
        # Lock discipline (module docstring): stripes → attachment → wave.
        # The wait recorders consult the observability hub at call time, so
        # lock-wait accounting follows repro.obs.configure()/disable() live.
        self._session_locks = StripedLockMap(
            wait_callback=lock_wait_recorder("service.session_locks")
        )
        self._attachment = ReadWriteLock(
            wait_callback=lock_wait_recorder("service.attachment")
        )
        # Roll forward any close that crashed mid-protocol before this
        # process took over the store (cluster worker restarts land here).
        if self._durable_close:
            self.recover_close_intents()

    @property
    def _durable_close(self) -> bool:
        """Whether closes run the write-ahead intent protocol.

        Requires both the ``on_close`` policy (the only policy with
        unflushed rounds at close time) and a store that can persist the
        intent record; otherwise closes use the legacy order.
        """
        return self.log_policy == "on_close" and getattr(
            self.store, "supports_close_intents", False
        )

    # ---------------------------------------------------------------- opening
    def open_session(
        self, request: Union[SearchRequest, int, Query], **kwargs
    ) -> RankingResponse:
        """Open one session and return its initial (round-0) ranking.

        Accepts a full :class:`SearchRequest` or the query plus
        ``SearchRequest`` keyword arguments for convenience.

        Parameters
        ----------
        request:
            A :class:`SearchRequest`, a database image index, or a
            :class:`~repro.cbir.query.Query`.
        kwargs:
            :class:`SearchRequest` fields when passing a raw query.

        Returns
        -------
        RankingResponse
            ``round_index`` 0 and the initial ranking.

        Raises
        ------
        SessionError
            If a client-chosen session id already exists.
        ValidationError
            For malformed request fields.
        """
        return self.open_sessions([self._coerce_search(request, kwargs)])[0]

    def open_sessions(
        self, requests: Sequence[Union[SearchRequest, int, Query]]
    ) -> List[RankingResponse]:
        """Open a wave of sessions with one micro-batched first-round search.

        Every request's search is queued on the scheduler and served by a
        single :meth:`~repro.cbir.search.SearchEngine.batch_search` flush —
        per session this produces the same ranking as a dedicated engine,
        but the wave costs one vectorised pass instead of N dispatches.

        Parameters
        ----------
        requests:
            The wave; each element as accepted by :meth:`open_session`.

        Returns
        -------
        list of RankingResponse
            One round-0 response per request, in request order.

        Raises
        ------
        SessionError
            If an id is requested twice in the wave or already exists; the
            failed wave leaves no sessions and no queued work behind.

        Notes
        -----
        Thread-safe: the wave holds its sessions' stripes end to end, the
        attachment read-lock while searching, and the scheduler's wave
        mutex around its single flush.  On the parallel scheduler the
        post-flush bookkeeping (state snapshots, store writes) fans out
        across the pool.
        """
        coerced = [self._coerce_search(request, {}) for request in requests]
        if not coerced:
            return []
        now = self._tick()
        self._drain_deferred_rebuild()
        # Build and validate every state of the wave BEFORE enqueueing any
        # work: a mid-wave failure must not leak queued searches into the
        # next flush, and two requests claiming one id would otherwise
        # silently hand one user the other's ranking.
        states: List[SessionState] = []
        wave_ids = set()
        for request in coerced:
            state = self._new_state(request, now)
            if state.session_id in wave_ids:
                raise SessionError(
                    f"session '{state.session_id}' is requested twice in one wave"
                )
            wave_ids.add(state.session_id)
            # Fail states the backend cannot persist (e.g. instance-backed
            # against the file store) BEFORE serving any of the wave.
            self.store.check_storable(state)
            states.append(state)
        hub = get_hub()
        with hub.span("service.open_sessions", wave=len(states)) as span:
            with self._session_locks.all_of(wave_ids):
                # Existence is re-checked under the stripes: a concurrent wave
                # claiming the same client-chosen id serialises here, so only
                # one of them can win.
                for state in states:
                    if state.session_id in self.store:
                        raise SessionError(
                            f"session '{state.session_id}' already exists"
                        )
                with self._attachment.read_locked():
                    with self.scheduler.exclusive():
                        for state in states:
                            self.scheduler.enqueue_search(
                                state.session_id, state.query, state.top_k
                            )
                        results = self.scheduler.flush()

                def finalize(state: SessionState) -> RankingResponse:
                    result = results[state.session_id]
                    state.record_ranking(result)
                    self.store.put(state)
                    return RankingResponse(
                        session_id=state.session_id, round_index=0, result=result
                    )

                responses = self.scheduler.run_jobs(
                    [lambda s=state: finalize(s) for state in states]
                )
        if hub.enabled:
            hub.count("service.sessions_opened", len(states))
            hub.set_gauge("service.open_sessions", len(self.store))
            hub.observe("service.open_wave_seconds", span.duration)
        return responses

    # --------------------------------------------------------------- feedback
    def submit_feedback(
        self,
        request: Union[FeedbackRequest, str],
        judgements: Optional[Mapping[int, int]] = None,
        *,
        top_k: Optional[int] = None,
    ) -> RankingResponse:
        """Run one feedback round for one session; returns the refined ranking.

        Parameters
        ----------
        request:
            A :class:`FeedbackRequest`, or the session id when passing the
            judgements separately.
        judgements:
            Image index → ±1 mapping (only with a raw session id).
        top_k:
            Refined-ranking size (only with a raw session id).

        Returns
        -------
        RankingResponse
            The refined ranking with this round's index.

        Raises
        ------
        SessionError
            For unknown, expired or closed sessions.
        ValidationError
            For malformed judgements or out-of-range image indices.
        """
        return self.submit_feedback_batch(
            [self._coerce_feedback(request, judgements, top_k)]
        )[0]

    def submit_feedback_batch(
        self, requests: Sequence[Union[FeedbackRequest, Mapping]]
    ) -> List[RankingResponse]:
        """Run one feedback round for each session in the batch.

        Rounds are grouped by (strategy, ``top_k``).  Groups whose scheme
        vectorises across queries (the Euclidean baseline routes through
        ``VectorIndex.batch_search``) are scored as one
        :meth:`RelevanceFeedbackAlgorithm.rank_batch` pass; every other
        round is an independent solve over its own
        :class:`SessionState` — which is what keeps concurrent sessions
        bit-identical to dedicated single-user runs, and what the parallel
        scheduler fans across its thread pool.

        Parameters
        ----------
        requests:
            One :class:`FeedbackRequest` (or mapping of its fields) per
            session; a session may appear at most once per batch.

        Returns
        -------
        list of RankingResponse
            One refined ranking per request, in request order.

        Raises
        ------
        SessionError
            For unknown/closed sessions or a duplicated id in the batch
            (rejected before any session state is touched).
        ValidationError
            For judgements referencing images outside the database.

        Notes
        -----
        Thread-safe: the batch holds its sessions' stripes for the whole
        round and the attachment read-lock while scoring.  Under the
        ``per_round`` log policy the batch's records land as one atomic
        log append.
        """
        coerced = [self._coerce_feedback(r, None, None) for r in requests]
        if not coerced:
            return []
        now = self._tick()
        self._drain_deferred_rebuild()
        # Validate the whole batch BEFORE touching any session state: a bad
        # request must not leave a half-applied round behind (the in-memory
        # store hands out live objects), and one session may only advance by
        # one round per batch — duplicates would corrupt its history.
        seen_ids = set()
        num_images = self.database.num_images
        for request in coerced:
            if request.session_id in seen_ids:
                raise SessionError(
                    f"session '{request.session_id}' appears twice in one "
                    "feedback batch; submit its rounds sequentially"
                )
            seen_ids.add(request.session_id)
            worst = max(request.judgements)
            if worst >= num_images:
                raise ValidationError(
                    f"judgement references image {worst} but the database "
                    f"only has {num_images} images"
                )
        hub = get_hub()
        with hub.span("service.feedback_batch", batch=len(coerced)) as batch_span, \
                self._session_locks.all_of(seen_ids):
            states = [self._open_state(request.session_id) for request in coerced]
            # Snapshots for rollback: the in-memory store hands out live
            # objects, so if anything between apply_round and the final
            # store.put raises, every session of the batch must be restored
            # — no phantom rounds, no half-mutated warm-start memory.
            snapshots = [
                (
                    dict(state.judgements),
                    len(state.round_judgements),
                    dict(state.memory.arrays),
                    dict(state.memory.meta),
                )
                for state in states
            ]
            try:
                # One versioned log snapshot for the whole batch: every
                # round scores against the same immutable R (densified at
                # most once), no matter what concurrent sessions append.
                log_snapshot = self.database.log_database.snapshot()
                contexts: List[FeedbackContext] = []
                round_indices: List[int] = []
                for request, state in zip(coerced, states):
                    state.apply_round(request.judgements)
                    round_indices.append(state.rounds_completed)
                    indices, labels = state.labeled_arrays()
                    contexts.append(
                        FeedbackContext(
                            database=self.database,
                            query=state.query,
                            labeled_indices=indices,
                            labels=labels,
                            memory=state.memory,
                            log=log_snapshot,
                        )
                    )

                with self._attachment.read_locked():
                    results = self._score_rounds(coerced, states, contexts)
            except BaseException:
                for state, (judged, rounds, mem_arrays, mem_meta) in zip(
                    states, snapshots
                ):
                    state.judgements = judged
                    del state.round_judgements[rounds:]
                    state.memory.arrays = mem_arrays
                    state.memory.meta = mem_meta
                raise

            # The wave mutex brackets this batch's enqueues and their flush
            # (mirroring open/close): a concurrent wave's flush can neither
            # steal nor split the batch's per_round log records, so they
            # land as one atomic append.
            responses = []
            with self.scheduler.exclusive():
                for request, state, result, round_index in zip(
                    coerced, states, results, round_indices
                ):
                    if self.log_policy == "per_round":
                        self.scheduler.enqueue_log_append(
                            self._log_session(state, request.judgements)
                        )
                    state.record_ranking(result)
                    state.last_active = now
                    self.store.put(state)
                    responses.append(
                        RankingResponse(
                            session_id=state.session_id,
                            round_index=round_index,
                            result=result,
                            solver_stats=state.solver_stats(),
                        )
                    )
                self.scheduler.flush()
        if hub.enabled:
            hub.count("service.rounds_scored", len(coerced))
            hub.observe("service.feedback_batch_seconds", batch_span.duration)
        return responses

    # ---------------------------------------------------------------- closing
    def close_session(self, session_id: str) -> SessionView:
        """Close one session, flushing its rounds into the shared log.

        Parameters
        ----------
        session_id:
            An open session's id.

        Returns
        -------
        SessionView
            The final snapshot (``closed`` is ``True``).

        Raises
        ------
        SessionError
            For unknown, expired or already-closed sessions.
        """
        return self.close_sessions([session_id])[0]

    def close_sessions(self, session_ids: Sequence[str]) -> List[SessionView]:
        """Close a wave of sessions, flushing their rounds into the log.

        Under the ``on_close`` policy every completed round of every listed
        session becomes one :class:`~repro.logdb.session.LogSession`.  With
        a store that supports close intents (the file backend), the wave
        runs the **durable close protocol** — per session:

        1. persist a write-ahead *close intent* (the session's log records
           plus a deterministic dedup token);
        2. flush the records into the log via the store's idempotent
           :meth:`~repro.logdb.store.LogStore.extend_once`;
        3. delete the session state;
        4. clear the intent.

        The intent is the commit decision: a crash at any step after (1)
        is rolled *forward* by :meth:`recover_close_intents` (on restart,
        or by the cluster router's reconciliation), and the token makes
        every replay — including a router re-sending the whole close to a
        surviving worker — exactly-once.  Without intent support (or under
        other log policies) the legacy order runs: enqueue appends, delete,
        flush.

        Parameters
        ----------
        session_ids:
            The sessions to close.

        Returns
        -------
        list of SessionView
            Final snapshots, in argument order.

        Raises
        ------
        SessionError
            For unknown, expired or already-closed sessions.

        Notes
        -----
        Thread-safe: holds the wave's stripes, so a close cannot interleave
        with a live feedback round of the same session.
        """
        self._tick()
        views: List[SessionView] = []
        hub = get_hub()
        with hub.span("service.close_sessions", wave=len(session_ids)), \
                self._session_locks.all_of(session_ids):
            # Pre-validate the whole wave (unknown/closed/duplicated ids)
            # BEFORE mutating anything: a bad id mid-wave must not leave
            # earlier sessions deleted with their log records stranded on
            # the queue.
            seen_ids = set()
            states = []
            for session_id in session_ids:
                if session_id in seen_ids:
                    raise SessionError(
                        f"session '{session_id}' appears twice in one close wave"
                    )
                seen_ids.add(session_id)
                states.append(self._open_state(session_id))
            if self._durable_close:
                views = self._close_durably(states)
            else:
                with self.scheduler.exclusive():
                    for state in states:
                        if self.log_policy == "on_close":
                            for judged in state.round_judgements:
                                self.scheduler.enqueue_log_append(
                                    self._log_session(state, judged)
                                )
                        state.closed = True
                        views.append(state.view())
                        self.store.delete(state.session_id)
                    self.scheduler.flush()
        if hub.enabled:
            hub.count("service.sessions_closed", len(views))
            hub.set_gauge("service.open_sessions", len(self.store))
        return views

    def _close_durably(self, states: Sequence[SessionState]) -> List[SessionView]:
        """The write-ahead close order: intent → flush → delete → clear.

        Sessions without completed rounds skip the intent machinery —
        there is nothing to lose, so a plain delete is already crash-safe
        (a lost reply re-sends the close, finds the state present or gone,
        and reconciles either way).
        """
        _fault_trip("close.before_intent_write")
        intents: List[Optional[Dict]] = []
        for state in states:
            intent = self._close_intent_document(state)
            if intent is not None:
                self.store.write_close_intent(state.session_id, intent)
            intents.append(intent)
        _fault_trip("close.before_log_flush")
        for intent in intents:
            if intent is not None:
                self._flush_intent(intent)
        _fault_trip("close.after_log_flush")
        views = []
        for state, intent in zip(states, intents):
            state.closed = True
            views.append(state.view())
            self.store.delete(state.session_id)
            _fault_trip("close.after_delete", session_id=state.session_id)
            if intent is not None:
                self.store.clear_close_intent(state.session_id)
        return views

    def recover_close_intents(
        self, session_ids: Optional[Sequence[str]] = None
    ) -> List[str]:
        """Roll forward orphaned write-ahead close intents; returns the ids.

        An intent on disk means a close committed its decision but crashed
        before finishing.  Replay completes it, idempotently, in the same
        order the protocol runs: flush the intent's records through the
        log's token-deduplicated :meth:`~repro.logdb.store.LogStore.extend_once`
        (a replay of an already-flushed intent is a no-op), delete the
        session state — but **only** when its ``created_at`` matches the
        intent's (a *stale* intent from a prior epoch must not delete a
        fresh session that merely reused the id) — then clear the intent.

        Called automatically when a service starts over an intent-capable
        store under ``on_close`` (the worker-restart path), and by the
        cluster router's close reconciliation against a surviving worker.

        Parameters
        ----------
        session_ids:
            Restrict replay to these ids; ``None`` replays every pending
            intent the store lists.

        Returns
        -------
        list of str
            Ids whose intent was replayed (missing intents are skipped).
        """
        if not getattr(self.store, "supports_close_intents", False):
            return []
        pending = (
            self.store.close_intent_ids()
            if session_ids is None
            else list(session_ids)
        )
        replayed: List[str] = []
        for session_id in pending:
            with self._session_locks.holding(session_id):
                intent = self.store.read_close_intent(session_id)
                if intent is None:
                    continue
                self._flush_intent(intent)
                try:
                    state_created = float(self.store.get(session_id).created_at)
                except SessionError:
                    state_created = None
                if state_created is not None and state_created == float(
                    intent.get("created_at", float("nan"))
                ):
                    self.store.delete(session_id)
                self.store.clear_close_intent(session_id)
                replayed.append(session_id)
        if replayed:
            get_hub().count("cluster.close_replays", len(replayed))
        return replayed

    def _close_intent_document(self, state: SessionState) -> Optional[Dict]:
        """The write-ahead record of one closing session (``None`` = no rounds).

        The token is derived from ``(session_id, created_at, rounds)`` —
        everything a re-sent close regenerates bit-identically from the
        stored state — so every replay of this close carries the same
        token and the log commits its records exactly once.
        """
        if not state.round_judgements:
            return None
        records = [
            self._log_session(state, judged) for judged in state.round_judgements
        ]
        return {
            "version": 1,
            "session_id": state.session_id,
            "created_at": float(state.created_at),
            "token": (
                f"close:{state.session_id}:{float(state.created_at)!r}"
                f":r{state.rounds_completed}"
            ),
            "records": [_session_document(record) for record in records],
        }

    def _flush_intent(self, intent: Dict) -> None:
        """Commit an intent's records into the log (token-deduplicated)."""
        records = [
            _session_from_document(document)
            for document in intent.get("records", ())
        ]
        token = intent.get("token")
        if records and token:
            self.database.log_database.extend_once(records, str(token))

    def discard_session(self, session_id: str) -> None:
        """Abandon a session without recording anything (the engine's reset).

        A missing or expired id is a no-op.  Thread-safe (holds the
        session's stripe).
        """
        self._tick()
        with self._session_locks.holding(session_id):
            self.store.delete(session_id)

    # ------------------------------------------------------------- inspection
    def get_session(self, session_id: str) -> SessionView:
        """A read-only snapshot of one open session.

        Raises
        ------
        SessionError
            For unknown or expired ids.

        Notes
        -----
        Taken under the session's stripe, so the snapshot is consistent
        (never a torn view of a round in flight).
        """
        self._tick()
        with self._session_locks.holding(session_id):
            return self.store.get(session_id).view()

    def last_response(self, session_id: str) -> Optional[RankingResponse]:
        """Replay the most recent ranking of an open session from its state.

        The recovery primitive of the cluster tier: after a worker dies
        mid-round, the router asks any surviving worker (they share the
        session store) for the session's last persisted ranking and its
        round index, and reconciles — if the round the client was waiting
        on is already persisted, its response is recovered from here
        instead of being re-scored.

        Parameters
        ----------
        session_id:
            An open session's id.

        Returns
        -------
        RankingResponse or None
            The last recorded ranking stamped with the session's completed
            round count, or ``None`` when no ranking has been recorded yet.

        Raises
        ------
        SessionError
            For unknown, expired or closed sessions.

        Notes
        -----
        Taken under the session's stripe, so the round index and ranking
        are a consistent pair (never a torn view of a round in flight).
        """
        self._tick()
        with self._session_locks.holding(session_id):
            state = self._open_state(session_id)
            result = state.last_result()
            if result is None:
                return None
            return RankingResponse(
                session_id=state.session_id,
                round_index=state.rounds_completed,
                result=result,
                solver_stats=state.solver_stats(),
            )

    def list_sessions(self) -> List[SessionView]:
        """Snapshots of every open session, by id.

        Sessions opened or closed concurrently may or may not appear; each
        returned view is internally consistent.
        """
        self._tick()
        views = []
        for session_id in self.store.session_ids():
            with self._session_locks.holding(session_id):
                try:
                    views.append(self.store.get(session_id).view())
                except SessionError:
                    continue  # closed while listing
        return views

    @property
    def num_open_sessions(self) -> int:
        """Number of sessions currently stored."""
        return len(self.store)

    # ------------------------------------------------------------- attachment
    def attach_index(self, index: VectorIndex) -> None:
        """Attach an already-built index under the attachment write-lock.

        Blocks until in-flight serving drains (readers release), swaps the
        database's index, and lets serving resume — the safe way to hot-swap
        the ANN backend while the service is taking traffic.

        Parameters
        ----------
        index:
            A built index covering exactly the database's features.

        Raises
        ------
        DatabaseError
            If the index does not cover the database (wrong shape or
            different vectors).
        """
        with self._attachment.write_locked():
            self.database.attach_index(index)

    def build_index(self, kind: str = "brute-force", **kwargs) -> VectorIndex:
        """Build and attach a fresh index under the attachment write-lock.

        Parameters
        ----------
        kind:
            Registry name of the backend (``brute-force``, ``kd-tree``,
            ``lsh``, ``ivf``).
        kwargs:
            Backend parameters, forwarded to the index registry.

        Returns
        -------
        VectorIndex
            The newly attached index.
        """
        with self._attachment.write_locked():
            return self.database.build_index(kind, **kwargs)

    def detach_index(self) -> Optional[VectorIndex]:
        """Detach and return the database's index (serving falls back to scans)."""
        with self._attachment.write_locked():
            return self.database.detach_index()

    def shutdown(self) -> None:
        """Release scheduler worker threads (no-op for ``micro-batch``).

        The service remains usable afterwards — the parallel scheduler
        re-creates its pool on demand.
        """
        self.scheduler.shutdown()

    # -------------------------------------------------------------- internals
    def _tick(self) -> float:
        """Advance the service clock and run lock-aware TTL eviction."""
        now = float(self._clock())
        self.store.evict_expired(now, locks=self._session_locks)
        return now

    def _drain_deferred_rebuild(self) -> None:
        """Rebuild a stale attached index under the write-lock, if needed.

        KD-tree ``add()`` bursts defer their rebuild; draining it here —
        exclusively, before the wave takes the read side — means read-only
        searches never overlap the rebuild.  (The KD-tree's own rebuild
        mutex still guards the path for callers that bypass the service.)
        """
        index = self.database.index
        if index is not None and index.needs_rebuild:
            with self._attachment.write_locked():
                with get_hub().span("index.rebuild_drain", kind=index.kind):
                    index.refresh()

    def _score_rounds(
        self,
        coerced: Sequence[FeedbackRequest],
        states: Sequence[SessionState],
        contexts: Sequence[FeedbackContext],
    ) -> List[object]:
        """Score every round of the batch; results in request order.

        Rounds are grouped by (strategy, ``top_k``), preserving request
        order inside every group, then turned into scheduler jobs:

        * a group whose algorithm overrides ``rank_batch`` (a genuinely
          vectorised batch path) — or whose sessions share a caller-owned
          instance — stays one job, keeping the vectorised win / the
          caller's sequencing;
        * every other round becomes its own job with a **freshly
          materialised** strategy, so jobs share no mutable state and the
          parallel scheduler may run them on any thread.
        """
        groups: Dict[object, List[int]] = {}
        for position, (request, state) in enumerate(zip(coerced, states)):
            groups.setdefault(self._group_key(state, request.top_k), []).append(
                position
            )

        jobs = []
        job_positions: List[List[int]] = []
        for positions in groups.values():
            lead_state = states[positions[0]]
            top_k = coerced[positions[0]].top_k
            algorithm = self._materialize(lead_state)
            batch_overridden = (
                type(algorithm).rank_batch is not RelevanceFeedbackAlgorithm.rank_batch
            )
            label = (
                lead_state.algorithm
                if lead_state.instance is None
                else type(lead_state.instance).__name__
            )
            if lead_state.instance is not None or batch_overridden:
                group_contexts = [contexts[position] for position in positions]
                jobs.append(
                    self._traced_round(
                        lambda a=algorithm, c=group_contexts, k=top_k: a.rank_batch(
                            c, top_k=k
                        ),
                        [states[position].session_id for position in positions],
                        label,
                    )
                )
                job_positions.append(list(positions))
            else:
                for job_index, position in enumerate(positions):
                    # The probe instance serves the group's first round (it
                    # is fresh and unshared); the rest materialise their
                    # own so no two jobs touch the same strategy object.
                    if job_index == 0:
                        job = (
                            lambda a=algorithm, c=contexts[position], k=top_k: (
                                [a.rank(c, top_k=k)]
                            )
                        )
                    else:
                        job = (
                            lambda s=states[position], c=contexts[position], k=top_k: (
                                [self._materialize(s).rank(c, top_k=k)]
                            )
                        )
                    jobs.append(
                        self._traced_round(job, [states[position].session_id], label)
                    )
                    job_positions.append([position])

        results: List[object] = [None] * len(coerced)
        for positions, outcome in zip(job_positions, self.scheduler.run_jobs(jobs)):
            for position, result in zip(positions, outcome):
                results[position] = result
        return results

    @staticmethod
    def _traced_round(
        job: Callable[[], object], session_ids: Sequence[str], algorithm: str
    ) -> Callable[[], object]:
        """Wrap a scoring job in a ``service.round`` span (no-op when disabled).

        The wrapper opens its span on whatever thread the scheduler runs the
        job on; the parallel scheduler copies the submitting context, so the
        span's parent is the batch span that was open at submission time.
        """
        hub = get_hub()
        if not hub.enabled:
            return job
        attrs: Dict[str, object] = {"algorithm": algorithm, "rounds": len(session_ids)}
        if len(session_ids) == 1:
            attrs["session_id"] = session_ids[0]

        def traced() -> object:
            with hub.span("service.round", **attrs) as span:
                outcome = job()
            hub.observe("service.round_seconds", span.duration)
            return outcome

        return traced

    def _new_state(self, request: SearchRequest, now: float) -> SessionState:
        """Build the fresh state of one request (existence checked later)."""
        session_id = request.session_id or self._new_id()
        algorithm = (
            self.default_algorithm if request.algorithm is None else request.algorithm
        )
        state = SessionState(
            session_id=session_id,
            query=request.query,
            top_k=request.top_k,
            created_at=now,
            last_active=now,
        )
        if isinstance(algorithm, str):
            state.algorithm = algorithm
            state.algorithm_params = dict(request.algorithm_params)
        else:
            state.instance = algorithm
        return state

    def _new_id(self) -> str:
        """Mint a service-assigned session id (the counter is race-free)."""
        while True:
            session_id = f"s{next(self._id_counter):06d}"
            if session_id not in self.store:
                return session_id

    def _open_state(self, session_id: str) -> SessionState:
        """The stored state of an *open* session (raises otherwise)."""
        state = self.store.get(session_id)
        if state.closed:
            raise SessionError(f"session '{session_id}' is closed")
        return state

    def _materialize(self, state: SessionState) -> RelevanceFeedbackAlgorithm:
        """The strategy serving *state*: its instance, or a fresh build."""
        if state.instance is not None:
            return state.instance
        return make_algorithm(state.algorithm, **state.algorithm_params)

    def _group_key(self, state: SessionState, top_k: Optional[int]) -> object:
        """Batch-grouping key: same strategy configuration + ranking size."""
        if state.instance is not None:
            return (id(state.instance), top_k)
        return (
            state.algorithm,
            json.dumps(state.algorithm_params, sort_keys=True, default=str),
            top_k,
        )

    def _log_session(self, state: SessionState, judged: Mapping[int, int]) -> LogSession:
        """One round's judgements as the log record the paper accumulates."""
        query_index = (
            int(state.query.query_index) if state.query.is_internal else None
        )
        return LogSession(judgements=dict(judged), query_index=query_index)

    @staticmethod
    def _coerce_search(
        request: Union[SearchRequest, int, Query], kwargs: Mapping
    ) -> SearchRequest:
        """Normalise ``open_session`` inputs to a :class:`SearchRequest`."""
        if isinstance(request, SearchRequest):
            if kwargs:
                raise ValidationError(
                    "keyword arguments only apply when passing a raw query"
                )
            return request
        return SearchRequest(query=request, **dict(kwargs))

    @staticmethod
    def _coerce_feedback(
        request: Union[FeedbackRequest, str],
        judgements: Optional[Mapping[int, int]],
        top_k: Optional[int],
    ) -> FeedbackRequest:
        """Normalise ``submit_feedback`` inputs to a :class:`FeedbackRequest`."""
        if isinstance(request, FeedbackRequest):
            if judgements is not None or top_k is not None:
                raise ValidationError(
                    "judgements/top_k only apply when passing a session id"
                )
            return request
        if judgements is None:
            raise ValidationError("submit_feedback needs a judgements mapping")
        return FeedbackRequest(
            session_id=str(request), judgements=judgements, top_k=top_k
        )
