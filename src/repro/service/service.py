"""The :class:`RetrievalService`: a multi-session retrieval facade.

This is the system's public interaction surface: many concurrent users, each
owning an explicit session (``open_session`` → ``submit_feedback``\\ * →
``close_session``), served over **one** shared
:class:`~repro.cbir.database.ImageDatabase` with its attached
:class:`~repro.index.VectorIndex`.  Feedback algorithms are stateless
strategies; everything a session accumulates lives in its
:class:`~repro.service.state.SessionState`, which any
:class:`~repro.service.store.SessionStore` backend can persist and a fresh
service can resume bit-identically.  Waves of first-round searches are
micro-batched through the scheduler, and closed sessions' rounds are what
grows the shared log database — the long-term resource the paper's LRF-CSVM
exploits.
"""

from __future__ import annotations

import itertools
import json
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Union

from repro.cbir.database import ImageDatabase
from repro.cbir.query import Query
from repro.cbir.search import SearchEngine
from repro.exceptions import SessionError, ValidationError
from repro.feedback.base import FeedbackContext, RelevanceFeedbackAlgorithm
from repro.feedback.registry import make_algorithm
from repro.index.base import VectorIndex
from repro.logdb.session import LogSession
from repro.service.dtos import FeedbackRequest, RankingResponse, SearchRequest, SessionView
from repro.service.scheduler import MicroBatchScheduler
from repro.service.state import SessionState
from repro.service.store import InMemorySessionStore, SessionStore

__all__ = ["RetrievalService", "LOG_POLICIES"]

#: When closed sessions' judgements reach the shared log database:
#: ``on_close`` appends one log session per completed round at close time
#: (the service default — in-flight sessions never contaminate each other),
#: ``per_round`` appends immediately after every round (the legacy
#: :class:`CBIREngine` behaviour), ``off`` never appends (evaluation runs).
LOG_POLICIES = ("on_close", "per_round", "off")


class RetrievalService:
    """Session-oriented retrieval service over one shared image database.

    Parameters
    ----------
    database:
        The shared corpus (features + feedback log).
    store:
        Session storage backend; defaults to an in-memory store.
    default_algorithm:
        Scheme used when a :class:`SearchRequest` names none.
    log_policy:
        One of :data:`LOG_POLICIES`.
    distance:
        Metric of the first-round retrieval.
    index:
        ``None`` to use whatever index the database carries, a backend name
        (built and attached), or an already-built index (attached) — the
        same semantics the engine had.
    session_ttl:
        Convenience: TTL installed on the *default* store.  Pass a
        pre-configured store to control TTL per backend.
    clock:
        Seconds-returning callable used for timestamps and TTL eviction
        (injectable for tests); defaults to :func:`time.time`.
    """

    def __init__(
        self,
        database: ImageDatabase,
        *,
        store: Optional[SessionStore] = None,
        default_algorithm: Union[str, RelevanceFeedbackAlgorithm] = "lrf-csvm",
        log_policy: str = "on_close",
        distance: str = "euclidean",
        index: Union[None, str, VectorIndex] = None,
        session_ttl: Optional[float] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if log_policy not in LOG_POLICIES:
            raise ValidationError(
                f"log_policy must be one of {LOG_POLICIES}, got {log_policy!r}"
            )
        if store is not None and session_ttl is not None:
            raise ValidationError(
                "session_ttl configures the default store; set ttl on the "
                "store you are passing instead"
            )
        self.database = database
        if isinstance(index, str):
            database.build_index(index)
        elif index is not None:
            database.attach_index(index)
        self.search_engine = SearchEngine(database, distance=distance)
        self.store: SessionStore = (
            store if store is not None else InMemorySessionStore(ttl=session_ttl)
        )
        self.default_algorithm = default_algorithm
        self.log_policy = log_policy
        self.scheduler = MicroBatchScheduler(self.search_engine, database.log_database)
        self._clock = clock if clock is not None else time.time
        self._id_counter = itertools.count(1)

    # ---------------------------------------------------------------- opening
    def open_session(
        self, request: Union[SearchRequest, int, Query], **kwargs
    ) -> RankingResponse:
        """Open one session and return its initial (round-0) ranking.

        Accepts a full :class:`SearchRequest` or the query plus
        ``SearchRequest`` keyword arguments for convenience.
        """
        return self.open_sessions([self._coerce_search(request, kwargs)])[0]

    def open_sessions(
        self, requests: Sequence[Union[SearchRequest, int, Query]]
    ) -> List[RankingResponse]:
        """Open a wave of sessions with one micro-batched first-round search.

        Every request's search is queued on the scheduler and served by a
        single :meth:`~repro.cbir.search.SearchEngine.batch_search` flush —
        per session this produces the same ranking as a dedicated engine,
        but the wave costs one vectorised pass instead of N dispatches.
        """
        coerced = [self._coerce_search(request, {}) for request in requests]
        if not coerced:
            return []
        now = self._tick()
        # Build and validate every state of the wave BEFORE enqueueing any
        # work: a mid-wave failure must not leak queued searches into the
        # next flush, and two requests claiming one id would otherwise
        # silently hand one user the other's ranking.
        states: List[SessionState] = []
        wave_ids = set()
        for request in coerced:
            state = self._new_state(request, now)
            if state.session_id in wave_ids:
                raise SessionError(
                    f"session '{state.session_id}' is requested twice in one wave"
                )
            wave_ids.add(state.session_id)
            states.append(state)
        for state in states:
            self.scheduler.enqueue_search(state.session_id, state.query, state.top_k)
        results = self.scheduler.flush()
        responses = []
        for state in states:
            result = results[state.session_id]
            state.record_ranking(result)
            self.store.put(state)
            responses.append(
                RankingResponse(session_id=state.session_id, round_index=0, result=result)
            )
        return responses

    # --------------------------------------------------------------- feedback
    def submit_feedback(
        self,
        request: Union[FeedbackRequest, str],
        judgements: Optional[Mapping[int, int]] = None,
        *,
        top_k: Optional[int] = None,
    ) -> RankingResponse:
        """Run one feedback round for one session; returns the refined ranking."""
        return self.submit_feedback_batch(
            [self._coerce_feedback(request, judgements, top_k)]
        )[0]

    def submit_feedback_batch(
        self, requests: Sequence[Union[FeedbackRequest, Mapping]]
    ) -> List[RankingResponse]:
        """Run one feedback round for each session in the batch.

        Rounds are grouped by (strategy, ``top_k``) and each group is scored
        through :meth:`RelevanceFeedbackAlgorithm.rank_batch`, so schemes
        with a vectorised batch path (the Euclidean baseline routes through
        ``VectorIndex.batch_search``) serve the whole wave in one pass.
        Each session's round runs on its own :class:`SessionState` — its
        judgement history and warm-start memory — which is what keeps
        concurrent sessions bit-identical to dedicated single-user runs.
        """
        coerced = [self._coerce_feedback(r, None, None) for r in requests]
        if not coerced:
            return []
        now = self._tick()
        # Validate the whole batch BEFORE touching any session state: a bad
        # request must not leave a half-applied round behind (the in-memory
        # store hands out live objects), and one session may only advance by
        # one round per batch — duplicates would corrupt its history.
        seen_ids = set()
        num_images = self.database.num_images
        for request in coerced:
            if request.session_id in seen_ids:
                raise SessionError(
                    f"session '{request.session_id}' appears twice in one "
                    "feedback batch; submit its rounds sequentially"
                )
            seen_ids.add(request.session_id)
            worst = max(request.judgements)
            if worst >= num_images:
                raise ValidationError(
                    f"judgement references image {worst} but the database "
                    f"only has {num_images} images"
                )
        states = [self._open_state(request.session_id) for request in coerced]
        contexts: List[FeedbackContext] = []
        round_indices: List[int] = []
        for request, state in zip(coerced, states):
            state.apply_round(request.judgements)
            round_indices.append(state.rounds_completed)
            indices, labels = state.labeled_arrays()
            contexts.append(
                FeedbackContext(
                    database=self.database,
                    query=state.query,
                    labeled_indices=indices,
                    labels=labels,
                    memory=state.memory,
                )
            )

        # Group rounds sharing a strategy and ranking size, preserving the
        # request order inside every group (stochastic strategies consume
        # their stream in submission order, batched or not).
        groups: Dict[object, List[int]] = {}
        keys: List[object] = []
        for position, (request, state) in enumerate(zip(coerced, states)):
            keys.append(self._group_key(state, request.top_k))
            groups.setdefault(keys[position], []).append(position)

        results = [None] * len(coerced)
        for key, positions in groups.items():
            algorithm = self._materialize(states[positions[0]])
            top_k = coerced[positions[0]].top_k
            ranked = algorithm.rank_batch(
                [contexts[position] for position in positions], top_k=top_k
            )
            for position, result in zip(positions, ranked):
                results[position] = result

        responses = []
        for request, state, result, round_index in zip(
            coerced, states, results, round_indices
        ):
            if self.log_policy == "per_round":
                self.scheduler.enqueue_log_append(
                    self._log_session(state, request.judgements)
                )
            state.record_ranking(result)
            state.last_active = now
            self.store.put(state)
            responses.append(
                RankingResponse(
                    session_id=state.session_id,
                    round_index=round_index,
                    result=result,
                )
            )
        self.scheduler.flush()
        return responses

    # ---------------------------------------------------------------- closing
    def close_session(self, session_id: str) -> SessionView:
        """Close one session, flushing its rounds into the shared log."""
        return self.close_sessions([session_id])[0]

    def close_sessions(self, session_ids: Sequence[str]) -> List[SessionView]:
        """Close a wave of sessions with one batched log-append flush."""
        self._tick()
        views = []
        for session_id in session_ids:
            state = self._open_state(session_id)
            if self.log_policy == "on_close":
                for judged in state.round_judgements:
                    self.scheduler.enqueue_log_append(self._log_session(state, judged))
            state.closed = True
            views.append(state.view())
            self.store.delete(state.session_id)
        self.scheduler.flush()
        return views

    def discard_session(self, session_id: str) -> None:
        """Abandon a session without recording anything (the engine's reset)."""
        self._tick()
        self.store.delete(session_id)

    # ------------------------------------------------------------- inspection
    def get_session(self, session_id: str) -> SessionView:
        """A read-only snapshot of one open session."""
        self._tick()
        return self.store.get(session_id).view()

    def list_sessions(self) -> List[SessionView]:
        """Snapshots of every open session, by id."""
        self._tick()
        return [self.store.get(sid).view() for sid in self.store.session_ids()]

    @property
    def num_open_sessions(self) -> int:
        """Number of sessions currently stored."""
        return len(self.store)

    # -------------------------------------------------------------- internals
    def _tick(self) -> float:
        now = float(self._clock())
        self.store.evict_expired(now)
        return now

    def _new_state(self, request: SearchRequest, now: float) -> SessionState:
        session_id = request.session_id or self._new_id()
        if session_id in self.store:
            raise SessionError(f"session '{session_id}' already exists")
        algorithm = (
            self.default_algorithm if request.algorithm is None else request.algorithm
        )
        state = SessionState(
            session_id=session_id,
            query=request.query,
            top_k=request.top_k,
            created_at=now,
            last_active=now,
        )
        if isinstance(algorithm, str):
            state.algorithm = algorithm
            state.algorithm_params = dict(request.algorithm_params)
        else:
            state.instance = algorithm
        return state

    def _new_id(self) -> str:
        while True:
            session_id = f"s{next(self._id_counter):06d}"
            if session_id not in self.store:
                return session_id

    def _open_state(self, session_id: str) -> SessionState:
        state = self.store.get(session_id)
        if state.closed:
            raise SessionError(f"session '{session_id}' is closed")
        return state

    def _materialize(self, state: SessionState) -> RelevanceFeedbackAlgorithm:
        if state.instance is not None:
            return state.instance
        return make_algorithm(state.algorithm, **state.algorithm_params)

    def _group_key(self, state: SessionState, top_k: Optional[int]) -> object:
        if state.instance is not None:
            return (id(state.instance), top_k)
        return (
            state.algorithm,
            json.dumps(state.algorithm_params, sort_keys=True, default=str),
            top_k,
        )

    def _log_session(self, state: SessionState, judged: Mapping[int, int]) -> LogSession:
        query_index = (
            int(state.query.query_index) if state.query.is_internal else None
        )
        return LogSession(judgements=dict(judged), query_index=query_index)

    @staticmethod
    def _coerce_search(
        request: Union[SearchRequest, int, Query], kwargs: Mapping
    ) -> SearchRequest:
        if isinstance(request, SearchRequest):
            if kwargs:
                raise ValidationError(
                    "keyword arguments only apply when passing a raw query"
                )
            return request
        return SearchRequest(query=request, **dict(kwargs))

    @staticmethod
    def _coerce_feedback(
        request: Union[FeedbackRequest, str],
        judgements: Optional[Mapping[int, int]],
        top_k: Optional[int],
    ) -> FeedbackRequest:
        if isinstance(request, FeedbackRequest):
            if judgements is not None or top_k is not None:
                raise ValidationError(
                    "judgements/top_k only apply when passing a session id"
                )
            return request
        if judgements is None:
            raise ValidationError("submit_feedback needs a judgements mapping")
        return FeedbackRequest(
            session_id=str(request), judgements=judgements, top_k=top_k
        )
