"""Session persistence: the :class:`SessionStore` protocol and its backends.

A store maps session ids to :class:`~repro.service.state.SessionState`
objects and owns TTL bookkeeping.  Two backends ship:

* :class:`InMemorySessionStore` — a dict; state dies with the process.
* :class:`FileSessionStore` — one ``<id>.json`` document plus one
  ``<id>.npz`` array bundle per session, so sessions survive process
  restarts and a fresh service can resume them bit-identically.

The service calls :meth:`SessionStore.evict_expired` with its own clock on
every API entry; stores never read wall-clock time themselves, which keeps
eviction deterministic under test.
"""

from __future__ import annotations

import abc
from pathlib import Path
from typing import Dict, List, Optional, Union

from repro.exceptions import SessionError, ValidationError
from repro.service.state import SessionState
from repro.utils.io import load_array_bundle, load_json, save_array_bundle, save_json

__all__ = ["SessionStore", "InMemorySessionStore", "FileSessionStore"]

PathLike = Union[str, Path]


class SessionStore(abc.ABC):
    """Keyed storage of session states with optional TTL eviction.

    Parameters
    ----------
    ttl:
        Seconds of idleness (measured from ``last_active`` against the clock
        the service passes in) after which a session is evicted; ``None``
        disables eviction.
    """

    def __init__(self, *, ttl: Optional[float] = None) -> None:
        if ttl is not None and ttl <= 0:
            raise ValidationError(f"ttl must be positive, got {ttl}")
        self.ttl = None if ttl is None else float(ttl)

    # ------------------------------------------------------------------- api
    @abc.abstractmethod
    def put(self, state: SessionState) -> None:
        """Insert or overwrite *state* under its ``session_id``."""

    @abc.abstractmethod
    def get(self, session_id: str) -> SessionState:
        """The state stored under *session_id* (raises :class:`SessionError`)."""

    @abc.abstractmethod
    def delete(self, session_id: str) -> None:
        """Remove *session_id* if present (missing ids are a no-op)."""

    @abc.abstractmethod
    def session_ids(self) -> List[str]:
        """All stored session ids, sorted."""

    @abc.abstractmethod
    def last_active_of(self, session_id: str) -> float:
        """``last_active`` of one session without materialising arrays."""

    # ---------------------------------------------------------------- shared
    def __contains__(self, session_id: str) -> bool:
        return session_id in self.session_ids()

    def __len__(self) -> int:
        return len(self.session_ids())

    def evict_expired(self, now: float) -> List[str]:
        """Drop every session idle longer than :attr:`ttl`; returns the ids."""
        if self.ttl is None:
            return []
        evicted = [
            session_id
            for session_id in self.session_ids()
            if now - self.last_active_of(session_id) > self.ttl
        ]
        for session_id in evicted:
            self.delete(session_id)
        return evicted

    @staticmethod
    def _missing(session_id: str) -> SessionError:
        return SessionError(f"unknown or expired session '{session_id}'")


class InMemorySessionStore(SessionStore):
    """Dict-backed store: fastest, lives and dies with the process."""

    def __init__(self, *, ttl: Optional[float] = None) -> None:
        super().__init__(ttl=ttl)
        self._states: Dict[str, SessionState] = {}

    def put(self, state: SessionState) -> None:
        self._states[state.session_id] = state

    def get(self, session_id: str) -> SessionState:
        try:
            return self._states[session_id]
        except KeyError:
            raise self._missing(session_id) from None

    def delete(self, session_id: str) -> None:
        self._states.pop(session_id, None)

    def session_ids(self) -> List[str]:
        return sorted(self._states)

    def last_active_of(self, session_id: str) -> float:
        return self.get(session_id).last_active


class FileSessionStore(SessionStore):
    """On-disk store: one JSON document + one npz bundle per session.

    Arrays round-trip losslessly (float64 in, float64 out), so a session
    reloaded by a fresh service continues bit-identically — the property the
    persistence tests assert.  Instance-backed sessions (strategy objects
    instead of registry names) cannot be serialised and are rejected by
    :meth:`SessionState.to_payload`.
    """

    def __init__(self, directory: PathLike, *, ttl: Optional[float] = None) -> None:
        super().__init__(ttl=ttl)
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------- api
    def put(self, state: SessionState) -> None:
        document, arrays = state.to_payload()
        save_json(document, self._json_path(state.session_id))
        save_array_bundle(arrays, self._npz_path(state.session_id))

    def get(self, session_id: str) -> SessionState:
        json_path = self._json_path(session_id)
        if not json_path.exists():
            raise self._missing(session_id)
        document = load_json(json_path)
        npz_path = self._npz_path(session_id)
        arrays = load_array_bundle(npz_path) if npz_path.exists() else {}
        return SessionState.from_payload(document, arrays)

    def delete(self, session_id: str) -> None:
        self._json_path(session_id).unlink(missing_ok=True)
        self._npz_path(session_id).unlink(missing_ok=True)

    def session_ids(self) -> List[str]:
        return sorted(path.stem for path in self.directory.glob("*.json"))

    def last_active_of(self, session_id: str) -> float:
        json_path = self._json_path(session_id)
        if not json_path.exists():
            raise self._missing(session_id)
        return float(load_json(json_path).get("last_active", 0.0))

    # ------------------------------------------------------------- internals
    def _json_path(self, session_id: str) -> Path:
        return self.directory / f"{self._safe(session_id)}.json"

    def _npz_path(self, session_id: str) -> Path:
        return self.directory / f"{self._safe(session_id)}.npz"

    @staticmethod
    def _safe(session_id: str) -> str:
        if not session_id or not all(
            ch.isalnum() or ch in "._-" for ch in session_id
        ):
            raise ValidationError(
                f"session_id must match [A-Za-z0-9._-]+ , got {session_id!r}"
            )
        return session_id
