"""Session persistence: the :class:`SessionStore` protocol and its backends.

A store maps session ids to :class:`~repro.service.state.SessionState`
objects and owns TTL bookkeeping.  Two backends ship:

* :class:`InMemorySessionStore` — a dict; state dies with the process.
* :class:`FileSessionStore` — one ``<id>.json`` document plus one
  ``<id>.npz`` array bundle per session, so sessions survive process
  restarts and a fresh service can resume them bit-identically.

The service calls :meth:`SessionStore.evict_expired` with its own clock on
every API entry; stores never read wall-clock time themselves, which keeps
eviction deterministic under test.

Thread safety
-------------
Every store call is individually atomic: the in-memory backend guards its
dict with a mutex, and the file backend writes each file via
write-temp-then-:func:`os.replace` (a reader sees the old complete file or
the new complete file, never a truncated one).  What a bare store does
*not* provide is mutual exclusion between concurrent operations on the
**same** session — a get-modify-put round must not interleave with another
writer of that id.  That per-session discipline belongs to the caller: the
:class:`~repro.service.service.RetrievalService` brackets every session's
round with a striped lock and passes the same lock map into
:meth:`evict_expired`, so TTL eviction *try-locks* each candidate and skips
any session that is mid-round instead of racing it.
"""

from __future__ import annotations

import abc
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.exceptions import SessionError, ValidationError
from repro.obs import get_hub
from repro.service.state import SessionState
from repro.utils.concurrency import StripedLockMap
from repro.utils.faults import trip as _fault_trip
from repro.utils.io import load_array_bundle, load_json, save_array_bundle, save_json

__all__ = ["SessionStore", "InMemorySessionStore", "FileSessionStore"]

PathLike = Union[str, Path]


class SessionStore(abc.ABC):
    """Keyed storage of session states with optional TTL eviction.

    Parameters
    ----------
    ttl:
        Seconds of idleness (measured from ``last_active`` against the clock
        the service passes in) after which a session is evicted; ``None``
        disables eviction.
    sweep_interval:
        Minimum seconds (of the caller's clock) between full eviction
        sweeps.  The service calls :meth:`evict_expired` on **every** API
        entry; for the file backend a sweep is O(sessions) disk probes, so
        under sustained traffic an unthrottled sweep per call dominates the
        round itself (the cluster soak generator surfaced this).  ``0.0``
        (the default) sweeps on every call — the original behaviour, and
        what deterministic TTL tests rely on.
    """

    def __init__(
        self, *, ttl: Optional[float] = None, sweep_interval: float = 0.0
    ) -> None:
        if ttl is not None and ttl <= 0:
            raise ValidationError(f"ttl must be positive, got {ttl}")
        if sweep_interval < 0:
            raise ValidationError(
                f"sweep_interval must be >= 0, got {sweep_interval}"
            )
        self.ttl = None if ttl is None else float(ttl)
        self.sweep_interval = float(sweep_interval)
        self._last_sweep = float("-inf")

    # ------------------------------------------------------------------- api
    @abc.abstractmethod
    def put(self, state: SessionState) -> None:
        """Insert or overwrite *state* under its ``session_id``.

        Atomic per call; concurrent writers of the same id need external
        serialisation (last complete write wins either way).
        """

    @abc.abstractmethod
    def get(self, session_id: str) -> SessionState:
        """The state stored under *session_id*.

        Raises
        ------
        SessionError
            If the id is unknown (or was evicted).
        """

    @abc.abstractmethod
    def delete(self, session_id: str) -> None:
        """Remove *session_id* if present (missing ids are a no-op)."""

    @abc.abstractmethod
    def session_ids(self) -> List[str]:
        """A sorted snapshot of all stored session ids."""

    @abc.abstractmethod
    def last_active_of(self, session_id: str) -> float:
        """``last_active`` of one session without materialising arrays.

        Raises
        ------
        SessionError
            If the id is unknown.
        """

    # ----------------------------------------------------------- close intents
    #: Whether this backend persists write-ahead close-intent records (the
    #: durable close protocol of ``RetrievalService.close_sessions``).  The
    #: service consults this flag and falls back to the legacy close order
    #: when the backend cannot make an intent durable.
    supports_close_intents: bool = False

    def write_close_intent(self, session_id: str, document: Dict) -> None:
        """Persist the write-ahead close-intent *document* for *session_id*.

        The intent is the close protocol's commit decision: once it is
        durable, a crash at any later step is rolled **forward** by
        :meth:`~repro.service.service.RetrievalService.recover_close_intents`
        (flush the log idempotently, delete the state, clear the intent)
        instead of losing the session's rounds.  Overwriting an existing
        intent for the same id is allowed (a re-sent close regenerates an
        identical document).

        Backends that cannot make the record durable must leave
        :attr:`supports_close_intents` ``False``; this default refuses.
        """
        raise ValidationError(
            f"{type(self).__name__} does not support close-intent records"
        )

    def read_close_intent(self, session_id: str) -> Optional[Dict]:
        """The stored intent document of *session_id*, or ``None``."""
        return None

    def clear_close_intent(self, session_id: str) -> None:
        """Remove the intent of *session_id* if present (missing = no-op)."""

    def close_intent_ids(self) -> List[str]:
        """Sorted session ids with a pending close intent (orphans included)."""
        return []

    # ---------------------------------------------------------------- shared
    def check_storable(self, state: SessionState) -> None:
        """Raise if :meth:`put` would reject *state* (cheap pre-validation).

        The service calls this for every session of an open wave *before*
        serving any of them, so a state this backend cannot persist (e.g.
        an instance-backed session against the file store) fails the wave
        up front instead of after siblings were already stored.  The base
        accepts everything (the in-memory store stores anything).
        """

    def exists(self, session_id: str) -> bool:
        """Whether *session_id* is stored — O(1) in both shipped backends.

        The hot-path membership primitive (the service probes it per
        session of every open wave); the default falls back to a
        :meth:`session_ids` snapshot for custom backends.
        """
        return session_id in self.session_ids()

    def __contains__(self, session_id: str) -> bool:
        return self.exists(session_id)

    def __len__(self) -> int:
        return len(self.session_ids())

    def evict_expired(
        self, now: float, *, locks: Optional[StripedLockMap] = None
    ) -> List[str]:
        """Drop every session idle longer than :attr:`ttl`; returns the ids.

        Parameters
        ----------
        now:
            The caller's clock reading (stores never read wall-clock time).
        locks:
            Optional per-session lock map (the service passes its own).
            When given, each candidate is only inspected and deleted under
            a **non-blocking** try-lock of its stripe: a session currently
            inside a feedback round holds its stripe, so eviction skips it
            — it can never yank state out from under a live round — and
            retries naturally on a later tick.

        Returns
        -------
        list of str
            Ids actually evicted (expired sessions skipped as busy are not
            included).  A call landing inside :attr:`sweep_interval` of the
            previous sweep returns ``[]`` without scanning.
        """
        if self.ttl is None:
            return []
        if now - self._last_sweep < self.sweep_interval:
            return []
        self._last_sweep = now
        evicted: List[str] = []
        for session_id in self.session_ids():
            if locks is None:
                if self._evict_one(session_id, now):
                    evicted.append(session_id)
                continue
            with locks.try_lock(session_id) as held:
                if held and self._evict_one(session_id, now):
                    evicted.append(session_id)
        return evicted

    def _evict_one(self, session_id: str, now: float) -> bool:
        """Delete *session_id* iff it is expired; False when missing/fresh."""
        try:
            last_active = self.last_active_of(session_id)
        except SessionError:
            return False  # deleted concurrently — nothing to do
        if now - last_active <= self.ttl:
            return False
        self.delete(session_id)
        return True

    @staticmethod
    def _missing(session_id: str) -> SessionError:
        return SessionError(f"unknown or expired session '{session_id}'")


class InMemorySessionStore(SessionStore):
    """Dict-backed store: fastest, lives and dies with the process.

    A single mutex guards the dict, so puts, deletes and id snapshots from
    concurrent threads are safe.  Note the store hands out **live**
    :class:`SessionState` objects — mutating one concurrently from two
    threads is exactly the race the service's per-session locks exist to
    prevent.
    """

    def __init__(
        self, *, ttl: Optional[float] = None, sweep_interval: float = 0.0
    ) -> None:
        super().__init__(ttl=ttl, sweep_interval=sweep_interval)
        self._states: Dict[str, SessionState] = {}
        self._mutex = threading.Lock()

    def put(self, state: SessionState) -> None:
        """Insert or overwrite *state* under its ``session_id``."""
        with self._mutex:
            self._states[state.session_id] = state

    def get(self, session_id: str) -> SessionState:
        """The live state stored under *session_id* (raises :class:`SessionError`)."""
        with self._mutex:
            try:
                return self._states[session_id]
            except KeyError:
                raise self._missing(session_id) from None

    def delete(self, session_id: str) -> None:
        """Remove *session_id* if present (missing ids are a no-op)."""
        with self._mutex:
            self._states.pop(session_id, None)

    def exists(self, session_id: str) -> bool:
        """Dict membership — O(1)."""
        with self._mutex:
            return session_id in self._states

    def session_ids(self) -> List[str]:
        """A sorted snapshot of the stored ids (stable under concurrent puts)."""
        with self._mutex:
            return sorted(self._states)

    def last_active_of(self, session_id: str) -> float:
        """``last_active`` of one stored session."""
        return self.get(session_id).last_active


class FileSessionStore(SessionStore):
    """On-disk store: one JSON document + one npz bundle per session.

    Arrays round-trip losslessly (float64 in, float64 out), so a session
    reloaded by a fresh service continues bit-identically — the property the
    persistence tests assert.  Instance-backed sessions (strategy objects
    instead of registry names) cannot be serialised and are rejected by
    :meth:`SessionState.to_payload`.

    Crash safety
    ------------
    :meth:`put` never leaves torn files behind.  Both files are written to
    same-directory temporaries and moved into place with :func:`os.replace`
    (each rename is atomic), and they land **arrays first, document last**:
    the JSON document is the commit record (:meth:`get` and
    :meth:`session_ids` key off it), so a crash mid-save can never leave a
    truncated JSON next to a stale npz — every file on disk is complete.
    The one remaining crash window is between the two renames, which leaves
    the *previous* committed document next to the fresher array bundle;
    :meth:`SessionState.from_payload` detects the disagreeing round stamps,
    discards the skewed warm-start scratch, and resumes correctly from the
    committed round with a cold solver seed.

    Read caching
    ------------
    Re-parsing the JSON document and inflating the npz bundle on *every*
    :meth:`get` put ~1–2 ms of pure deserialisation on each feedback
    round's hot path (the cluster soak generator surfaced this).  The
    store therefore keeps a bounded per-process read cache, validated by
    ``stat`` of the JSON commit record: every :func:`os.replace` commit
    produces a fresh ``(inode, mtime_ns, size)``, so a hit is returned
    only while the on-disk document is byte-identical to the one the
    cached state was built from.  Writers in *other* processes (cluster
    workers sharing the directory, a session re-routed off a dead worker)
    invalidate the entry automatically through that stat key — the cache
    never serves a state another process has since overwritten.  Writes
    are unchanged (write-through, atomic, arrays-first); set
    ``cache_size=0`` to recover the always-reparse behaviour.

    Parameters
    ----------
    directory:
        Directory holding the per-session files (created if missing).
    ttl, sweep_interval:
        As for :class:`SessionStore` (the sweep throttle matters most here:
        each sweep is a glob plus one JSON load per stored session).
    cache_size:
        Maximum sessions held in the stat-validated read cache (LRU
        beyond that); ``0`` disables caching.
    """

    def __init__(
        self,
        directory: PathLike,
        *,
        ttl: Optional[float] = None,
        sweep_interval: float = 0.0,
        cache_size: int = 1024,
    ) -> None:
        super().__init__(ttl=ttl, sweep_interval=sweep_interval)
        if cache_size < 0:
            raise ValidationError(
                f"cache_size must be >= 0, got {cache_size}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        # Close intents live in a subdirectory so ``session_ids()`` (a
        # non-recursive ``*.json`` glob) can never mistake one for a session.
        self._intents_dir = self.directory / "close-intents"
        self._intents_dir.mkdir(exist_ok=True)
        self.cache_size = int(cache_size)
        # session_id -> (stat key of the committed JSON, state).  LRU;
        # guarded by a mutex (puts/gets may come from many threads).
        self._cache: "OrderedDict[str, Tuple[Tuple[int, int, int], SessionState]]" = (
            OrderedDict()
        )
        self._cache_mutex = threading.Lock()

    # ------------------------------------------------------------------- api
    def check_storable(self, state: SessionState) -> None:
        """Reject up front what :meth:`put` would reject (see base class).

        Raises
        ------
        ValidationError
            If the state is instance-backed (not serialisable) or its id is
            not filesystem-safe.
        """
        if state.instance is not None:
            raise ValidationError(
                "instance-backed sessions cannot be serialised; open the "
                "session with a registry-named algorithm instead"
            )
        self._safe(state.session_id)

    def put(self, state: SessionState) -> None:
        """Persist *state* as its JSON + npz pair, atomically (see above).

        Raises
        ------
        ValidationError
            If the state is instance-backed (not serialisable) or its id is
            not filesystem-safe.
        """
        _fault_trip("store.before_put", session_id=state.session_id)
        document, arrays = state.to_payload()
        # Arrays first, document last: the document commits the write.
        save_array_bundle(arrays, self._npz_path(state.session_id))
        json_path = self._json_path(state.session_id)
        save_json(document, json_path)
        self._cache_store(state.session_id, json_path, state)

    def get(self, session_id: str) -> SessionState:
        """Load and deserialise one session (raises :class:`SessionError`).

        Served from the stat-validated read cache when the on-disk commit
        record is unchanged since this process last read or wrote it (see
        the class docstring); re-parsed from disk otherwise.
        """
        json_path = self._json_path(session_id)
        cached = self._cache_load(session_id, json_path)
        if cached is not None:
            return cached
        if not json_path.exists():
            raise self._missing(session_id)
        document = load_json(json_path)
        npz_path = self._npz_path(session_id)
        arrays = load_array_bundle(npz_path) if npz_path.exists() else {}
        state = SessionState.from_payload(document, arrays)
        self._cache_store(session_id, json_path, state)
        return state

    def delete(self, session_id: str) -> None:
        """Remove both files if present (missing ids are a no-op)."""
        _fault_trip("store.before_delete", session_id=session_id)
        with self._cache_mutex:
            self._cache.pop(session_id, None)
        self._json_path(session_id).unlink(missing_ok=True)
        self._npz_path(session_id).unlink(missing_ok=True)

    def exists(self, session_id: str) -> bool:
        """One ``Path.exists`` probe of the commit record — O(1)."""
        return self._json_path(session_id).exists()

    def session_ids(self) -> List[str]:
        """Sorted ids of every committed session (JSON documents on disk).

        In-flight temporaries are invisible by construction: they carry a
        ``.tmp-<pid>-<tid>`` tail after the ``.json`` suffix, so the glob
        never matches them.
        """
        return sorted(path.stem for path in self.directory.glob("*.json"))

    def last_active_of(self, session_id: str) -> float:
        """``last_active`` from the cache or the JSON document (no array load)."""
        json_path = self._json_path(session_id)
        cached = self._cache_load(session_id, json_path)
        if cached is not None:
            return cached.last_active
        if not json_path.exists():
            raise self._missing(session_id)
        return float(load_json(json_path).get("last_active", 0.0))

    def evict_expired(
        self, now: float, *, locks: Optional[StripedLockMap] = None
    ) -> List[str]:
        """TTL eviction plus a sweep of crash-orphaned array bundles.

        In addition to the base eviction of expired sessions, every
        ``.npz`` file without a committed JSON document — the residue of a
        crash between the array write and the JSON commit record (or an
        abandoned atomic-save temporary) — is deleted once it is older
        than the TTL.  The age guard compares the file's mtime against
        **wall-clock** time (the same basis mtimes are recorded in — the
        injectable service clock only governs ``last_active`` bookkeeping),
        which keeps the sweep from racing a *live* ``put`` that is between
        its two renames right now.
        """
        # Checked before the base sweep advances the throttle stamp, so the
        # orphan glob runs exactly when the TTL sweep does.
        due = now - self._last_sweep >= self.sweep_interval
        evicted = super().evict_expired(now, locks=locks)
        if due and self.ttl is not None:
            self._sweep_orphans()
        return evicted

    # ----------------------------------------------------------- close intents
    supports_close_intents = True

    def write_close_intent(self, session_id: str, document: Dict) -> None:
        """Persist *document* atomically as the id's write-ahead close record.

        One ``os.replace``-committed JSON file under ``close-intents/``;
        overwriting a previous intent for the same id is fine (a replayed
        close writes the identical document).
        """
        save_json(document, self._intent_path(session_id))
        _fault_trip("store.after_intent_write", session_id=session_id)
        self._publish_intents()

    def read_close_intent(self, session_id: str) -> Optional[Dict]:
        """The stored intent document, or ``None`` when there is none."""
        path = self._intent_path(session_id)
        if not path.exists():
            return None
        try:
            return load_json(path)
        except (OSError, ValueError):
            return None  # racing clear, or unreadable residue

    def clear_close_intent(self, session_id: str) -> None:
        """Remove the id's intent file if present (idempotent)."""
        _fault_trip("store.before_intent_clear", session_id=session_id)
        self._intent_path(session_id).unlink(missing_ok=True)
        self._publish_intents()

    def close_intent_ids(self) -> List[str]:
        """Sorted ids of every pending close intent on disk."""
        return sorted(path.stem for path in self._intents_dir.glob("*.json"))

    def _intent_path(self, session_id: str) -> Path:
        return self._intents_dir / f"{self._safe(session_id)}.json"

    def _publish_intents(self) -> None:
        hub = get_hub()
        if hub.enabled:
            hub.set_gauge("cluster.close_intents", len(self.close_intent_ids()))

    def _sweep_orphans(self) -> None:
        """Delete stale npz bundles whose commit record never landed."""
        wall_now = time.time()
        for bundle in self.directory.glob("*.npz"):
            if bundle.with_suffix(".json").exists():
                continue  # committed session — not ours to touch
            try:
                age = wall_now - bundle.stat().st_mtime
            except OSError:
                continue  # deleted concurrently
            if age > self.ttl:
                bundle.unlink(missing_ok=True)

    # ------------------------------------------------------------- read cache
    @staticmethod
    def _stat_key(json_path: Path) -> Optional[Tuple[int, int, int]]:
        """Identity of the committed document, or ``None`` when missing.

        Every atomic save commits via :func:`os.replace` of a fresh
        temporary, so any writer — this process or another — changes the
        inode; mtime and size guard the remaining edge cases.
        """
        try:
            stat = json_path.stat()
        except OSError:
            return None
        return (stat.st_ino, stat.st_mtime_ns, stat.st_size)

    def _cache_load(
        self, session_id: str, json_path: Path
    ) -> Optional[SessionState]:
        if not self.cache_size:
            return None
        key = self._stat_key(json_path)
        with self._cache_mutex:
            entry = self._cache.get(session_id)
            if entry is None:
                return None
            if key is None or entry[0] != key:
                # Overwritten by another process (or deleted): stale.
                del self._cache[session_id]
                return None
            self._cache.move_to_end(session_id)
            return entry[1]

    def _cache_store(
        self, session_id: str, json_path: Path, state: SessionState
    ) -> None:
        if not self.cache_size:
            return
        key = self._stat_key(json_path)
        if key is None:
            return  # deleted between the write and the stat — don't cache
        with self._cache_mutex:
            self._cache[session_id] = (key, state)
            self._cache.move_to_end(session_id)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)

    # ------------------------------------------------------------- internals
    def _json_path(self, session_id: str) -> Path:
        return self.directory / f"{self._safe(session_id)}.json"

    def _npz_path(self, session_id: str) -> Path:
        return self.directory / f"{self._safe(session_id)}.npz"

    @staticmethod
    def _safe(session_id: str) -> str:
        if not session_id or not all(
            ch.isalnum() or ch in "._-" for ch in session_id
        ):
            raise ValidationError(
                f"session_id must match [A-Za-z0-9._-]+ , got {session_id!r}"
            )
        return session_id
