"""Scheduling of service work: micro-batched flushes and thread-pool fan-out.

Two schedulers share one contract:

* :class:`MicroBatchScheduler` — the cooperative baseline.  Concurrent
  sessions hitting :meth:`RetrievalService.open_sessions` do not each pay a
  full per-query dispatch; their searches queue here and one
  :meth:`~repro.cbir.search.SearchEngine.batch_search` flush serves the
  whole wave through the database's :class:`~repro.index.VectorIndex` (or
  one query-blocked dense scan).  Closing sessions queue their per-round
  :class:`~repro.logdb.session.LogSession` records the same way and land in
  the shared log in one atomic append batch — the log-growth loop the
  paper's LRF-CSVM assumes.  The append target is anything honouring the
  :class:`~repro.logdb.store.LogStore` append contract (a bare store or the
  :class:`~repro.logdb.log_database.LogDatabase` façade over one), so a
  service can ship its close-batches straight into the on-disk
  multi-process segment store.
* :class:`ParallelScheduler` — the same queues and the same single
  ``batch_search`` funnel, plus a thread pool that fans the *independent*
  per-session work of a wave (feedback-round solves, session bookkeeping,
  on-disk store writes) across workers.  NumPy releases the GIL inside the
  dense kernels (Gram matrices, distance scans, SVM decision functions), so
  on a multi-core host this is a real wall-clock win, not just safety.

Thread safety: both schedulers serialise queue access internally, and
:meth:`MicroBatchScheduler.exclusive` brackets one wave's enqueue→flush so
that concurrent waves from different caller threads can never interleave
their queued jobs (each wave still costs exactly one flush).
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.cbir.query import Query, RetrievalResult
from repro.cbir.search import SearchEngine
from repro.exceptions import ValidationError
from repro.logdb.log_database import LogDatabase
from repro.logdb.session import LogSession
from repro.logdb.store import LogStore
from repro.obs import get_hub

__all__ = ["MicroBatchScheduler", "ParallelScheduler"]

#: Anything a scheduler may ship its queued log records into: a bare
#: :class:`LogStore` backend or the :class:`LogDatabase` façade over one —
#: both expose the same atomic-batch ``extend``.
LogTarget = Union[LogStore, LogDatabase]

#: A unit of independent wave work (returns its result; raises to abort).
Job = Callable[[], Any]


@dataclass(frozen=True)
class _SearchJob:
    session_id: str
    query: Query
    top_k: Optional[int]
    #: perf_counter stamp taken at enqueue time; the flush reads it to
    #: report how long the job sat queued (scheduler.queue_wait_seconds).
    enqueued_at: float = field(default=0.0, compare=False)


class MicroBatchScheduler:
    """Queues search/log jobs and executes them in vectorised batches.

    Parameters
    ----------
    search_engine:
        The engine serving first-round retrieval (index-aware).
    log_store:
        The shared log target the closed sessions' rounds are appended to:
        any :class:`~repro.logdb.store.LogStore` backend, or the
        :class:`~repro.logdb.log_database.LogDatabase` façade over one.
    chunk_size:
        Forwarded to :meth:`SearchEngine.batch_search` so arbitrarily large
        waves stay memory-bounded.

    Notes
    -----
    Queue mutation and flushing are guarded by one re-entrant mutex, so the
    scheduler may be shared by concurrently-serving threads; wrap a wave's
    enqueue→flush in :meth:`exclusive` to keep waves from different threads
    from mixing in one flush.
    """

    def __init__(
        self,
        search_engine: SearchEngine,
        log_store: LogTarget,
        *,
        chunk_size: int = 1024,
    ) -> None:
        if chunk_size < 1:
            raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.search_engine = search_engine
        self.log_store = log_store
        self.chunk_size = int(chunk_size)
        self._mutex = threading.RLock()
        self._search_queue: List[_SearchJob] = []
        self._log_queue: List[LogSession] = []
        #: Number of flush passes executed (observability / tests).
        self.flushes_ = 0
        #: Number of searches served batched so far.
        self.searches_served_ = 0

    # -------------------------------------------------------------- workers
    @property
    def max_workers(self) -> int:
        """Worker threads :meth:`run_jobs` may use (1 = serial execution)."""
        return 1

    def run_jobs(self, jobs: Sequence[Job]) -> List[Any]:
        """Execute the wave's independent jobs; results in submission order.

        The baseline runs them serially on the calling thread — which is
        exactly what makes :class:`ParallelScheduler` results comparable:
        the parallel scheduler runs the *same* jobs on a pool and returns
        the same ordered list.

        Parameters
        ----------
        jobs:
            Independent callables; each must touch only its own session's
            state (shared structures it reads must be thread-safe).

        Returns
        -------
        list
            One result per job, in the order the jobs were given.
        """
        if jobs:
            get_hub().observe("scheduler.jobs_per_wave", len(jobs))
        return [job() for job in jobs]

    def shutdown(self) -> None:
        """Release worker resources (a no-op for the serial baseline)."""

    # ------------------------------------------------------------- enqueueing
    @contextmanager
    def exclusive(self) -> Iterator[None]:
        """Hold the scheduler for one wave's enqueue→flush sequence.

        Re-entrant with the internal queue mutex, so queue calls made while
        held do not self-deadlock; concurrent waves serialise here, which is
        what keeps "one wave = one flush" true under parallel serving.
        """
        with self._mutex:
            yield

    def enqueue_search(
        self, session_id: str, query: Query, top_k: Optional[int]
    ) -> None:
        """Queue one first-round search for the next flush.

        Parameters
        ----------
        session_id:
            Key the flushed result will be returned under.
        query:
            The session's query.
        top_k:
            Ranking size (``None`` = full ranking).
        """
        with self._mutex:
            self._search_queue.append(
                _SearchJob(session_id, query, top_k, time.perf_counter())
            )

    def enqueue_log_append(self, session: LogSession) -> None:
        """Queue one log session for the next flush."""
        with self._mutex:
            self._log_queue.append(session)

    @property
    def pending(self) -> Tuple[int, int]:
        """Queued ``(searches, log_appends)`` counts."""
        with self._mutex:
            return len(self._search_queue), len(self._log_queue)

    # ----------------------------------------------------------------- flush
    def flush(self) -> Dict[str, RetrievalResult]:
        """Drain both queues; returns session id → first-round result.

        Searches are grouped by ``top_k`` (waves are nearly always uniform)
        and each group funnels through one ``batch_search`` call; queued log
        sessions land in the shared log target as one atomic
        :meth:`~repro.logdb.store.LogStore.extend` batch, in queue order.

        Returns
        -------
        dict
            Session id → :class:`RetrievalResult` for every queued search.
        """
        hub = get_hub()
        with self._mutex:
            # The log queue is popped only after every search succeeded: a
            # failing search wave must not discard other callers' queued
            # log records (they stay queued for the next flush).
            jobs, self._search_queue = self._search_queue, []
            if hub.enabled and jobs:
                now = time.perf_counter()
                for job in jobs:
                    if job.enqueued_at:
                        hub.observe("scheduler.queue_wait_seconds", now - job.enqueued_at)

            with hub.span("scheduler.flush", searches=len(jobs)) as span:
                results: Dict[str, RetrievalResult] = {}
                groups: Dict[Optional[int], List[_SearchJob]] = {}
                for job in jobs:
                    groups.setdefault(job.top_k, []).append(job)
                for top_k, group in groups.items():
                    batched = self.search_engine.batch_search(
                        [job.query for job in group],
                        top_k=top_k,
                        chunk_size=self.chunk_size,
                    )
                    for job, result in zip(group, batched):
                        results[job.session_id] = result
                self.searches_served_ += len(jobs)

                appends, self._log_queue = self._log_queue, []
                self.log_store.extend(appends)
                span.set(log_appends=len(appends))

            if jobs or appends:
                self.flushes_ += 1
                hub.count("scheduler.flushes")
                hub.count("scheduler.searches_served", len(jobs))
                hub.observe("scheduler.wave_searches", len(jobs))
                hub.observe("scheduler.wave_log_appends", len(appends))
            return results


class ParallelScheduler(MicroBatchScheduler):
    """A :class:`MicroBatchScheduler` that fans wave work across a thread pool.

    First-round searches keep the exact micro-batch discipline (one
    ``batch_search`` flush per wave — that is already the vectorised fast
    path); what parallelises is everything *per-session* and independent:
    feedback-round scoring jobs and post-flush session bookkeeping.  Job
    results come back in submission order, so a service running on this
    scheduler produces rankings and log records bit-identical to the serial
    baseline.

    Parameters
    ----------
    search_engine, log_store, chunk_size:
        As for :class:`MicroBatchScheduler`.
    max_workers:
        Thread-pool size; defaults to ``os.cpu_count()`` (the dense NumPy
        kernels release the GIL, so one worker per core is the useful
        ceiling).

    Notes
    -----
    The pool is created lazily on first use and torn down by
    :meth:`shutdown` (also usable as a context manager).  Jobs must not
    call back into the scheduler's queue API.
    """

    def __init__(
        self,
        search_engine: SearchEngine,
        log_store: LogTarget,
        *,
        chunk_size: int = 1024,
        max_workers: Optional[int] = None,
    ) -> None:
        super().__init__(search_engine, log_store, chunk_size=chunk_size)
        if max_workers is None:
            max_workers = os.cpu_count() or 1
        if max_workers < 1:
            raise ValidationError(f"max_workers must be >= 1, got {max_workers}")
        self._max_workers = int(max_workers)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._executor_mutex = threading.Lock()

    @property
    def max_workers(self) -> int:
        """Configured thread-pool size."""
        return self._max_workers

    def run_jobs(self, jobs: Sequence[Job]) -> List[Any]:
        """Run *jobs* on the pool; results in submission order.

        A single job (or a single-worker pool) short-circuits to the serial
        path — no pool round-trip, bit-identical results either way.  The
        first job exception, if any, is re-raised on the calling thread
        after all jobs have settled.  Submission is serialised with
        :meth:`shutdown`, so a concurrent shutdown can never fail an
        in-flight wave — it waits for the wave's jobs instead.
        """
        if len(jobs) <= 1 or self._max_workers == 1:
            return super().run_jobs(jobs)
        get_hub().observe("scheduler.jobs_per_wave", len(jobs))
        with self._executor_mutex:
            # The whole wave submits under the mutex: shutdown() cannot
            # tear the pool down between two of its submissions (already-
            # submitted futures still complete and yield results after a
            # shutdown(wait=True)).  Each job runs under a copy of the
            # submitting thread's contextvars, so an open tracer span (the
            # feedback-batch span, say) stays the parent of whatever spans
            # the job opens on its worker thread.
            futures = [
                self._pool_locked().submit(contextvars.copy_context().run, job)
                for job in jobs
            ]
        results: List[Any] = []
        first_error: Optional[BaseException] = None
        for future in futures:
            try:
                results.append(future.result())
            except BaseException as error:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = error
                results.append(None)
        if first_error is not None:
            raise first_error
        return results

    def shutdown(self) -> None:
        """Tear the worker pool down (idempotent; pool re-created on use).

        Waits for already-submitted jobs; a wave mid-submission holds the
        executor mutex, so shutdown lines up behind it rather than failing
        its remaining submissions.
        """
        with self._executor_mutex:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=True)

    def __enter__(self) -> "ParallelScheduler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    # ------------------------------------------------------------- internals
    def _pool_locked(self) -> ThreadPoolExecutor:
        """The executor, created lazily; caller holds ``_executor_mutex``."""
        if self._executor is None:
            self._executor = ThreadPoolExecutor(
                max_workers=self._max_workers,
                thread_name_prefix="repro-service",
            )
        return self._executor
