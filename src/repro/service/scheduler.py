"""Micro-batching of service work: first-round searches and log appends.

Concurrent sessions hitting :meth:`RetrievalService.open_sessions` do not
each pay a full per-query dispatch; their searches queue here and one
:meth:`~repro.cbir.search.SearchEngine.batch_search` flush serves the whole
wave through the database's :class:`~repro.index.VectorIndex` (or one
query-blocked dense scan).  Closing sessions queue their per-round
:class:`~repro.logdb.session.LogSession` records the same way and land in
the shared :class:`~repro.logdb.log_database.LogDatabase` in one append pass
— the log-growth loop the paper's LRF-CSVM assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.cbir.query import Query, RetrievalResult
from repro.cbir.search import SearchEngine
from repro.exceptions import ValidationError
from repro.logdb.log_database import LogDatabase
from repro.logdb.session import LogSession

__all__ = ["MicroBatchScheduler"]


@dataclass(frozen=True)
class _SearchJob:
    session_id: str
    query: Query
    top_k: Optional[int]


class MicroBatchScheduler:
    """Queues search/log jobs and executes them in vectorised batches.

    Parameters
    ----------
    search_engine:
        The engine serving first-round retrieval (index-aware).
    log_database:
        The shared log the closed sessions' rounds are appended to.
    chunk_size:
        Forwarded to :meth:`SearchEngine.batch_search` so arbitrarily large
        waves stay memory-bounded.
    """

    def __init__(
        self,
        search_engine: SearchEngine,
        log_database: LogDatabase,
        *,
        chunk_size: int = 1024,
    ) -> None:
        if chunk_size < 1:
            raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.search_engine = search_engine
        self.log_database = log_database
        self.chunk_size = int(chunk_size)
        self._search_queue: List[_SearchJob] = []
        self._log_queue: List[LogSession] = []
        #: Number of flush passes executed (observability / tests).
        self.flushes_ = 0
        #: Number of searches served batched so far.
        self.searches_served_ = 0

    # ------------------------------------------------------------- enqueueing
    def enqueue_search(
        self, session_id: str, query: Query, top_k: Optional[int]
    ) -> None:
        """Queue one first-round search for the next flush."""
        self._search_queue.append(_SearchJob(session_id, query, top_k))

    def enqueue_log_append(self, session: LogSession) -> None:
        """Queue one log session for the next flush."""
        self._log_queue.append(session)

    @property
    def pending(self) -> Tuple[int, int]:
        """Queued ``(searches, log_appends)`` counts."""
        return len(self._search_queue), len(self._log_queue)

    # ----------------------------------------------------------------- flush
    def flush(self) -> Dict[str, RetrievalResult]:
        """Drain both queues; returns session id → first-round result.

        Searches are grouped by ``top_k`` (waves are nearly always uniform)
        and each group funnels through one ``batch_search`` call; queued log
        sessions are appended in queue order.
        """
        jobs, self._search_queue = self._search_queue, []
        results: Dict[str, RetrievalResult] = {}
        groups: Dict[Optional[int], List[_SearchJob]] = {}
        for job in jobs:
            groups.setdefault(job.top_k, []).append(job)
        for top_k, group in groups.items():
            batched = self.search_engine.batch_search(
                [job.query for job in group],
                top_k=top_k,
                chunk_size=self.chunk_size,
            )
            for job, result in zip(group, batched):
                results[job.session_id] = result
        self.searches_served_ += len(jobs)

        appends, self._log_queue = self._log_queue, []
        self.log_database.extend(appends)

        if jobs or appends:
            self.flushes_ += 1
        return results
