"""The ambient observability hub: configure once, instrument everywhere.

Instrumented code throughout the serving stack asks for the process-wide
hub at call time — ``hub = get_hub()`` — and bails out (or no-ops through
null instruments) when it is disabled, which is the default.  Enabling is
one call::

    from repro.obs import InMemoryExporter, configure, disable

    exporter = InMemoryExporter()
    hub = configure(exporters=[exporter])
    ...  # run a workload: spans land in `exporter`, metrics in hub.metrics
    print(render_snapshot())
    disable()

Because deep layers re-read the global on every operation, configuration
takes effect immediately without re-wiring live services, and tests can
flip observability on and off around a single workload.  The hub bundles a
:class:`~repro.obs.metrics.MetricsRegistry` and a
:class:`~repro.obs.tracing.Tracer` and adds the convenience surface the
call sites use (``count``/``observe``/``set_gauge``/``span``/``timer``),
each of which is a guarded one-liner when disabled.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, Optional, Sequence, Union

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracing import NULL_SPAN, Tracer, format_span_tree

__all__ = [
    "Observability",
    "configure",
    "disable",
    "get_hub",
    "render_snapshot",
    "lock_wait_recorder",
]


class _Timer:
    """Context manager that observes its wall-clock duration on exit."""

    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._histogram.observe(time.perf_counter() - self._start)


class _NullTimer:
    """Shared do-nothing timer returned by disabled hubs."""

    __slots__ = ()

    def __enter__(self) -> "_NullTimer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_TIMER = _NullTimer()


class Observability:
    """A metrics registry plus a tracer behind one enable switch.

    ``enabled`` is a plain attribute read — the only cost an instrumented
    call site pays when observability is off.  All convenience methods are
    safe to call on a disabled hub; they simply do nothing.

    Parameters
    ----------
    enabled:
        Master switch; a disabled hub's registry and tracer are disabled
        too.
    exporters:
        Span sinks forwarded to the :class:`~repro.obs.tracing.Tracer`.
    """

    def __init__(self, *, enabled: bool = True, exporters: Sequence[Any] = ()) -> None:
        self.enabled = bool(enabled)
        self.metrics = MetricsRegistry(enabled=self.enabled)
        self.tracer = Tracer(exporters, enabled=self.enabled)
        self.exporters = list(exporters)

    def span(self, name: str, **attributes: Any):
        """Open a tracer span (the shared null span when disabled)."""
        if not self.enabled:
            return NULL_SPAN
        return self.tracer.span(name, **attributes)

    def count(self, name: str, amount: float = 1.0) -> None:
        """Increment counter *name* by *amount* (no-op when disabled)."""
        if self.enabled:
            self.metrics.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        """Record *value* into histogram *name* (no-op when disabled)."""
        if self.enabled:
            self.metrics.histogram(name).observe(value)

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to *value* (no-op when disabled)."""
        if self.enabled:
            self.metrics.gauge(name).set(value)

    def timer(self, name: str):
        """Context manager timing its block into histogram *name*."""
        if not self.enabled:
            return _NULL_TIMER
        return _Timer(self.metrics.histogram(name))

    def flush(self) -> None:
        """Flush every exporter that buffers (e.g. the JSONL writer)."""
        for exporter in self.exporters:
            flush = getattr(exporter, "flush", None)
            if flush is not None:
                flush()


#: The process-wide hub.  Starts disabled: all instrumentation in the
#: serving stack is dormant until :func:`configure` is called.
_HUB = Observability(enabled=False)
_HUB_LOCK = threading.Lock()


def get_hub() -> Observability:
    """The current process-wide hub (disabled by default)."""
    return _HUB


def configure(*, exporters: Sequence[Any] = ()) -> Observability:
    """Install and return a fresh *enabled* hub as the process-wide hub.

    Replaces whatever hub was active; instrumented code picks the new hub
    up on its next operation.  Pass exporters (e.g.
    :class:`~repro.obs.exporters.InMemoryExporter`,
    :class:`~repro.obs.exporters.JSONLExporter`) to capture spans.
    """
    global _HUB
    with _HUB_LOCK:
        _HUB = Observability(enabled=True, exporters=exporters)
        return _HUB


def disable() -> Observability:
    """Install and return a fresh *disabled* hub (restores the default)."""
    global _HUB
    with _HUB_LOCK:
        _HUB = Observability(enabled=False)
        return _HUB


def render_snapshot(
    fmt: str = "text", *, hub: Optional[Observability] = None
) -> Union[str, Dict[str, Any]]:
    """Render the hub's metrics as a text table or a JSON-friendly dict.

    The shape a future ``/metrics`` endpoint would serve: every registered
    counter, gauge and histogram with its current state.

    Parameters
    ----------
    fmt:
        ``"text"`` for an aligned human-readable table, ``"json"`` for a
        plain dict (``json.dumps``-able as is).
    hub:
        Hub to render; defaults to the process-wide hub.
    """
    target = hub if hub is not None else get_hub()
    snapshot = target.metrics.snapshot()
    if fmt == "json":
        return {"enabled": target.enabled, "metrics": snapshot}
    if fmt != "text":
        raise ValueError(f"fmt must be 'text' or 'json', got {fmt!r}")
    if not snapshot:
        return "(no metrics recorded)"
    width = max(len(name) for name in snapshot)
    lines = []
    for name, state in snapshot.items():
        if state["type"] == "histogram":
            detail = (
                f"count={state['count']} mean={state['mean']:.6g} "
                f"min={state['min']:.6g} max={state['max']:.6g}"
                if state["count"]
                else "count=0"
            )
            lines.append(f"{name.ljust(width)}  histogram  {detail}")
        else:
            lines.append(f"{name.ljust(width)}  {state['type']:<9}  value={state['value']:g}")
    return "\n".join(lines)


def lock_wait_recorder(prefix: str) -> Callable[[str, float], None]:
    """A wait callback for the concurrency primitives, bound to *prefix*.

    Returns a callable suitable for ``StripedLockMap(wait_callback=...)`` /
    ``ReadWriteLock(wait_callback=...)``: it records each acquisition's
    wait into the histogram ``{prefix}.{mode}.wait_seconds`` on the hub
    that is current *at call time*, and early-outs when observability is
    disabled — so it can be wired unconditionally at construction.
    """

    def record(mode: str, waited: float) -> None:
        hub = get_hub()
        if hub.enabled:
            hub.metrics.histogram(f"{prefix}.{mode}.wait_seconds").observe(waited)

    return record


def format_current_spans(exporter: Any) -> str:
    """Text tree of every span an :class:`InMemoryExporter` collected."""
    return format_span_tree(exporter.spans)
