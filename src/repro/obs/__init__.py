"""Observability for the serving stack: metrics, per-round tracing, exporters.

``repro.obs`` answers "why was this feedback round slow?" at runtime: a
:class:`MetricsRegistry` of thread-safe counters/gauges/histograms, a
:class:`Tracer` that assembles per-feedback-round span trees (session open →
scheduler wave → coupled-SMO solves → log append) whose parent/child links
survive :class:`~repro.service.scheduler.ParallelScheduler` thread fan-out,
and pluggable exporters (in-memory, crash-safe JSONL).  Everything is off by
default behind a process-wide hub with a true no-op fast path —
:func:`configure` turns it on, :func:`disable` turns it back off, and
:func:`render_snapshot` dumps the collected metrics as text or JSON.

See ``docs/observability.md`` for the metric catalogue, span taxonomy and
measured overhead.
"""

from __future__ import annotations

from repro.obs.exporters import InMemoryExporter, JSONLExporter, SpanExporter
from repro.obs.metrics import DEFAULT_BUCKETS, Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.runtime import (
    Observability,
    configure,
    disable,
    get_hub,
    lock_wait_recorder,
    render_snapshot,
)
from repro.obs.tracing import (
    NULL_SPAN,
    Span,
    Tracer,
    build_span_tree,
    current_span,
    format_span_tree,
)

__all__ = [
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "Tracer",
    "Span",
    "NULL_SPAN",
    "current_span",
    "build_span_tree",
    "format_span_tree",
    "SpanExporter",
    "InMemoryExporter",
    "JSONLExporter",
    "Observability",
    "configure",
    "disable",
    "get_hub",
    "render_snapshot",
    "lock_wait_recorder",
]
