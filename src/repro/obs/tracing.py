"""Per-round span trees with context propagation across thread fan-out.

A :class:`Span` is one timed operation (a feedback round, an SMO solve, a
scheduler flush).  Spans form trees: the :class:`Tracer` keeps the *current*
span in a :class:`contextvars.ContextVar`, so a span opened inside another
span's ``with`` block records it as its parent — including across threads,
because :class:`repro.service.scheduler.ParallelScheduler` submits each job
under :func:`contextvars.copy_context`, which snapshots the submitting
thread's current span into the worker.  That is the whole propagation
mechanism; no thread-locals, no explicit plumbing through call signatures.

A disabled tracer returns a shared :data:`NULL_SPAN` whose methods are
no-ops, mirroring the metrics registry's disabled fast path.  Finished spans
are handed to the tracer's exporters (see :mod:`repro.obs.exporters`);
:func:`build_span_tree` / :func:`format_span_tree` reassemble and
pretty-print the exported flat list.
"""

from __future__ import annotations

import contextvars
import itertools
import threading
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "Span",
    "Tracer",
    "NULL_SPAN",
    "current_span",
    "build_span_tree",
    "format_span_tree",
]

#: The ambient current span, shared by all tracers in the process.  A
#: ContextVar (not a thread-local) so that ``contextvars.copy_context()``
#: carries the active span into scheduler worker threads.
_CURRENT_SPAN: contextvars.ContextVar[Optional["Span"]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

#: Process-wide id mints.  Monotonic counters (not random ids) keep traces
#: deterministic and cheap; uniqueness only needs to hold per process.
_SPAN_IDS = itertools.count(1)
_TRACE_IDS = itertools.count(1)


def current_span() -> Optional["Span"]:
    """The span currently open in this context (``None`` outside any span)."""
    return _CURRENT_SPAN.get()


class Span:
    """One timed, attributed operation in a trace tree.

    Spans are context managers: entering stamps the start time and installs
    the span as the ambient current span; exiting stamps the end, restores
    the previous current span, and exports the finished span.  Use
    :meth:`set` to attach attributes discovered mid-operation (iteration
    counts, result sizes).

    Attributes
    ----------
    name:
        Operation name (``service.round``, ``solver.smo.solve``, ...).
    trace_id:
        Identifier shared by every span of one tree; minted by root spans
        and inherited by children.
    span_id / parent_id:
        This span's id and its parent's (``None`` for roots).
    start / end:
        ``time.perf_counter()`` stamps; ``end`` is ``None`` while open.
    attributes:
        Free-form ``str -> value`` annotations.
    """

    __slots__ = (
        "name",
        "trace_id",
        "span_id",
        "parent_id",
        "start",
        "end",
        "attributes",
        "_tracer",
        "_token",
    )

    def __init__(self, name: str, tracer: Optional["Tracer"], **attributes: Any) -> None:
        self.name = name
        self.trace_id: Optional[int] = None
        self.span_id = next(_SPAN_IDS)
        self.parent_id: Optional[int] = None
        self.start: Optional[float] = None
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes)
        self._tracer = tracer
        self._token: Optional[contextvars.Token] = None

    @property
    def duration(self) -> Optional[float]:
        """Seconds between start and end (``None`` while the span is open)."""
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    def set(self, **attributes: Any) -> "Span":
        """Merge *attributes* into the span's annotations; returns ``self``."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        parent = _CURRENT_SPAN.get()
        if parent is not None:
            self.parent_id = parent.span_id
            self.trace_id = parent.trace_id
        else:
            self.trace_id = next(_TRACE_IDS)
        self._token = _CURRENT_SPAN.set(self)
        self.start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = time.perf_counter()
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        if self._tracer is not None:
            self._tracer._export(self)

    def to_document(self) -> Dict[str, Any]:
        """A JSON-friendly dump of the finished span."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
        }


class _NullSpan:
    """Shared do-nothing span returned by disabled tracers."""

    __slots__ = ()

    # Mirror the real span's read surface so instrumented code can annotate
    # unconditionally.
    name = "null"
    trace_id = None
    span_id = 0
    parent_id = None
    start = None
    end = None
    duration = None
    attributes: Dict[str, Any] = {}

    def set(self, **attributes: Any) -> "_NullSpan":
        """No-op; returns ``self``."""
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


#: The singleton no-op span: entering/exiting/annotating it does nothing.
NULL_SPAN = _NullSpan()


class Tracer:
    """Mints spans and ships the finished ones to exporters.

    Parameters
    ----------
    exporters:
        Objects with an ``export(span)`` method (see
        :mod:`repro.obs.exporters`); called once per finished span, in
        order, from whichever thread closed the span.
    enabled:
        When ``False`` every :meth:`span` call returns the shared
        :data:`NULL_SPAN` and nothing is recorded.
    """

    def __init__(self, exporters: Sequence[Any] = (), *, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._exporters = list(exporters)
        self._lock = threading.Lock()

    def span(self, name: str, **attributes: Any):
        """Open a new span as a context manager.

        The span's parent is whatever span is current in the calling
        context at ``__enter__`` time.
        """
        if not self.enabled:
            return NULL_SPAN
        return Span(name, self, **attributes)

    def add_exporter(self, exporter: Any) -> None:
        """Register another exporter for subsequently finished spans."""
        with self._lock:
            self._exporters.append(exporter)

    def _export(self, span: Span) -> None:
        with self._lock:
            exporters = list(self._exporters)
        for exporter in exporters:
            exporter.export(span)


def build_span_tree(spans: Iterable[Span]) -> List[Dict[str, Any]]:
    """Reassemble exported spans into ``{span, children}`` trees.

    Returns the list of root nodes (spans whose parent is ``None`` or was
    not exported), each a dict with keys ``span`` and ``children``, children
    ordered by start time.
    """
    nodes = {span.span_id: {"span": span, "children": []} for span in spans}
    roots: List[Dict[str, Any]] = []
    for node in nodes.values():
        parent = nodes.get(node["span"].parent_id)
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    order = lambda item: (item["span"].start or 0.0, item["span"].span_id)  # noqa: E731
    for node in nodes.values():
        node["children"].sort(key=order)
    roots.sort(key=order)
    return roots


def format_span_tree(spans: Iterable[Span], *, indent: str = "  ") -> str:
    """Render exported spans as an indented text tree with durations."""
    lines: List[str] = []

    def walk(node: Dict[str, Any], depth: int) -> None:
        span = node["span"]
        duration = span.duration
        stamp = f"{duration * 1e3:.2f} ms" if duration is not None else "open"
        attrs = ""
        if span.attributes:
            joined = ", ".join(f"{k}={v}" for k, v in sorted(span.attributes.items()))
            attrs = f"  [{joined}]"
        lines.append(f"{indent * depth}{span.name}  ({stamp}){attrs}")
        for child in node["children"]:
            walk(child, depth + 1)

    for root in build_span_tree(spans):
        walk(root, 0)
    return "\n".join(lines)
