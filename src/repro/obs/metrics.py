"""Thread-safe metric instruments with a true no-op fast path.

Three instrument families cover the serving stack's needs:

* :class:`Counter` — a monotonically increasing total (solves run, cells
  probed, sessions opened).
* :class:`Gauge` — a point-in-time value that can move both ways (open
  sessions, on-disk segments).
* :class:`Histogram` — a latency/size distribution with fixed log-spaced
  buckets plus running count/sum/min/max, cheap enough to observe on every
  feedback round.

Instruments are minted (and cached) by a :class:`MetricsRegistry`.  A
*disabled* registry hands out shared null instruments whose mutators are
single-``pass`` methods — no locks, no dict lookups on the hot path beyond
the registry call itself — so instrumented code never needs an
``if enabled:`` guard of its own.  Everything here is dependency-free and
process-local; export happens via
:func:`repro.obs.runtime.render_snapshot`.
"""

from __future__ import annotations

import bisect
import math
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds (seconds-oriented, log-spaced from
#: 50µs to ~13s; values above the last edge land in the +Inf bucket).
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(5e-05 * (4.0**i) for i in range(10))


class Counter:
    """A thread-safe monotonically increasing counter."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the running total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current total."""
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-friendly dump of the instrument's state."""
        return {"type": "counter", "value": self.value}


class Gauge:
    """A thread-safe point-in-time value (settable, inc/dec-able)."""

    __slots__ = ("name", "_lock", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._lock = threading.Lock()
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the current value by *amount* (may be negative)."""
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-friendly dump of the instrument's state."""
        return {"type": "gauge", "value": self.value}


class Histogram:
    """A thread-safe distribution with fixed bucket edges.

    Tracks per-bucket counts (cumulative style: a value lands in the first
    bucket whose upper bound is >= the value, with an implicit +Inf
    overflow bucket) plus running ``count``/``sum``/``min``/``max``, which
    is enough for mean and coarse quantiles without storing samples.

    Parameters
    ----------
    name:
        Registry key; also used in rendered snapshots.
    buckets:
        Strictly increasing upper bounds; defaults to
        :data:`DEFAULT_BUCKETS`.
    """

    __slots__ = ("name", "_lock", "_edges", "_counts", "_count", "_sum", "_min", "_max")

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None) -> None:
        edges = tuple(float(edge) for edge in (buckets or DEFAULT_BUCKETS))
        if not edges or any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"histogram {name!r} buckets must be strictly increasing")
        self.name = name
        self._lock = threading.Lock()
        self._edges = edges
        self._counts = [0] * (len(edges) + 1)  # final slot = +Inf overflow
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        slot = bisect.bisect_left(self._edges, value)
        with self._lock:
            self._counts[slot] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        """Number of samples observed."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed samples."""
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        """Mean of observed samples (0.0 when empty)."""
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-friendly dump of the instrument's state."""
        with self._lock:
            return {
                "type": "histogram",
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count if self._count else 0.0,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "buckets": {
                    **{f"le_{edge:g}": n for edge, n in zip(self._edges, self._counts)},
                    "le_inf": self._counts[-1],
                },
            }


class _NullCounter(Counter):
    """Shared do-nothing counter handed out by disabled registries."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op override
        pass


class _NullGauge(Gauge):
    """Shared do-nothing gauge handed out by disabled registries."""

    __slots__ = ()

    def set(self, value: float) -> None:  # noqa: D102 - no-op override
        pass

    def inc(self, amount: float = 1.0) -> None:  # noqa: D102 - no-op override
        pass


class _NullHistogram(Histogram):
    """Shared do-nothing histogram handed out by disabled registries."""

    __slots__ = ()

    def observe(self, value: float) -> None:  # noqa: D102 - no-op override
        pass


#: Module-wide null singletons: every disabled registry returns these, so the
#: disabled fast path allocates nothing and takes no locks.
_NULL_COUNTER = _NullCounter("null")
_NULL_GAUGE = _NullGauge("null")
_NULL_HISTOGRAM = _NullHistogram("null")


class MetricsRegistry:
    """Get-or-create factory and store for named instruments.

    A registry is either *enabled* — instruments are real, minted once per
    name under a lock and cached — or *disabled* — every accessor returns a
    shared null instrument whose mutators are no-ops, making instrumented
    call sites effectively free.

    Instrument names are dot-separated, ``layer.subject.unit`` style
    (``solver.smo.iterations``, ``logdb.append_seconds``); the convention is
    documented in ``docs/observability.md``.

    Parameters
    ----------
    enabled:
        Whether the registry mints real instruments (default ``True``).
    """

    def __init__(self, *, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}

    def _get_or_create(self, name: str, factory, kind: type):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = factory()
            elif not isinstance(instrument, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(instrument).__name__}, not {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        """The counter registered under *name* (created on first use)."""
        if not self.enabled:
            return _NULL_COUNTER
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under *name* (created on first use)."""
        if not self.enabled:
            return _NULL_GAUGE
        return self._get_or_create(name, lambda: Gauge(name), Gauge)

    def histogram(self, name: str, buckets: Optional[Sequence[float]] = None) -> Histogram:
        """The histogram registered under *name* (created on first use).

        ``buckets`` only takes effect on the creating call; later callers
        receive the existing instrument unchanged.
        """
        if not self.enabled:
            return _NULL_HISTOGRAM
        return self._get_or_create(name, lambda: Histogram(name, buckets), Histogram)

    def names(self) -> List[str]:
        """Sorted names of all registered instruments."""
        with self._lock:
            return sorted(self._instruments)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """A JSON-friendly ``{name: instrument.snapshot()}`` dump."""
        with self._lock:
            instruments = list(self._instruments.items())
        return {name: instrument.snapshot() for name, instrument in sorted(instruments)}

    def reset(self) -> None:
        """Drop every registered instrument (tests and demos)."""
        with self._lock:
            self._instruments.clear()
