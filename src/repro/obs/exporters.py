"""Span exporters: in-memory capture for tests, crash-safe JSONL for files.

An exporter receives each finished :class:`~repro.obs.tracing.Span` from
the tracer, from whichever thread closed the span, so both implementations
here are internally locked.  :class:`InMemoryExporter` is the test/demo
workhorse; :class:`JSONLExporter` persists spans as one-JSON-object-per-line
files using the same write-temp-then-:func:`os.replace` idiom as
:mod:`repro.utils.io`, so a crash mid-flush can never leave a torn or
truncated trace file behind — readers see the previous complete flush or
the new one.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import List, Union

from repro.obs.tracing import Span

__all__ = ["SpanExporter", "InMemoryExporter", "JSONLExporter"]

PathLike = Union[str, Path]


class SpanExporter:
    """Interface for span sinks: implement :meth:`export`, optionally :meth:`flush`."""

    def export(self, span: Span) -> None:
        """Receive one finished span (called from the closing thread)."""
        raise NotImplementedError

    def flush(self) -> None:
        """Persist anything buffered; the default is a no-op."""


class InMemoryExporter(SpanExporter):
    """Collects finished spans in a list — the test and demo exporter."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._spans: List[Span] = []

    def export(self, span: Span) -> None:
        """Append *span* to the in-memory list."""
        with self._lock:
            self._spans.append(span)

    @property
    def spans(self) -> List[Span]:
        """A copy of every span exported so far (export order)."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        """Forget all collected spans."""
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


class JSONLExporter(SpanExporter):
    """Writes finished spans to a JSON-lines file, atomically per flush.

    Spans are buffered in memory and flushed — every ``flush_every`` spans
    and on explicit :meth:`flush` — by rewriting the *entire* file via a
    same-directory temp file and :func:`os.replace`.  That trades a little
    rewrite work for the strong guarantee the rest of the repo's stores
    already give: a reader (or a crash) can never observe a torn line.

    Parameters
    ----------
    path:
        Destination ``.jsonl`` file; parent directories are created.
    flush_every:
        Auto-flush after this many buffered spans (default 256).
    """

    def __init__(self, path: PathLike, *, flush_every: int = 256) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.flush_every = int(flush_every)
        self._lock = threading.Lock()
        self._documents: List[str] = []
        self._pending = 0

    def export(self, span: Span) -> None:
        """Buffer *span*; auto-flushes every ``flush_every`` spans."""
        line = json.dumps(span.to_document(), sort_keys=True)
        with self._lock:
            self._documents.append(line)
            self._pending += 1
            should_flush = self._pending >= self.flush_every
        if should_flush:
            self.flush()

    def flush(self) -> None:
        """Atomically rewrite the file with every span exported so far."""
        with self._lock:
            if not self._documents:
                return
            payload = "\n".join(self._documents) + "\n"
            self._pending = 0
        tag = f".tmp-{os.getpid()}-{threading.get_ident()}"
        temp = self.path.with_name(self.path.name + tag)
        try:
            with temp.open("w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(temp, self.path)
        except BaseException:
            temp.unlink(missing_ok=True)
            raise
