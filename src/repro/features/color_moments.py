"""9-dimensional HSV colour-moment feature (paper Section 6.2).

For each HSV channel we compute the first three moments — mean, standard
deviation (the paper says "variance"; the standard deviation keeps all three
moments on comparable scales, which is the common colour-moment convention)
and skewness — yielding a 9-dimensional descriptor.
"""

from __future__ import annotations

import numpy as np

from repro.features.base import FeatureExtractor
from repro.imaging.image import Image

__all__ = ["ColorMomentsExtractor"]


class ColorMomentsExtractor(FeatureExtractor):
    """Colour moments (mean, spread, skewness) per HSV channel."""

    name = "color_moments"

    @property
    def dimension(self) -> int:
        """3 channels x 3 moments = 9 dimensions."""
        return 9

    def extract(self, image: Image) -> np.ndarray:
        hsv = image.hsv()
        moments = []
        for channel in range(3):
            values = hsv[..., channel].ravel()
            mean = float(values.mean())
            std = float(values.std())
            if std < 1e-12:
                skewness = 0.0
            else:
                # Cube-root-signed third central moment (standard colour-moment
                # definition), which stays on a scale comparable to the mean/std.
                third = float(np.mean((values - mean) ** 3))
                skewness = float(np.sign(third) * np.abs(third) ** (1.0 / 3.0))
            moments.extend([mean, std, skewness])
        return np.asarray(moments, dtype=np.float64)
