"""18-bin edge-direction histogram feature (paper Section 6.2).

The image is converted to grayscale, a Canny detector finds edge pixels, and
the gradient directions at those pixels are histogrammed into 18 bins of 20
degrees each over ``[0, 360)``.  The histogram is normalised to sum to one so
images of different sizes and edge densities are comparable.
"""

from __future__ import annotations

import numpy as np

from repro.features.base import FeatureExtractor
from repro.imaging.canny import canny_edges
from repro.imaging.histogram import normalized_histogram
from repro.imaging.image import Image

__all__ = ["EdgeDirectionHistogramExtractor"]


class EdgeDirectionHistogramExtractor(FeatureExtractor):
    """Edge-direction histogram over Canny edge pixels (18 x 20-degree bins)."""

    name = "edge_direction_histogram"

    def __init__(
        self,
        *,
        bins: int = 18,
        sigma: float = 1.0,
        low_threshold: float = 0.1,
        high_threshold: float = 0.2,
    ) -> None:
        self.bins = int(bins)
        self.sigma = float(sigma)
        self.low_threshold = float(low_threshold)
        self.high_threshold = float(high_threshold)

    @property
    def dimension(self) -> int:
        """One dimension per direction bin (18 by default)."""
        return self.bins

    def extract(self, image: Image) -> np.ndarray:
        gray = image.grayscale()
        result = canny_edges(
            gray,
            sigma=self.sigma,
            low_threshold=self.low_threshold,
            high_threshold=self.high_threshold,
        )
        directions = result.edge_directions()
        # Map direction from [-pi, pi] to degrees in [0, 360).
        degrees = np.mod(np.rad2deg(directions), 360.0)
        return normalized_histogram(degrees, bins=self.bins, value_range=(0.0, 360.0))
