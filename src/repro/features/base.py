"""Base class shared by all feature extractors."""

from __future__ import annotations

import abc
from typing import Iterable, List, Sequence, Union

import numpy as np

from repro.exceptions import FeatureExtractionError
from repro.imaging.image import Image
from repro.utils.progress import ProgressReporter

__all__ = ["FeatureExtractor"]


class FeatureExtractor(abc.ABC):
    """Abstract base class for image feature extractors.

    Concrete extractors implement :meth:`extract` for a single image;
    :meth:`extract_batch` stacks per-image vectors into a feature matrix and
    converts unexpected per-image failures into
    :class:`~repro.exceptions.FeatureExtractionError` carrying the image id.
    """

    #: Human readable name of the extractor (used in reports and errors).
    name: str = "feature"

    @property
    @abc.abstractmethod
    def dimension(self) -> int:
        """Length of the feature vector produced per image."""

    @abc.abstractmethod
    def extract(self, image: Image) -> np.ndarray:
        """Extract the feature vector of a single :class:`Image`."""

    def extract_batch(
        self,
        images: Sequence[Image],
        *,
        show_progress: bool = False,
    ) -> np.ndarray:
        """Extract features for a sequence of images into an ``(N, D)`` matrix."""
        if len(images) == 0:
            raise FeatureExtractionError(f"{self.name}: no images to extract")
        reporter = ProgressReporter(
            len(images), label=f"extract[{self.name}]", enabled=show_progress
        )
        rows: List[np.ndarray] = []
        for index, image in enumerate(images):
            try:
                vector = np.asarray(self.extract(image), dtype=np.float64).ravel()
            except Exception as error:  # pragma: no cover - defensive re-raise
                raise FeatureExtractionError(
                    f"{self.name}: extraction failed for image "
                    f"{image.image_id if image.image_id is not None else index}: {error}"
                ) from error
            if vector.shape[0] != self.dimension:
                raise FeatureExtractionError(
                    f"{self.name}: expected a {self.dimension}-d vector, "
                    f"got {vector.shape[0]}-d for image {index}"
                )
            rows.append(vector)
            reporter.update()
        return np.vstack(rows)
