"""Low-level visual feature extraction (Section 6.2 of the paper).

Three extractors reproduce the paper's image representation:

* :class:`ColorMomentsExtractor` — 9-d HSV colour moments (mean, standard
  deviation, skewness per channel);
* :class:`EdgeDirectionHistogramExtractor` — 18-bin edge-direction histogram
  computed on Canny edges (20 degrees per bin);
* :class:`WaveletTextureExtractor` — 9-d entropies of the detail sub-bands of
  a 3-level Daubechies-4 DWT.

:class:`CompositeExtractor` concatenates them into the 36-d vector used by
every retrieval scheme, and :class:`FeatureNormalizer` standardises the
columns so no modality dominates the Euclidean/RBF geometry.
"""

from __future__ import annotations

from repro.features.base import FeatureExtractor
from repro.features.color_moments import ColorMomentsExtractor
from repro.features.composite import CompositeExtractor
from repro.features.edge_histogram import EdgeDirectionHistogramExtractor
from repro.features.normalization import FeatureNormalizer
from repro.features.wavelet_texture import WaveletTextureExtractor

__all__ = [
    "FeatureExtractor",
    "ColorMomentsExtractor",
    "EdgeDirectionHistogramExtractor",
    "WaveletTextureExtractor",
    "CompositeExtractor",
    "FeatureNormalizer",
]
