"""The 36-dimensional composite feature used by all retrieval schemes.

Concatenates the three extractors of the paper — colour moments (9), edge
direction histogram (18) and wavelet texture (9) — into a single descriptor.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.features.base import FeatureExtractor
from repro.features.color_moments import ColorMomentsExtractor
from repro.features.edge_histogram import EdgeDirectionHistogramExtractor
from repro.features.wavelet_texture import WaveletTextureExtractor
from repro.imaging.image import Image

__all__ = ["CompositeExtractor"]


class CompositeExtractor(FeatureExtractor):
    """Concatenation of colour, edge and texture descriptors (36-d default)."""

    name = "composite"

    def __init__(self, extractors: Optional[Sequence[FeatureExtractor]] = None) -> None:
        if extractors is None:
            extractors = (
                ColorMomentsExtractor(),
                EdgeDirectionHistogramExtractor(),
                WaveletTextureExtractor(),
            )
        if len(extractors) == 0:
            raise ValueError("CompositeExtractor needs at least one extractor")
        self.extractors: List[FeatureExtractor] = list(extractors)

    @property
    def dimension(self) -> int:
        """Sum of the component extractor dimensions (9 + 18 + 9 = 36 by default)."""
        return sum(extractor.dimension for extractor in self.extractors)

    def extract(self, image: Image) -> np.ndarray:
        parts = [extractor.extract(image) for extractor in self.extractors]
        return np.concatenate(parts)

    def component_slices(self) -> dict[str, slice]:
        """Mapping of component extractor name to its slice in the vector."""
        slices: dict[str, slice] = {}
        start = 0
        for extractor in self.extractors:
            stop = start + extractor.dimension
            slices[extractor.name] = slice(start, stop)
            start = stop
        return slices
