"""Feature normalisation (fit on the database, applied to queries)."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.arrays import zscore

__all__ = ["FeatureNormalizer"]


class FeatureNormalizer:
    """Column-wise standardisation with frozen statistics.

    The normaliser is fitted once on the database feature matrix; queries and
    any out-of-sample images are transformed with the same statistics so the
    geometry seen by the SVMs and by the Euclidean baseline is consistent.
    """

    def __init__(self) -> None:
        self.mean_: Optional[np.ndarray] = None
        self.std_: Optional[np.ndarray] = None

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.mean_ is not None

    def fit(self, features: np.ndarray) -> "FeatureNormalizer":
        """Learn per-column mean and standard deviation from *features*."""
        matrix = np.asarray(features, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[0] < 1:
            raise ValidationError(
                f"fit expects a non-empty (N, D) matrix, got shape {matrix.shape}"
            )
        _, self.mean_, self.std_ = zscore(matrix)
        return self

    def transform(self, features: np.ndarray) -> np.ndarray:
        """Standardise *features* using the fitted statistics."""
        if not self.is_fitted:
            raise ValidationError("FeatureNormalizer must be fitted before transform")
        matrix = np.atleast_2d(np.asarray(features, dtype=np.float64))
        scaled, _, _ = zscore(matrix, mean=self.mean_, std=self.std_)
        return scaled

    def fit_transform(self, features: np.ndarray) -> np.ndarray:
        """Fit on *features* and return the standardised matrix."""
        return self.fit(features).transform(features)
