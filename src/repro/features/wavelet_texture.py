"""9-dimensional wavelet-texture feature (paper Section 6.2).

The grayscale image undergoes a 3-level 2-D DWT with the Daubechies-4
wavelet; the low-pass approximation is discarded and the entropy of each of
the 9 detail sub-bands (3 orientations x 3 levels) forms the descriptor.
"""

from __future__ import annotations

import numpy as np

from repro.features.base import FeatureExtractor
from repro.imaging.image import Image
from repro.imaging.wavelet import wavedec2
from repro.utils.arrays import stable_entropy

__all__ = ["WaveletTextureExtractor"]


class WaveletTextureExtractor(FeatureExtractor):
    """Entropy of each detail sub-band of a multi-level Daubechies-4 DWT."""

    name = "wavelet_texture"

    def __init__(self, *, levels: int = 3, histogram_bins: int = 32) -> None:
        if levels < 1:
            raise ValueError(f"levels must be >= 1, got {levels}")
        self.levels = int(levels)
        self.histogram_bins = int(histogram_bins)

    @property
    def dimension(self) -> int:
        """3 orientations per level."""
        return 3 * self.levels

    def extract(self, image: Image) -> np.ndarray:
        gray = image.grayscale()
        decomposition = wavedec2(gray, levels=self.levels)
        entropies = [
            stable_entropy(subband, bins=self.histogram_bins)
            for subband in decomposition.detail_subbands()
        ]
        # Images too small for the full pyramid produce fewer sub-bands; pad
        # with zeros so the descriptor length stays fixed.
        while len(entropies) < self.dimension:
            entropies.append(0.0)
        return np.asarray(entropies[: self.dimension], dtype=np.float64)
