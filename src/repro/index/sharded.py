"""Exact scatter-gather sharding over any registered index backend.

:class:`ShardedVectorIndex` partitions the pool across *N* sub-indexes
("shards"), scatters every ``search`` / ``batch_search`` to all of them and
merges the per-shard top-k under the library-wide tie rule — ascending
distance, ties by ascending **global** database index.  Because every
approximate backend already re-ranks candidates with *exact* distances, the
per-shard distances of a vector are bitwise-equal to the distances a single
unsharded scan would compute for it, so the merged ranking is bit-for-bit
identical to the unsharded index whenever the shards are exact (the
property the test-suite asserts for shard counts 1/2/3/7, ties included).

This is the data-parallel half of the cluster story
(:mod:`repro.cluster` is the session-parallel half): the same merge rule
that glues shards inside one process glues worker responses across
processes, so scaling out never changes a ranking.

Two invariants make the merge exact:

* **shard-local tie order matches the global one** — each shard's
  local→global id map is strictly increasing (contiguous slices at build
  time, appends routed as monotonically-increasing blocks), so when a
  shard breaks a distance tie by ascending *local* index it also breaks it
  by ascending *global* index;
* **the gather re-sorts with the global key** — merged candidates are
  ordered by ``np.lexsort((global_ids, distances))``, exactly the rule of
  :meth:`repro.index.base.VectorIndex._rerank`.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from time import perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.index.base import VectorIndex
from repro.obs import get_hub

__all__ = ["ShardedVectorIndex"]

#: Imbalance warning threshold: when the largest shard exceeds the mean
#: shard size by this ratio, :class:`ShardedVectorIndex` counts an
#: ``index.shard_imbalance_warnings`` metric alongside the per-shard
#: ``index.shard_sizes.<pos>`` gauges.  1.5 means "one shard carries 50%
#: more than its fair share" — past that, scatter latency is dominated by
#: the straggler shard and a rebuild (which re-partitions evenly) pays off.
IMBALANCE_WARN_RATIO = 1.5


class ShardedVectorIndex(VectorIndex):
    """Scatter-gather wrapper: one logical index over *N* shard sub-indexes.

    Parameters
    ----------
    num_shards:
        Number of partitions (capped at the number of indexed vectors, so
        every shard is non-empty).
    shard_kind:
        Registry name of the per-shard backend (any backend except
        ``sharded`` itself).
    shard_params:
        Constructor parameters forwarded to every shard backend.
    scatter_workers:
        ``0``/``1`` scatters serially on the calling thread; ``>= 2`` fans
        the per-shard searches across a lazily-created thread pool (NumPy
        releases the GIL in the distance kernels).  The gather is always
        deterministic — results are merged in shard order either way.
    metric:
        Distance metric, as for every backend.
    """

    kind = "sharded"

    def __init__(
        self,
        *,
        num_shards: int = 4,
        shard_kind: str = "brute-force",
        shard_params: Optional[Dict[str, object]] = None,
        scatter_workers: int = 0,
        metric: str = "euclidean",
    ) -> None:
        if int(num_shards) < 1:
            raise ValidationError(f"num_shards must be >= 1, got {num_shards}")
        if shard_kind == self.kind:
            raise ValidationError("sharded shards cannot themselves be sharded")
        if int(scatter_workers) < 0:
            raise ValidationError(
                f"scatter_workers must be >= 0, got {scatter_workers}"
            )
        super().__init__(metric=metric)
        self.num_shards = int(num_shards)
        self.shard_kind = str(shard_kind)
        self.shard_params: Dict[str, object] = dict(shard_params or {})
        self.scatter_workers = int(scatter_workers)
        # Validate the shard backend (and its parameters) eagerly, so a bad
        # configuration fails at construction rather than at build time.
        self._make_shard()
        self._shards: List[VectorIndex] = []
        self._shard_ids: List[np.ndarray] = []
        self._pool: Optional[ThreadPoolExecutor] = None

    # ------------------------------------------------------------------ info
    @property
    def is_exact(self) -> bool:
        """Exact iff every shard is exact (the merge itself never loses)."""
        return bool(self._shards) and all(s.is_exact for s in self._shards)

    @property
    def needs_rebuild(self) -> bool:
        """Whether any shard has a deferred re-index pending."""
        return any(shard.needs_rebuild for shard in self._shards)

    @property
    def shards(self) -> List[VectorIndex]:
        """The shard sub-indexes, in partition order (read-only view)."""
        return list(self._shards)

    def refresh(self) -> None:
        """Drain every shard's deferred maintenance (see base class)."""
        for shard in self._shards:
            shard.refresh()

    # ------------------------------------------------------------------ build
    def _build(self, vectors: np.ndarray) -> None:
        effective = min(self.num_shards, vectors.shape[0])
        self._shards = []
        self._shard_ids = []
        for ids in np.array_split(np.arange(vectors.shape[0], dtype=np.int64), effective):
            shard = self._make_shard()
            shard.build(vectors[ids])
            self._shards.append(shard)
            self._shard_ids.append(ids)
        self._publish_shard_sizes()

    def _add(self, new_vectors: np.ndarray, start_index: int) -> None:
        # Route the whole block to the currently smallest shard.  Appending
        # a block of fresh (maximal) global ids keeps that shard's
        # local→global map strictly increasing, which is what keeps its
        # internal tie-breaking consistent with the global rule.
        target = int(np.argmin([shard.size for shard in self._shards]))
        self._shards[target].add(new_vectors)
        self._shard_ids[target] = np.concatenate(
            [
                self._shard_ids[target],
                np.arange(
                    start_index, start_index + new_vectors.shape[0], dtype=np.int64
                ),
            ]
        )
        self._publish_shard_sizes()

    # ----------------------------------------------------------------- search
    def _search(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        hub = get_hub()
        scatter_started = perf_counter()
        if self._pool_size() > 1 and len(self._shards) > 1:
            pool = self._ensure_pool()
            futures = [
                pool.submit(self._scatter_one, shard_pos, queries, k)
                for shard_pos in range(len(self._shards))
            ]
            gathered = [future.result() for future in futures]
        else:
            gathered = [
                self._scatter_one(shard_pos, queries, k)
                for shard_pos in range(len(self._shards))
            ]
        if hub.enabled:
            hub.observe(
                "index.shard_fanout_seconds", perf_counter() - scatter_started
            )
            hub.count("index.shard_queries", queries.shape[0] * len(self._shards))
        with hub.timer("index.shard_merge_seconds"):
            return self._merge(gathered, k)

    def _scatter_one(
        self, shard_pos: int, queries: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """One shard's top-``min(k, shard.size)``, ids mapped to global."""
        shard = self._shards[shard_pos]
        distances, local = shard.search(queries, min(k, shard.size))
        return distances, self._shard_ids[shard_pos][local]

    @staticmethod
    def _merge(
        gathered: List[Tuple[np.ndarray, np.ndarray]], k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Gather: global top-k of the shard candidates, exact tie rule."""
        distances = np.concatenate([block[0] for block in gathered], axis=1)
        ids = np.concatenate([block[1] for block in gathered], axis=1)
        # Row-wise (distance, ascending global id) — the same lexsort key
        # as VectorIndex._rerank, applied per query along the last axis.
        order = np.lexsort((ids, distances), axis=1)[:, :k]
        return (
            np.take_along_axis(distances, order, axis=1),
            np.take_along_axis(ids, order, axis=1),
        )

    # -------------------------------------------------------------- internals
    def _publish_shard_sizes(self) -> None:
        """Publish per-shard size gauges and flag skewed partitions.

        Emits one ``index.shard_sizes.<pos>`` gauge per shard plus an
        ``index.shard_imbalance`` ratio (largest / mean); ratios above
        :data:`IMBALANCE_WARN_RATIO` additionally count
        ``index.shard_imbalance_warnings``.
        """
        hub = get_hub()
        if not hub.enabled or not self._shards:
            return
        sizes = [shard.size for shard in self._shards]
        for pos, size in enumerate(sizes):
            hub.set_gauge(f"index.shard_sizes.{pos}", size)
        mean = sum(sizes) / len(sizes)
        ratio = (max(sizes) / mean) if mean else 0.0
        hub.set_gauge("index.shard_imbalance", ratio)
        if ratio > IMBALANCE_WARN_RATIO:
            hub.count("index.shard_imbalance_warnings")

    def _make_shard(self) -> VectorIndex:
        from repro.index.registry import make_index

        return make_index(self.shard_kind, metric=self.metric, **self.shard_params)

    def _pool_size(self) -> int:
        return self.scatter_workers

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=min(self.scatter_workers, max(len(self._shards), 1)),
                thread_name_prefix="shard-scatter",
            )
        return self._pool

    # ------------------------------------------------------------ persistence
    def _params(self) -> Dict[str, object]:
        return {
            "num_shards": self.num_shards,
            "shard_kind": self.shard_kind,
            "shard_params": dict(self.shard_params),
            "scatter_workers": self.scatter_workers,
        }
    # The default _restore re-partitions the loaded vectors contiguously —
    # a load may therefore assign vectors to different shards than the saved
    # index had after add() routing, but every ranking is still bit-identical
    # (the merge is exact regardless of the partition).
