"""Exact KD-tree index (Euclidean metric, array-backed nodes).

A classic median-split KD-tree: internal nodes split on the dimension with
the widest spread, leaves hold up to ``leaf_size`` points scanned densely.
Search is exact — branch-and-bound with ``(distance, index)``-ordered
pruning, so results (including tie handling) are bit-for-bit identical to
:class:`repro.index.brute_force.BruteForceIndex`.  KD-trees pay off in low
dimensions; past ~15 dimensions pruning degrades towards a full scan, which
is why the benchmark exercises this backend on a low-dimensional pool.

Growth is **truly incremental** up to a point: :meth:`KDTreeIndex.add`
routes each new point down the existing splitting planes into the leaf that
owns its region and appends it to that leaf's overflow list — an exact
insertion (the point lies in the half-space every ancestor plane assigns
it, so branch-and-bound finds it like any resident point) that costs
``O(depth)`` instead of a full rebuild.  Only once the accumulated overflow
exceeds ``rebuild_threshold`` of the pool does the backend fall back to the
deferred full rebuild (drained lazily by the next search, or explicitly via
:meth:`~repro.index.base.VectorIndex.refresh`), restoring balanced leaves.
"""

from __future__ import annotations

import heapq
import threading
from typing import Dict, List, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.index.base import VectorIndex
from repro.obs import get_hub

__all__ = ["KDTreeIndex"]


class KDTreeIndex(VectorIndex):
    """Exact Euclidean k-NN via a median-split KD-tree.

    Parameters
    ----------
    leaf_size:
        Maximum number of points scanned densely at a leaf.
    metric:
        Must be ``"euclidean"`` (plane-distance pruning is an L2 bound).
    rebuild_threshold:
        Fraction of the pool the leaf-overflow lists may reach before an
        :meth:`add` gives up on incremental insertion and defers a full
        rebuild instead (the escape hatch against degenerate leaves).
        ``0.0`` disables incremental insertion entirely — every ``add``
        defers a rebuild, the pre-incremental behaviour.
    """

    kind = "kd-tree"

    def __init__(
        self,
        *,
        leaf_size: int = 40,
        metric: str = "euclidean",
        rebuild_threshold: float = 0.25,
    ) -> None:
        if metric != "euclidean":
            raise ValidationError(
                f"KDTreeIndex supports only the euclidean metric, got '{metric}'"
            )
        if leaf_size < 1:
            raise ValidationError(f"leaf_size must be >= 1, got {leaf_size}")
        if not 0.0 <= float(rebuild_threshold):
            raise ValidationError(
                f"rebuild_threshold must be >= 0, got {rebuild_threshold}"
            )
        super().__init__(metric=metric)
        self.leaf_size = int(leaf_size)
        self.rebuild_threshold = float(rebuild_threshold)
        self._pending_rebuild = False
        # Serialises the deferred rebuild: racing searches must not both
        # rebuild, nor observe a half-built node table.
        self._rebuild_mutex = threading.Lock()
        # Leaf node → appended global indices living in that leaf's region
        # but outside its dense perm[start:end] block.
        self._extra: Dict[int, List[int]] = {}
        self._num_extra = 0
        #: Number of tree (re)builds performed (observability / tests).
        self.rebuilds_ = 0
        #: Number of points absorbed without a rebuild (observability / tests).
        self.incremental_inserts_ = 0

    @property
    def is_exact(self) -> bool:
        """Exact: branch-and-bound prunes but never drops true neighbours."""
        return True

    @property
    def needs_rebuild(self) -> bool:
        """Whether an :meth:`add` burst left the tree stale (rebuild pending)."""
        return self._pending_rebuild

    def refresh(self) -> None:
        """Rebuild the tree now if an :meth:`add` burst left it stale.

        Double-checked under the internal rebuild mutex, so concurrent
        callers (or searches racing a refresh) trigger exactly one rebuild
        and never see a partially-written node table.  Callers serving
        parallel traffic should invoke this at a write-locked safe point so
        in-flight read-only searches never overlap the rebuild at all.
        """
        if not self._pending_rebuild:
            return
        with self._rebuild_mutex:
            if self._pending_rebuild:
                hub = get_hub()
                with hub.timer("index.rebuild_seconds"):
                    self._build(self._vectors)
                hub.count("index.rebuild_drains")

    # ------------------------------------------------------------------ build
    def _build(self, vectors: np.ndarray) -> None:
        self.rebuilds_ += 1
        # A rebuild absorbs every overflow point back into dense leaves.
        self._extra = {}
        self._num_extra = 0
        self._perm = np.arange(vectors.shape[0], dtype=np.int64)
        # Node arrays (grown as python lists, frozen to numpy at the end):
        # split_dim == -1 marks a leaf owning perm[start:end].
        split_dim: List[int] = []
        split_val: List[float] = []
        left: List[int] = []
        right: List[int] = []
        start_: List[int] = []
        end_: List[int] = []

        def make_node(start: int, end: int) -> int:
            node = len(split_dim)
            split_dim.append(-1)
            split_val.append(0.0)
            left.append(-1)
            right.append(-1)
            start_.append(start)
            end_.append(end)
            if end - start > self.leaf_size:
                points = vectors[self._perm[start:end]]
                dim = int(np.argmax(points.max(axis=0) - points.min(axis=0)))
                mid = (start + end) // 2
                order = np.argpartition(points[:, dim], mid - start)
                self._perm[start:end] = self._perm[start:end][order]
                split_dim[node] = dim
                split_val[node] = float(vectors[self._perm[mid], dim])
                left[node] = make_node(start, mid)
                right[node] = make_node(mid, end)
            return node

        make_node(0, vectors.shape[0])
        self._split_dim = np.asarray(split_dim, dtype=np.int64)
        self._split_val = np.asarray(split_val, dtype=np.float64)
        self._left = np.asarray(left, dtype=np.int64)
        self._right = np.asarray(right, dtype=np.int64)
        self._start = np.asarray(start_, dtype=np.int64)
        self._end = np.asarray(end_, dtype=np.int64)
        # Cleared last: a racing needs_rebuild probe must keep answering
        # True until the node table above is fully in place.
        self._pending_rebuild = False

    def _add(self, new_vectors: np.ndarray, start_index: int) -> None:
        if self._pending_rebuild:
            # Already stale — the pending rebuild re-indexes these too.
            return
        if (
            self._num_extra + new_vectors.shape[0]
            > self.rebuild_threshold * self.size
        ):
            # Too much overflow for the leaves to stay balanced: defer one
            # full rebuild (drained lazily by the next search) instead of
            # paying a rebuild per add() — a burst costs one rebuild total.
            self._pending_rebuild = True
            return
        # Exact incremental insertion: descend the existing planes — a point
        # belongs left iff its coordinate is strictly below the split value,
        # matching the half-space the search's branch-and-bound bound
        # assumes — and park the point in its leaf's overflow list.
        for offset in range(new_vectors.shape[0]):
            vector = new_vectors[offset]
            node = 0
            while self._split_dim[node] >= 0:
                dim = int(self._split_dim[node])
                node = int(
                    self._left[node]
                    if float(vector[dim]) < self._split_val[node]
                    else self._right[node]
                )
            self._extra.setdefault(node, []).append(start_index + offset)
            self._num_extra += 1
            self.incremental_inserts_ += 1
        get_hub().count(
            "index.kd.incremental_inserts", new_vectors.shape[0]
        )

    # ----------------------------------------------------------------- search
    def _search(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        self.refresh()
        num_queries = queries.shape[0]
        distances = np.empty((num_queries, k), dtype=np.float64)
        indices = np.empty((num_queries, k), dtype=np.int64)
        for row in range(num_queries):
            distances[row], indices[row] = self._query_one(queries[row], k)
        return distances, indices

    def _query_one(self, query: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        vectors = self._vectors
        perm = self._perm
        query_sq = float(np.einsum("j,j->", query, query))
        # Max-heap of the current k best under (distance, index) lexicographic
        # order, stored negated for python's min-heap.
        heap: List[Tuple[float, int]] = []

        def visit(node: int) -> None:
            dim = int(self._split_dim[node])
            if dim < 0:
                idxs = perm[self._start[node] : self._end[node]]
                extra = self._extra.get(node)
                if extra:
                    idxs = np.concatenate([idxs, np.asarray(extra, dtype=np.int64)])
                # Same formula AND comparison domain as the brute-force
                # oracle (sqrt of the expansion): comparing squared
                # distances instead would split near-ties the sqrt rounding
                # collapses, breaking the bit-for-bit ranking identity.
                # Computed per row via einsum rather than a GEMM over the
                # leaf block: GEMM roundoff depends on the candidate-matrix
                # shape, so duplicate vectors living in *different* leaves
                # could come back with last-ulp-different distances and
                # silently dodge the (distance, index) tie rule.  The
                # einsum path makes every candidate's distance a pure
                # function of (query, vector), leaf shape be damned.
                candidates = vectors[idxs]
                squared = query_sq + np.einsum("ij,ij->i", candidates, candidates)
                squared -= 2.0 * np.einsum("ij,j->i", candidates, query)
                np.maximum(squared, 0.0, out=squared)
                dists = np.sqrt(squared)
                for dist, index in zip(dists.tolist(), idxs.tolist()):
                    if len(heap) < k:
                        heapq.heappush(heap, (-dist, -index))
                    elif (dist, index) < (-heap[0][0], -heap[0][1]):
                        heapq.heapreplace(heap, (-dist, -index))
                return
            diff = float(query[dim]) - self._split_val[node]
            near, far = (
                (self._left[node], self._right[node])
                if diff < 0.0
                else (self._right[node], self._left[node])
            )
            visit(int(near))
            # The far half-space is no closer than the splitting plane; ties
            # (<=) must still be explored so a far point at exactly the k-th
            # distance but with a smaller index is not missed.
            if len(heap) < k or abs(diff) <= -heap[0][0]:
                visit(int(far))

        visit(0)
        ordered = sorted((-d, -i) for d, i in heap)
        return (
            np.array([d for d, _ in ordered], dtype=np.float64),
            np.array([i for _, i in ordered], dtype=np.int64),
        )

    # ------------------------------------------------------------ persistence
    def _params(self) -> Dict[str, object]:
        return {
            "leaf_size": self.leaf_size,
            "rebuild_threshold": self.rebuild_threshold,
        }

    def _state(self) -> Dict[str, np.ndarray]:
        # Persist the exact node table and overflow lists rather than
        # rebuilding at load: an incrementally-grown tree and a rebuilt one
        # agree on the *ranking* but may disagree on distances in the last
        # float bit (BLAS kernels round differently per candidate-matrix
        # shape), and save/load must be bit-identical.
        extra_nodes: List[int] = []
        extra_ids: List[int] = []
        for node in sorted(self._extra):
            for index in self._extra[node]:
                extra_nodes.append(node)
                extra_ids.append(index)
        return {
            "perm": self._perm,
            "split_dim": self._split_dim,
            "split_val": self._split_val,
            "left": self._left,
            "right": self._right,
            "start": self._start,
            "end": self._end,
            "extra_nodes": np.asarray(extra_nodes, dtype=np.int64),
            "extra_ids": np.asarray(extra_ids, dtype=np.int64),
            "pending": np.asarray(int(self._pending_rebuild), dtype=np.int64),
        }

    def _restore(self, bundle: Dict[str, np.ndarray]) -> None:
        self._vectors = np.asarray(bundle["vectors"], dtype=np.float64)
        if "split_dim" not in bundle:  # legacy bundle without a node table
            self._build(self._vectors)
            return
        self._perm = np.asarray(bundle["perm"], dtype=np.int64)
        self._split_dim = np.asarray(bundle["split_dim"], dtype=np.int64)
        self._split_val = np.asarray(bundle["split_val"], dtype=np.float64)
        self._left = np.asarray(bundle["left"], dtype=np.int64)
        self._right = np.asarray(bundle["right"], dtype=np.int64)
        self._start = np.asarray(bundle["start"], dtype=np.int64)
        self._end = np.asarray(bundle["end"], dtype=np.int64)
        self._extra = {}
        for node, index in zip(
            bundle["extra_nodes"].tolist(), bundle["extra_ids"].tolist()
        ):
            self._extra.setdefault(int(node), []).append(int(index))
        self._num_extra = int(bundle["extra_ids"].shape[0])
        self._pending_rebuild = bool(int(bundle["pending"]))
