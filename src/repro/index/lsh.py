"""Random-hyperplane LSH index (multi-table, exact candidate re-rank).

Each table hashes a vector to a ``num_bits``-bit signature: bit *j* is the
sign of the projection onto random hyperplane *j* (data are centred first so
the hyperplanes pass through the cloud).  A query probes its bucket in every
table, the union of bucket members is re-ranked exactly under the index
metric.  More tables → higher recall, more bits → smaller buckets (faster,
lower recall).  With ``num_bits=0`` every vector lands in the single bucket
of every table, so the search is exhaustive and reproduces the brute-force
ranking bit-for-bit — the setting the property tests pin down.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.index.base import VectorIndex

__all__ = ["LSHIndex"]


class LSHIndex(VectorIndex):
    """Approximate k-NN via multi-table random-hyperplane hashing.

    Parameters
    ----------
    num_tables:
        Number of independent hash tables probed per query.
    num_bits:
        Hyperplanes (signature bits) per table; ``0`` means one exhaustive
        bucket per table (exact search).
    metric:
        Metric of the exact candidate re-rank.
    seed:
        Seed of the hyperplane draw (the index is fully deterministic).
    """

    kind = "lsh"

    def __init__(
        self,
        *,
        num_tables: int = 8,
        num_bits: int = 12,
        metric: str = "euclidean",
        seed: int = 0,
    ) -> None:
        if num_tables < 1:
            raise ValidationError(f"num_tables must be >= 1, got {num_tables}")
        if not 0 <= num_bits <= 62:
            raise ValidationError(f"num_bits must be in [0, 62], got {num_bits}")
        super().__init__(metric=metric)
        self.num_tables = int(num_tables)
        self.num_bits = int(num_bits)
        self.seed = int(seed)

    @property
    def is_exact(self) -> bool:
        """Exact only at ``num_bits=0`` (every point hashes to one bucket)."""
        return self.num_bits == 0

    # ------------------------------------------------------------------ build
    def _build(self, vectors: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        dim = vectors.shape[1]
        self._center = vectors.mean(axis=0)
        self._planes = rng.standard_normal((self.num_tables, self.num_bits, dim))
        self._fill_tables(self._hash(vectors))

    def _fill_tables(self, keys: np.ndarray) -> None:
        self._tables: List[Dict[int, np.ndarray]] = []
        for table in range(self.num_tables):
            buckets: Dict[int, np.ndarray] = {}
            order = np.argsort(keys[:, table], kind="stable")
            sorted_keys = keys[order, table]
            boundaries = np.flatnonzero(np.diff(sorted_keys)) + 1
            for chunk in np.split(order, boundaries):
                buckets[int(keys[chunk[0], table])] = chunk.astype(np.int64)
            self._tables.append(buckets)

    def _add(self, new_vectors: np.ndarray, start_index: int) -> None:
        keys = self._hash(new_vectors)
        offsets = np.arange(start_index, start_index + new_vectors.shape[0], dtype=np.int64)
        for table in range(self.num_tables):
            buckets = self._tables[table]
            for key in np.unique(keys[:, table]):
                members = offsets[keys[:, table] == key]
                existing = buckets.get(int(key))
                buckets[int(key)] = (
                    members if existing is None else np.concatenate([existing, members])
                )

    def _hash(self, vectors: np.ndarray) -> np.ndarray:
        """Signatures of *vectors*: ``(N, num_tables)`` int64 bucket keys."""
        if self.num_bits == 0:
            return np.zeros((vectors.shape[0], self.num_tables), dtype=np.int64)
        centered = vectors - self._center
        weights = (1 << np.arange(self.num_bits, dtype=np.int64))
        keys = np.empty((vectors.shape[0], self.num_tables), dtype=np.int64)
        for table in range(self.num_tables):
            bits = centered @ self._planes[table].T > 0.0
            keys[:, table] = bits @ weights
        return keys

    # ----------------------------------------------------------------- search
    def _candidates(self, queries: np.ndarray) -> Optional[List[np.ndarray]]:
        keys = self._hash(queries)
        out: List[np.ndarray] = []
        for row in range(queries.shape[0]):
            member_lists = [
                members
                for table in range(self.num_tables)
                if (members := self._tables[table].get(int(keys[row, table]))) is not None
            ]
            if not member_lists:
                out.append(np.empty(0, dtype=np.int64))
                continue
            out.append(np.unique(np.concatenate(member_lists)))
        return out

    # ------------------------------------------------------------ persistence
    def _params(self) -> Dict[str, object]:
        return {
            "num_tables": self.num_tables,
            "num_bits": self.num_bits,
            "seed": self.seed,
        }

    def _state(self) -> Dict[str, np.ndarray]:
        # The centre is frozen at build time (vectors added later are hashed
        # with it), so a rebuild over the grown matrix would shift every
        # signature — persist the hashing state instead.
        return {"center": self._center, "planes": self._planes}

    def _restore(self, bundle: Dict[str, np.ndarray]) -> None:
        self._vectors = np.asarray(bundle["vectors"], dtype=np.float64)
        self._center = np.asarray(bundle["center"], dtype=np.float64)
        self._planes = np.asarray(bundle["planes"], dtype=np.float64)
        self._fill_tables(self._hash(self._vectors))
