"""Pluggable approximate-nearest-neighbour indexing.

One estimator-style interface (:class:`VectorIndex`: ``build`` / ``add`` /
``search`` / ``batch_search`` / ``save`` / ``load``) over five
interchangeable backends:

==========================  ===================================================
:class:`BruteForceIndex`    exact full scan — the correctness oracle
:class:`KDTreeIndex`        exact, fast in low dimensions (Euclidean only)
:class:`LSHIndex`           random-hyperplane multi-table hashing
:class:`IVFIndex`           k-means inverted lists with ``n_probe`` pruning
:class:`ShardedVectorIndex` exact scatter-gather over N shard sub-indexes
==========================  ===================================================

Every approximate backend re-ranks its candidate set *exactly* under the
index metric and falls back to a full scan when candidates run short, so a
backend at exhaustive settings (LSH ``num_bits=0``, IVF
``n_probe=n_clusters``) reproduces the brute-force ranking bit-for-bit.
The serving layers (:class:`repro.cbir.SearchEngine`,
:class:`repro.core.lrf_csvm.LRFCSVM` candidate pruning) accept any backend
through this interface.
"""

from __future__ import annotations

from repro.index.base import VectorIndex
from repro.index.brute_force import BruteForceIndex
from repro.index.ivf import IVFIndex
from repro.index.kd_tree import KDTreeIndex
from repro.index.lsh import LSHIndex
from repro.index.registry import available_indexes, load_index, make_index
from repro.index.sharded import ShardedVectorIndex

__all__ = [
    "VectorIndex",
    "BruteForceIndex",
    "KDTreeIndex",
    "LSHIndex",
    "IVFIndex",
    "ShardedVectorIndex",
    "make_index",
    "available_indexes",
    "load_index",
]
