"""Registry / factory for the ANN index backends (mirrors feedback.registry)."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.exceptions import ValidationError
from repro.index.base import VectorIndex
from repro.index.brute_force import BruteForceIndex
from repro.index.ivf import IVFIndex
from repro.index.kd_tree import KDTreeIndex
from repro.index.lsh import LSHIndex
from repro.index.sharded import ShardedVectorIndex

__all__ = ["make_index", "available_indexes", "load_index"]

_FACTORIES: Dict[str, Callable[..., VectorIndex]] = {
    BruteForceIndex.kind: BruteForceIndex,
    KDTreeIndex.kind: KDTreeIndex,
    LSHIndex.kind: LSHIndex,
    IVFIndex.kind: IVFIndex,
    ShardedVectorIndex.kind: ShardedVectorIndex,
}


def available_indexes() -> List[str]:
    """Names of every registered index backend."""
    return sorted(_FACTORIES)


def make_index(kind: str, **kwargs) -> VectorIndex:
    """Instantiate a backend by name, forwarding *kwargs* to its constructor."""
    try:
        factory = _FACTORIES[kind]
    except KeyError:
        raise ValidationError(
            f"unknown index backend '{kind}', expected one of {available_indexes()}"
        ) from None
    return factory(**kwargs)


def load_index(path) -> VectorIndex:
    """Load any serialised index bundle (dispatches on its recorded kind)."""
    return VectorIndex.load(path)
