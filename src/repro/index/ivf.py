"""IVF index: k-means coarse quantizer + inverted lists with n_probe pruning.

The database is partitioned by a k-means quantizer; each centroid owns the
inverted list of the vectors assigned to it.  A query ranks the centroids,
visits the ``n_probe`` nearest lists, and re-ranks their members exactly
under the index metric.  ``n_probe`` is the recall/speed dial: 1 is fastest,
``n_clusters`` scans every list and reproduces the brute-force ranking
bit-for-bit (the property tests assert this).  The quantizer always operates
in Euclidean space regardless of the re-rank metric, which is the standard
IVF construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.exceptions import ValidationError
from repro.index.base import VectorIndex
from repro.obs import get_hub
from repro.utils.arrays import pairwise_squared_distances

__all__ = ["IVFIndex"]

#: Database rows per block when assigning vectors to centroids.
_ASSIGN_BLOCK = 8192


class IVFIndex(VectorIndex):
    """Approximate k-NN via inverted lists under a k-means quantizer.

    Parameters
    ----------
    n_clusters:
        Number of k-means cells (clamped to the database size at build).
    n_probe:
        Inverted lists visited per query; mutable, so sweeps can re-tune a
        built index without re-clustering.
    kmeans_iters:
        Lloyd iterations of the quantizer fit.
    train_size:
        Subsample used to fit the quantizer (``None`` = all vectors).
    seed:
        Seed of the k-means initialisation (the index is deterministic).
    """

    kind = "ivf"

    def __init__(
        self,
        *,
        n_clusters: int = 64,
        n_probe: int = 4,
        metric: str = "euclidean",
        kmeans_iters: int = 10,
        train_size: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValidationError(f"n_clusters must be >= 1, got {n_clusters}")
        if n_probe < 1:
            raise ValidationError(f"n_probe must be >= 1, got {n_probe}")
        if kmeans_iters < 1:
            raise ValidationError(f"kmeans_iters must be >= 1, got {kmeans_iters}")
        if train_size is not None and train_size < 1:
            raise ValidationError(f"train_size must be >= 1, got {train_size}")
        super().__init__(metric=metric)
        self.n_clusters = int(n_clusters)
        self.n_probe = int(n_probe)
        self.kmeans_iters = int(kmeans_iters)
        self.train_size = None if train_size is None else int(train_size)
        self.seed = int(seed)

    @property
    def is_exact(self) -> bool:
        """Exact only when every cluster list is probed."""
        return self.n_probe >= self.n_clusters

    @property
    def num_lists(self) -> int:
        """Number of (non-empty) inverted lists actually built."""
        return int(self._centroids.shape[0])

    # ------------------------------------------------------------------ build
    def _build(self, vectors: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        train = vectors
        if self.train_size is not None and vectors.shape[0] > self.train_size:
            train = vectors[rng.choice(vectors.shape[0], self.train_size, replace=False)]
        centroids = self._kmeans(train, rng)
        assignments = self._assign(vectors, centroids)
        # Drop cells that ended up empty on the full database so every
        # centroid owns a non-empty inverted list.
        occupied = np.unique(assignments)
        self._centroids = centroids[occupied]
        remap = np.empty(centroids.shape[0], dtype=np.int64)
        remap[occupied] = np.arange(occupied.shape[0])
        assignments = remap[assignments]
        self._lists: List[np.ndarray] = [
            np.flatnonzero(assignments == cell).astype(np.int64)
            for cell in range(occupied.shape[0])
        ]

    def _kmeans(self, train: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        k = min(self.n_clusters, train.shape[0])
        centroids = train[rng.choice(train.shape[0], k, replace=False)].copy()
        for _ in range(self.kmeans_iters):
            assignments = self._assign(train, centroids)
            for cell in range(k):
                members = train[assignments == cell]
                if members.shape[0] > 0:
                    centroids[cell] = members.mean(axis=0)
                else:
                    # Reseed an empty cell onto a random training point.
                    centroids[cell] = train[int(rng.integers(train.shape[0]))]
        return centroids

    @staticmethod
    def _assign(vectors: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        assignments = np.empty(vectors.shape[0], dtype=np.int64)
        for start in range(0, vectors.shape[0], _ASSIGN_BLOCK):
            block = vectors[start : start + _ASSIGN_BLOCK]
            assignments[start : start + block.shape[0]] = np.argmin(
                pairwise_squared_distances(block, centroids), axis=1
            )
        return assignments

    def _add(self, new_vectors: np.ndarray, start_index: int) -> None:
        assignments = self._assign(new_vectors, self._centroids)
        offsets = np.arange(start_index, start_index + new_vectors.shape[0], dtype=np.int64)
        for cell in np.unique(assignments):
            members = offsets[assignments == cell]
            self._lists[int(cell)] = np.concatenate([self._lists[int(cell)], members])

    # ----------------------------------------------------------------- search
    def _candidates(self, queries: np.ndarray) -> Optional[List[np.ndarray]]:
        n_probe = min(self.n_probe, self.num_lists)
        cell_distances = pairwise_squared_distances(queries, self._centroids)
        if n_probe < self.num_lists:
            probed = np.argpartition(cell_distances, n_probe - 1, axis=1)[:, :n_probe]
        else:
            probed = np.tile(np.arange(self.num_lists), (queries.shape[0], 1))
        get_hub().count("index.ivf.cells_probed", int(probed.size))
        out: List[np.ndarray] = []
        for row in range(queries.shape[0]):
            members = np.concatenate([self._lists[int(cell)] for cell in probed[row]])
            members.sort()
            out.append(members)
        return out

    # ------------------------------------------------------------ persistence
    def _params(self) -> Dict[str, object]:
        return {
            "n_clusters": self.n_clusters,
            "n_probe": self.n_probe,
            "kmeans_iters": self.kmeans_iters,
            "train_size": self.train_size,
            "seed": self.seed,
        }

    def _state(self) -> Dict[str, np.ndarray]:
        list_sizes = np.array([cell.shape[0] for cell in self._lists], dtype=np.int64)
        return {
            "centroids": self._centroids,
            "list_sizes": list_sizes,
            "list_members": np.concatenate(self._lists) if self._lists else np.empty(0, np.int64),
        }

    def _restore(self, bundle: Dict[str, np.ndarray]) -> None:
        self._vectors = np.asarray(bundle["vectors"], dtype=np.float64)
        self._centroids = np.asarray(bundle["centroids"], dtype=np.float64)
        members = np.asarray(bundle["list_members"], dtype=np.int64)
        boundaries = np.cumsum(np.asarray(bundle["list_sizes"], dtype=np.int64))[:-1]
        self._lists = [cell for cell in np.split(members, boundaries)]
