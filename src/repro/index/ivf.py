"""IVF index: k-means coarse quantizer + inverted lists with n_probe pruning.

The database is partitioned by a k-means quantizer; each centroid owns the
inverted list of the vectors assigned to it.  A query ranks the centroids,
visits the ``n_probe`` nearest lists, and re-ranks their members exactly
under the index metric.  ``n_probe`` is the recall/speed dial: 1 is fastest,
``n_clusters`` scans every list and reproduces the brute-force ranking
bit-for-bit (the property tests assert this).  The quantizer always operates
in Euclidean space regardless of the re-rank metric, which is the standard
IVF construction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.index.base import VectorIndex
from repro.obs import get_hub
from repro.utils.arrays import pairwise_squared_distances

__all__ = ["IVFIndex"]

#: Database rows per block when assigning vectors to centroids.
_ASSIGN_BLOCK = 8192


class IVFIndex(VectorIndex):
    """Approximate k-NN via inverted lists under a k-means quantizer.

    Parameters
    ----------
    n_clusters:
        Number of k-means cells (clamped to the database size at build).
    n_probe:
        Inverted lists visited per query; mutable, so sweeps can re-tune a
        built index without re-clustering.
    kmeans_iters:
        Lloyd iterations of the quantizer fit.
    train_size:
        Subsample used to fit the quantizer (``None`` = all vectors).
    seed:
        Seed of the k-means initialisation (the index is deterministic).
    """

    kind = "ivf"

    def __init__(
        self,
        *,
        n_clusters: int = 64,
        n_probe: int = 4,
        metric: str = "euclidean",
        kmeans_iters: int = 10,
        train_size: Optional[int] = None,
        seed: int = 0,
    ) -> None:
        if n_clusters < 1:
            raise ValidationError(f"n_clusters must be >= 1, got {n_clusters}")
        if n_probe < 1:
            raise ValidationError(f"n_probe must be >= 1, got {n_probe}")
        if kmeans_iters < 1:
            raise ValidationError(f"kmeans_iters must be >= 1, got {kmeans_iters}")
        if train_size is not None and train_size < 1:
            raise ValidationError(f"train_size must be >= 1, got {train_size}")
        super().__init__(metric=metric)
        self.n_clusters = int(n_clusters)
        self.n_probe = int(n_probe)
        self.kmeans_iters = int(kmeans_iters)
        self.train_size = None if train_size is None else int(train_size)
        self.seed = int(seed)

    @property
    def is_exact(self) -> bool:
        """Exact only when every cluster list is probed."""
        return self.n_probe >= self.n_clusters

    @property
    def num_lists(self) -> int:
        """Number of (non-empty) inverted lists actually built."""
        return int(self._centroids.shape[0])

    # ------------------------------------------------------------------ build
    def _build(self, vectors: np.ndarray) -> None:
        rng = np.random.default_rng(self.seed)
        train = vectors
        if self.train_size is not None and vectors.shape[0] > self.train_size:
            train = vectors[rng.choice(vectors.shape[0], self.train_size, replace=False)]
        centroids = self._kmeans(train, rng)
        assignments = self._assign(vectors, centroids)
        # Drop cells that ended up empty on the full database so every
        # centroid owns a non-empty inverted list.
        occupied = np.unique(assignments)
        self._centroids = centroids[occupied]
        remap = np.empty(centroids.shape[0], dtype=np.int64)
        remap[occupied] = np.arange(occupied.shape[0])
        assignments = remap[assignments]
        self._lists: List[np.ndarray] = [
            np.flatnonzero(assignments == cell).astype(np.int64)
            for cell in range(occupied.shape[0])
        ]
        self._repack()

    def _repack(self) -> None:
        """Lay the inverted lists out cell-major for the fused search.

        ``_packed`` holds every list's member vectors contiguously (one
        extra copy of the database, the price of cache-friendly per-cell
        scans), ``_packed_ids`` the matching database indices, and
        ``_offsets[cell] : _offsets[cell + 1]`` the cell's slice of both.
        """
        sizes = np.array([cell.shape[0] for cell in self._lists], dtype=np.int64)
        members = (
            np.concatenate(self._lists) if self._lists else np.empty(0, np.int64)
        )
        self._list_sizes = sizes
        self._offsets = np.concatenate([np.zeros(1, np.int64), np.cumsum(sizes)])
        self._packed_ids = members
        self._packed = self._vectors[members]

    def _kmeans(self, train: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        k = min(self.n_clusters, train.shape[0])
        centroids = train[rng.choice(train.shape[0], k, replace=False)].copy()
        for _ in range(self.kmeans_iters):
            assignments = self._assign(train, centroids)
            for cell in range(k):
                members = train[assignments == cell]
                if members.shape[0] > 0:
                    centroids[cell] = members.mean(axis=0)
                else:
                    # Reseed an empty cell onto a random training point.
                    centroids[cell] = train[int(rng.integers(train.shape[0]))]
        return centroids

    @staticmethod
    def _assign(vectors: np.ndarray, centroids: np.ndarray) -> np.ndarray:
        assignments = np.empty(vectors.shape[0], dtype=np.int64)
        for start in range(0, vectors.shape[0], _ASSIGN_BLOCK):
            block = vectors[start : start + _ASSIGN_BLOCK]
            assignments[start : start + block.shape[0]] = np.argmin(
                pairwise_squared_distances(block, centroids), axis=1
            )
        return assignments

    def _add(self, new_vectors: np.ndarray, start_index: int) -> None:
        assignments = self._assign(new_vectors, self._centroids)
        offsets = np.arange(start_index, start_index + new_vectors.shape[0], dtype=np.int64)
        for cell in np.unique(assignments):
            members = offsets[assignments == cell]
            self._lists[int(cell)] = np.concatenate([self._lists[int(cell)], members])
        self._repack()

    # ----------------------------------------------------------------- search
    def _search(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Cell-major fused probe: one dense distance block per visited cell.

        Queries are grouped by probed cell, and every group pays a single
        vectorised ``(group, |list|)`` distance computation over the cell's
        packed member matrix — no per-query gathers, no python-level
        re-rank loop.  Selection then applies the exact (distance,
        ascending database index) tie rule per query, so the ranking is
        identical to the candidate-list construction it replaces (the
        exhaustive configuration stays bit-for-bit the brute-force scan).
        """
        n_probe = min(self.n_probe, self.num_lists)
        cell_distances = pairwise_squared_distances(queries, self._centroids)
        if n_probe < self.num_lists:
            probed = np.argpartition(cell_distances, n_probe - 1, axis=1)[:, :n_probe]
        else:
            probed = np.tile(np.arange(self.num_lists), (queries.shape[0], 1))
        hub = get_hub()
        hub.count("index.ivf.cells_probed", int(probed.size))
        num_queries = queries.shape[0]
        counts = self._list_sizes[probed].sum(axis=1)
        distances = np.empty((num_queries, k), dtype=np.float64)
        indices = np.empty((num_queries, k), dtype=np.int64)
        served = counts >= k
        fallback_rows = np.flatnonzero(~served)
        if fallback_rows.size:
            # Exact fallback: too few probed members to honour k.
            hub.count("index.candidate_fallbacks", int(fallback_rows.size))
            block_d, block_i = self._full_scan(queries[fallback_rows], k)
            distances[fallback_rows] = block_d
            indices[fallback_rows] = block_i
        hub.count("index.candidates_scanned", int(counts[served].sum()))
        if not np.any(served):
            return distances, indices
        # Group (query, cell) visits by cell so each cell's list is scanned
        # once for all the queries probing it.
        flat_rows = np.repeat(np.arange(num_queries), probed.shape[1])
        flat_cells = probed.ravel()
        keep = served[flat_rows]
        order = np.argsort(flat_cells[keep], kind="stable")
        flat_rows = flat_rows[keep][order]
        flat_cells = flat_cells[keep][order]
        boundaries = np.flatnonzero(np.diff(flat_cells)) + 1
        parts: List[List[np.ndarray]] = [[] for _ in range(num_queries)]
        cells_of: List[List[int]] = [[] for _ in range(num_queries)]
        for group_rows, group_cells in zip(
            np.split(flat_rows, boundaries), np.split(flat_cells, boundaries)
        ):
            cell = int(group_cells[0])
            begin, end = int(self._offsets[cell]), int(self._offsets[cell + 1])
            block = self._distance(queries[group_rows], self._packed[begin:end])
            for position, row in enumerate(group_rows):
                parts[int(row)].append(block[position])
                cells_of[int(row)].append(cell)
        for row in np.flatnonzero(served):
            dist = np.concatenate(parts[row])
            ids = np.concatenate(
                [
                    self._packed_ids[self._offsets[cell] : self._offsets[cell + 1]]
                    for cell in cells_of[row]
                ]
            )
            distances[row], indices[row] = self._select(dist, ids, k)
        return distances, indices

    @staticmethod
    def _select(
        dist: np.ndarray, ids: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Top-k of (dist, ids) under the (distance, ascending index) rule."""
        if 4 * k >= dist.shape[0]:
            # Selection buys nothing when k is a large fraction of the pool.
            order = np.lexsort((ids, dist))[:k]
            return dist[order], ids[order]
        partitioned = np.argpartition(dist, k - 1)[:k]
        kth = dist[partitioned].max()
        # Everything at or below the k-th distance competes; boundary ties
        # resolve by ascending database index, like the stable argsort.
        contenders = np.flatnonzero(dist <= kth)
        order = np.lexsort((ids[contenders], dist[contenders]))[:k]
        chosen = contenders[order]
        return dist[chosen], ids[chosen]

    # ------------------------------------------------------------ persistence
    def _params(self) -> Dict[str, object]:
        return {
            "n_clusters": self.n_clusters,
            "n_probe": self.n_probe,
            "kmeans_iters": self.kmeans_iters,
            "train_size": self.train_size,
            "seed": self.seed,
        }

    def _state(self) -> Dict[str, np.ndarray]:
        list_sizes = np.array([cell.shape[0] for cell in self._lists], dtype=np.int64)
        return {
            "centroids": self._centroids,
            "list_sizes": list_sizes,
            "list_members": np.concatenate(self._lists) if self._lists else np.empty(0, np.int64),
        }

    def _restore(self, bundle: Dict[str, np.ndarray]) -> None:
        self._vectors = np.asarray(bundle["vectors"], dtype=np.float64)
        self._centroids = np.asarray(bundle["centroids"], dtype=np.float64)
        members = np.asarray(bundle["list_members"], dtype=np.int64)
        boundaries = np.cumsum(np.asarray(bundle["list_sizes"], dtype=np.int64))[:-1]
        self._lists = [cell for cell in np.split(members, boundaries)]
        self._repack()
