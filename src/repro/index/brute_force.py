"""Exact brute-force index — the correctness oracle for every ANN backend."""

from __future__ import annotations

import numpy as np

from repro.index.base import VectorIndex

__all__ = ["BruteForceIndex"]


class BruteForceIndex(VectorIndex):
    """Exact nearest-neighbour search by scanning the full database.

    This is the dense O(N·d) path :class:`repro.cbir.search.SearchEngine`
    always used, refactored behind the :class:`VectorIndex` interface: same
    distances, same stable tie-breaking, same results — just addressable as
    an index so it can serve as the recall oracle in benchmarks and as the
    drop-in default backend.
    """

    kind = "brute-force"

    @property
    def is_exact(self) -> bool:
        """Exact by construction (this is the dense-scan oracle)."""
        return True

    def _build(self, vectors: np.ndarray) -> None:
        # No acceleration structure: the vectors themselves are the index.
        pass

    def _add(self, new_vectors: np.ndarray, start_index: int) -> None:
        pass
