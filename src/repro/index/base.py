"""The :class:`VectorIndex` interface shared by every ANN backend.

A vector index answers *k*-nearest-neighbour queries over a fixed feature
matrix.  Backends differ only in **how** they narrow the database down to a
candidate set — the final ordering is always produced by an *exact* re-rank
of the candidates under the index metric, with ties broken by ascending
database index.  That tie rule is identical to the stable ``argsort`` the
dense scan in :class:`repro.cbir.search.SearchEngine` has always used, so an
exhaustively-configured approximate backend reproduces the exact ranking
bit-for-bit (the property the test-suite asserts).

Whenever a backend cannot supply at least *k* candidates for a query it
falls back to the exact full scan for that query, so ``search`` always
returns exactly *k* valid neighbours.

Thread safety
-------------
A **built** index is safely shareable read-only: :meth:`VectorIndex.search`
/ :meth:`VectorIndex.batch_search` touch only immutable arrays, so any
number of threads may query one index concurrently.  The mutators —
:meth:`VectorIndex.build`, :meth:`VectorIndex.add`, :meth:`VectorIndex.load`
— are *not* internally synchronised and need external exclusion against
concurrent searches (the retrieval service brackets them with its
attachment write-lock).  The one read-path subtlety is a *deferred* rebuild
(the KD-tree defers re-indexing after ``add`` to the next search): backends
advertise it through :attr:`VectorIndex.needs_rebuild`, callers drain it at
a safe point with :meth:`VectorIndex.refresh`, and the KD-tree additionally
guards the lazy rebuild with an internal mutex so racing searches can never
observe a half-built tree.
"""

from __future__ import annotations

import abc
import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple, Union

import numpy as np

from repro.exceptions import ValidationError
from repro.obs import get_hub
from repro.utils.io import load_array_bundle, save_array_bundle

if TYPE_CHECKING:  # pragma: no cover - runtime import is lazy (cycle guard)
    from repro.cbir.similarity import DistanceFunction

__all__ = ["VectorIndex"]

PathLike = Union[str, Path]

#: Queries processed per block when a backend scans the full database, so the
#: intermediate (block, N) distance matrix stays memory-bounded.
_QUERY_BLOCK = 64


class VectorIndex(abc.ABC):
    """Common interface of the brute-force / KD-tree / LSH / IVF backends.

    Lifecycle: ``build(vectors)`` once, optionally ``add(vectors)`` to grow
    the corpus, then any number of ``search`` / ``batch_search`` calls.
    ``save``/``load`` round-trip the index through a single ``.npz`` bundle.

    Parameters
    ----------
    metric:
        Distance under which neighbours are ranked (``euclidean``,
        ``manhattan`` or ``cosine``; the KD-tree backend is
        Euclidean-only).
    """

    #: Registry name of the backend (e.g. ``"ivf"``), mirrors
    #: :attr:`repro.feedback.base.RelevanceFeedbackAlgorithm.name`.
    kind: str = "index"

    def __init__(self, *, metric: str = "euclidean") -> None:
        # Lazy import: repro.cbir.search imports VectorIndex, so the distance
        # registry must not be pulled in at module-import time.
        from repro.cbir.similarity import make_distance

        self._distance: "DistanceFunction" = make_distance(metric)
        self.metric = str(metric)
        self._vectors: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ info
    @property
    def is_exact(self) -> bool:
        """Whether this backend's ranking is guaranteed exact (no recall loss).

        Backends whose configuration makes them exhaustive override this
        (brute force and KD-tree always; LSH at ``num_bits=0``; IVF at
        ``n_probe >= n_clusters``).  Callers that *define* their result as
        the exact ranking (e.g. the Euclidean baseline's batch path) use
        this to fall back to a dense scan rather than silently serve
        approximate neighbours.
        """
        return False

    @property
    def is_built(self) -> bool:
        """Whether :meth:`build` has been called."""
        return self._vectors is not None

    @property
    def needs_rebuild(self) -> bool:
        """Whether a deferred re-index is pending (drained by :meth:`refresh`).

        ``False`` for every backend that folds :meth:`add` in eagerly; the
        KD-tree overrides this (it defers its rebuild to the next search).
        Callers serving concurrent searches should check this before a
        serving wave and call :meth:`refresh` under their write lock, so the
        rebuild never races read-only queries.
        """
        return False

    def refresh(self) -> None:
        """Drain any deferred maintenance (no-op unless a backend defers).

        Safe to call at any time on a built index; after it returns,
        :attr:`needs_rebuild` is ``False`` and subsequent searches are pure
        reads.  Backends with deferred work (KD-tree) override this.
        """

    @property
    def size(self) -> int:
        """Number of indexed vectors."""
        return 0 if self._vectors is None else int(self._vectors.shape[0])

    @property
    def dim(self) -> int:
        """Dimensionality of the indexed vectors."""
        if self._vectors is None:
            raise ValidationError(f"{self.kind} index has not been built yet")
        return int(self._vectors.shape[1])

    @property
    def vectors(self) -> np.ndarray:
        """The indexed ``(N, D)`` matrix (read-only view for callers)."""
        if self._vectors is None:
            raise ValidationError(f"{self.kind} index has not been built yet")
        return self._vectors

    def ensure_covers(self, vectors: np.ndarray, *, error_cls: type = ValidationError) -> None:
        """Raise *error_cls* unless this built index indexes exactly *vectors*.

        The single definition of index/feature-store consistency: shape must
        match and the indexed vectors must be the same bytes — an index of
        the right shape built over *different* vectors (stale save file,
        re-rendered corpus, changed normalisation) would silently serve
        wrong neighbours.
        """
        if not self.is_built:
            raise error_cls(f"cannot use an unbuilt {self.kind} index")
        target = np.asarray(vectors)
        if self.size != target.shape[0] or self.dim != target.shape[1]:
            raise error_cls(
                f"index covers {self.size}x{self.dim} vectors but the target "
                f"holds {target.shape[0]}x{target.shape[1]}"
            )
        if not np.array_equal(self._vectors, target):
            raise error_cls(
                "index was built over different vectors than the target's "
                "features (stale or foreign index)"
            )

    # ------------------------------------------------------------- lifecycle
    def build(self, vectors: np.ndarray) -> "VectorIndex":
        """Index *vectors* (rows), replacing any previous contents.

        A mutator: exclude concurrent searches while it runs (see the
        module's thread-safety notes).

        Parameters
        ----------
        vectors:
            Non-empty ``(N, D)`` matrix of finite values; copied, so later
            mutation of the caller's array cannot corrupt the index.

        Returns
        -------
        VectorIndex
            ``self``, for chaining.

        Raises
        ------
        ValidationError
            If *vectors* is empty, not 2-D, or contains non-finite values.
        """
        matrix = self._validate_matrix(vectors)
        if matrix.shape[0] == 0:
            raise ValidationError("cannot build an index over zero vectors")
        self._vectors = matrix.copy()
        self._build(self._vectors)
        return self

    def add(self, vectors: np.ndarray) -> "VectorIndex":
        """Append *vectors* to the index (database indices continue upward).

        A mutator: exclude concurrent searches while it runs.  Backends may
        defer the actual re-index (see :attr:`needs_rebuild`).

        Parameters
        ----------
        vectors:
            ``(M, D)`` matrix with the index's dimensionality; builds the
            index outright when called before :meth:`build`.

        Returns
        -------
        VectorIndex
            ``self``, for chaining.

        Raises
        ------
        ValidationError
            If the dimensionality differs from the indexed vectors or the
            values are malformed.
        """
        if self._vectors is None:
            return self.build(vectors)
        matrix = self._validate_matrix(vectors)
        if matrix.shape[1] != self.dim:
            raise ValidationError(
                f"added vectors have dimension {matrix.shape[1]}, index uses {self.dim}"
            )
        start = self.size
        self._vectors = np.vstack([self._vectors, matrix])
        self._add(self._vectors[start:], start)
        return self

    # ---------------------------------------------------------------- search
    def search(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Nearest *k* indexed vectors for each query row.

        Parameters
        ----------
        queries:
            One query vector or a ``(Q, D)`` batch.
        k:
            Number of neighbours per query; must not exceed :attr:`size`.

        Returns
        -------
        (distances, indices):
            ``(Q, k)`` arrays; row *q* lists the neighbours of query *q* by
            increasing distance (ties by ascending database index).

        Raises
        ------
        ValidationError
            If the index is unbuilt, the queries are malformed, or *k* is
            out of ``[1, size]``.

        Notes
        -----
        Read-only and safe to call from any number of threads concurrently
        on a built index (drain :attr:`needs_rebuild` first via
        :meth:`refresh` when serving the KD-tree backend in parallel).
        """
        if self._vectors is None:
            raise ValidationError(f"{self.kind} index has not been built yet")
        matrix = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if matrix.ndim != 2:
            raise ValidationError(f"queries must be 1-D or 2-D, got ndim={matrix.ndim}")
        if matrix.shape[1] != self.dim:
            raise ValidationError(
                f"queries have dimension {matrix.shape[1]}, index uses {self.dim}"
            )
        k = int(k)
        if not 1 <= k <= self.size:
            raise ValidationError(f"k must be in [1, {self.size}], got {k}")
        hub = get_hub()
        if not hub.enabled:
            return self._search(matrix, k)
        with hub.span(
            "index.search", kind=self.kind, queries=int(matrix.shape[0]), k=k
        ) as span:
            result = self._search(matrix, k)
        hub.count("index.queries", matrix.shape[0])
        hub.observe("index.search_seconds", span.duration)
        return result

    def batch_search(
        self, queries: np.ndarray, k: int, *, chunk_size: int = 1024
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Memory-bounded :meth:`search` over an arbitrarily large query set.

        Parameters
        ----------
        queries:
            ``(Q, D)`` query matrix (any ``Q``, including huge).
        k:
            Neighbours per query, as in :meth:`search`.
        chunk_size:
            Queries served per internal :meth:`search` call, bounding the
            intermediate distance blocks.

        Returns
        -------
        (distances, indices):
            ``(Q, k)`` arrays, identical to one unchunked :meth:`search`.

        Raises
        ------
        ValidationError
            If ``chunk_size < 1`` or :meth:`search` rejects the queries.

        Notes
        -----
        **Determinism across backends.**  Chunking never changes results —
        each query's neighbours depend only on that query — and every
        backend resolves distance ties by ascending database index (the
        exact re-rank's ``lexsort``, bit-for-bit the stable ``argsort``
        rule).  Exhaustively-configured backends (brute force, KD-tree,
        IVF at ``n_probe >= n_clusters``, LSH at ``num_bits=0``; see
        :attr:`is_exact`) therefore return **identical** ``indices``
        arrays for the same queries; reported *distances* agree only up to
        floating-point roundoff (backends accumulate them differently).
        Consumers needing backend-invariant derived artifacts key off the
        indices alone — e.g.
        :class:`repro.graph.builder.KNNGraphBuilder` recomputes edge
        distances from the features so its affinity graphs are
        bit-identical regardless of the backend that built them
        (property-tested in ``tests/test_index.py``).
        """
        if chunk_size < 1:
            raise ValidationError(f"chunk_size must be >= 1, got {chunk_size}")
        matrix = np.atleast_2d(np.asarray(queries, dtype=np.float64))
        if matrix.shape[0] == 0:
            return self.search(matrix, k)
        distances: List[np.ndarray] = []
        indices: List[np.ndarray] = []
        for start in range(0, matrix.shape[0], chunk_size):
            block_d, block_i = self.search(matrix[start : start + chunk_size], k)
            distances.append(block_d)
            indices.append(block_i)
        return np.vstack(distances), np.vstack(indices)

    # ----------------------------------------------------------- persistence
    def save(self, path: PathLike) -> Path:
        """Serialise the index to a single ``.npz`` bundle at *path*.

        Parameters
        ----------
        path:
            Destination file (``.npz`` appended when missing); written
            atomically via :func:`repro.utils.io.save_array_bundle`.

        Returns
        -------
        Path
            The path actually written.

        Raises
        ------
        ValidationError
            If the index has not been built.
        """
        if self._vectors is None:
            raise ValidationError(f"cannot save an unbuilt {self.kind} index")
        meta = {"kind": self.kind, "metric": self.metric, "params": self._params()}
        bundle: Dict[str, np.ndarray] = {
            "__meta__": np.array(json.dumps(meta)),
            "vectors": self._vectors,
        }
        bundle.update(self._state())
        return save_array_bundle(bundle, path)

    @staticmethod
    def load(path: PathLike) -> "VectorIndex":
        """Reconstruct an index saved by :meth:`save` (any backend).

        Parameters
        ----------
        path:
            A bundle previously written by :meth:`save`.

        Returns
        -------
        VectorIndex
            A fresh, fully-built index of the serialised backend and
            parameters.

        Raises
        ------
        ValidationError
            If *path* is not a serialised :class:`VectorIndex` bundle.
        """
        from repro.index.registry import make_index

        bundle = load_array_bundle(path)
        try:
            meta = json.loads(bundle.pop("__meta__").item())
        except KeyError:
            raise ValidationError(f"{path} is not a serialised VectorIndex") from None
        index = make_index(meta["kind"], metric=meta["metric"], **meta["params"])
        index._restore(bundle)
        return index

    # ------------------------------------------------------- backend hooks
    @abc.abstractmethod
    def _build(self, vectors: np.ndarray) -> None:
        """Construct the backend's acceleration structure over *vectors*."""

    def _add(self, new_vectors: np.ndarray, start_index: int) -> None:
        """Fold freshly-appended vectors in; the default rebuilds from scratch."""
        self._build(self._vectors)

    def _candidates(self, queries: np.ndarray) -> Optional[List[np.ndarray]]:
        """Per-query candidate sets (ascending indices), ``None`` = scan all."""
        return None

    def _search(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Default search: candidate generation + exact re-rank."""
        candidate_lists = self._candidates(queries)
        if candidate_lists is None:
            return self._full_scan(queries, k)
        num_queries = queries.shape[0]
        distances = np.empty((num_queries, k), dtype=np.float64)
        indices = np.empty((num_queries, k), dtype=np.int64)
        scanned = 0
        fallbacks = 0
        for row, candidates in enumerate(candidate_lists):
            if candidates is None or candidates.shape[0] < k:
                # Exact fallback: too few candidates to honour k.
                fallbacks += 1
                block_d, block_i = self._full_scan(queries[row : row + 1], k)
                distances[row] = block_d[0]
                indices[row] = block_i[0]
                continue
            scanned += int(candidates.shape[0])
            distances[row], indices[row] = self._rerank(queries[row], candidates, k)
        hub = get_hub()
        hub.count("index.candidates_scanned", scanned)
        if fallbacks:
            hub.count("index.candidate_fallbacks", fallbacks)
        return distances, indices

    # ------------------------------------------------------------ shared bits
    def _rerank(
        self, query: np.ndarray, candidates: np.ndarray, k: int
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Exact distances over *candidates*, k smallest by (distance, index)."""
        dist = self._distance(query[None, :], self._vectors[candidates])[0]
        order = np.lexsort((candidates, dist))[:k]
        return dist[order], candidates[order]

    def _full_scan(self, queries: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
        """Exact top-k by scanning every indexed vector (query-blocked).

        Small ``k`` uses an ``argpartition`` selection (O(N) instead of a
        full O(N log N) sort per query) with explicit boundary-tie handling,
        so the output — including the (distance, ascending index) tie rule —
        is bit-for-bit what the stable full ``argsort`` produces.
        """
        num_queries = queries.shape[0]
        hub = get_hub()
        hub.count("index.full_scan_queries", num_queries)
        hub.count("index.candidates_scanned", num_queries * self.size)
        distances = np.empty((num_queries, k), dtype=np.float64)
        indices = np.empty((num_queries, k), dtype=np.int64)
        for start in range(0, num_queries, _QUERY_BLOCK):
            block = queries[start : start + _QUERY_BLOCK]
            dist = self._distance(block, self._vectors)
            if 4 * k >= dist.shape[1]:
                # Selection buys nothing when k is a large fraction of N.
                order = np.argsort(dist, axis=1, kind="stable")[:, :k]
                indices[start : start + block.shape[0]] = order
                distances[start : start + block.shape[0]] = np.take_along_axis(
                    dist, order, axis=1
                )
                continue
            partitioned = np.argpartition(dist, k - 1, axis=1)[:, :k]
            kth = np.take_along_axis(dist, partitioned, axis=1).max(axis=1)
            for row in range(block.shape[0]):
                row_dist = dist[row]
                # Everything at or below the k-th distance competes; ties at
                # the boundary resolve by ascending database index, exactly
                # like the stable argsort.
                contenders = np.flatnonzero(row_dist <= kth[row])
                order = np.lexsort((contenders, row_dist[contenders]))[:k]
                indices[start + row] = contenders[order]
                distances[start + row] = row_dist[contenders[order]]
        return distances, indices

    @staticmethod
    def _validate_matrix(vectors: np.ndarray) -> np.ndarray:
        matrix = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        if matrix.ndim != 2:
            raise ValidationError(f"vectors must form a 2-D matrix, got ndim={matrix.ndim}")
        if not np.all(np.isfinite(matrix)):
            raise ValidationError("vectors must be finite")
        return matrix

    # ------------------------------------------------- persistence hooks
    def _params(self) -> Dict[str, object]:
        """JSON-serialisable constructor parameters (beyond ``metric``)."""
        return {}

    def _state(self) -> Dict[str, np.ndarray]:
        """Extra arrays to persist beyond the raw vectors."""
        return {}

    def _restore(self, bundle: Dict[str, np.ndarray]) -> None:
        """Rebuild from a loaded bundle; the default re-indexes the vectors."""
        self._vectors = np.asarray(bundle["vectors"], dtype=np.float64)
        self._build(self._vectors)
