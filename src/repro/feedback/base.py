"""Base class and shared context for relevance-feedback algorithms.

Algorithms are **stateless strategies**: everything a feedback round needs
travels in the :class:`FeedbackContext`, and anything worth carrying from one
round to the next (warm-start multipliers, diagnostics) lives in the
context's optional :class:`FeedbackMemory` — an explicit, serializable bag of
arrays owned by the caller (typically a
:class:`repro.service.SessionState`).  A context without a memory behaves
exactly like the pre-service single-shot path.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.cbir.database import ImageDatabase
from repro.cbir.query import Query, RetrievalResult
from repro.exceptions import ValidationError
from repro.logdb.log_database import LogSnapshot

__all__ = ["FeedbackMemory", "FeedbackContext", "RelevanceFeedbackAlgorithm"]


@dataclass
class FeedbackMemory:
    """Serializable per-session scratch carried across feedback rounds.

    Attributes
    ----------
    arrays:
        Named numpy arrays (e.g. warm-start α vectors keyed by the database
        indices they belong to).  Arrays round-trip losslessly through the
        session stores, so a reloaded session resumes bit-identically.
    meta:
        JSON-serialisable diagnostics (solver counters, path taken, round
        count).  Strategies may read and write both freely; an empty memory
        must always be a valid starting point.
    """

    arrays: Dict[str, np.ndarray] = field(default_factory=dict)
    meta: Dict[str, Any] = field(default_factory=dict)

    def get_array(self, key: str) -> Optional[np.ndarray]:
        """The stored array under *key*, or ``None``."""
        return self.arrays.get(key)

    def set_arrays(self, **named: np.ndarray) -> None:
        """Store every keyword argument as a named array."""
        for key, value in named.items():
            self.arrays[key] = np.asarray(value)

    def drop(self, *keys: str) -> None:
        """Remove the named arrays if present."""
        for key in keys:
            self.arrays.pop(key, None)


@dataclass(frozen=True)
class FeedbackContext:
    """Everything an algorithm needs for one feedback round.

    Attributes
    ----------
    database:
        The image database (visual features + feedback log).
    query:
        The query being refined.
    labeled_indices:
        Database indices of the images the user has judged this round.
    labels:
        ±1 relevance judgements aligned with *labeled_indices*.
    memory:
        Optional per-session :class:`FeedbackMemory` the strategy may read
        and update; ``None`` (the default) runs the round statelessly.
    log:
        Optional :class:`~repro.logdb.log_database.LogSnapshot` the round
        should read the feedback log through.  The service and the
        evaluation protocol capture one snapshot per round batch, so every
        strategy in the batch sees one consistent relevance matrix even
        while concurrent sessions keep appending; ``None`` (the default)
        makes :meth:`log_snapshot` capture a fresh one on demand.
    """

    database: ImageDatabase
    query: Query
    labeled_indices: np.ndarray
    labels: np.ndarray
    memory: Optional[FeedbackMemory] = None
    log: Optional[LogSnapshot] = None

    def __post_init__(self) -> None:
        indices = np.asarray(self.labeled_indices, dtype=np.int64).ravel()
        labels = np.asarray(self.labels, dtype=np.float64).ravel()
        if indices.shape[0] != labels.shape[0]:
            raise ValidationError(
                f"labeled_indices ({indices.shape[0]}) and labels ({labels.shape[0]}) "
                "must have equal length"
            )
        if indices.shape[0] == 0:
            raise ValidationError("a feedback round needs at least one labelled image")
        if not np.all(np.isin(labels, (-1.0, 1.0))):
            raise ValidationError("labels must be +1 or -1")
        object.__setattr__(self, "labeled_indices", indices)
        object.__setattr__(self, "labels", labels)

    @property
    def num_labeled(self) -> int:
        """Number of labelled images in this round."""
        return int(self.labeled_indices.shape[0])

    @property
    def positive_indices(self) -> np.ndarray:
        """Labelled images judged relevant."""
        return self.labeled_indices[self.labels > 0]

    @property
    def negative_indices(self) -> np.ndarray:
        """Labelled images judged irrelevant."""
        return self.labeled_indices[self.labels < 0]

    @property
    def has_both_classes(self) -> bool:
        """Whether the feedback contains both relevant and irrelevant images."""
        return self.positive_indices.size > 0 and self.negative_indices.size > 0

    def labeled_features(self) -> np.ndarray:
        """Visual feature matrix of the labelled images."""
        return self.database.features_of(self.labeled_indices)

    def log_snapshot(self) -> LogSnapshot:
        """The log snapshot this round reads ``R`` through.

        Returns the injected :attr:`log` when the round's orchestrator
        captured one, otherwise captures a fresh snapshot from the
        database's log — either way, every subsequent log read of the round
        should go through the returned object so the round is internally
        consistent under concurrent appends.
        """
        if self.log is not None:
            return self.log
        return self.database.log_database.snapshot()

    def labeled_log_vectors(self) -> np.ndarray:
        """User-log vectors of the labelled images (via :meth:`log_snapshot`)."""
        return self.log_snapshot().log_vectors(self.labeled_indices)


class RelevanceFeedbackAlgorithm(abc.ABC):
    """Interface shared by every retrieval / relevance-feedback scheme."""

    #: Registry name of the algorithm, e.g. ``"rf-svm"``.
    name: str = "feedback"

    @abc.abstractmethod
    def score(self, context: FeedbackContext) -> np.ndarray:
        """Relevance score of **every** database image (higher = more relevant)."""

    def rank(self, context: FeedbackContext, *, top_k: Optional[int] = None) -> RetrievalResult:
        """Rank all database images by decreasing relevance score."""
        scores = np.asarray(self.score(context), dtype=np.float64).ravel()
        if scores.shape[0] != context.database.num_images:
            raise ValidationError(
                f"{self.name}: score() must return one score per database image "
                f"({context.database.num_images}), got {scores.shape[0]}"
            )
        ranking = np.argsort(-scores, kind="stable")
        if top_k is not None:
            ranking = ranking[: int(top_k)]
        return RetrievalResult(
            image_indices=ranking,
            scores=scores[ranking],
            query=context.query,
            algorithm=self.name,
        )

    def rank_batch(
        self, contexts: Sequence[FeedbackContext], *, top_k: Optional[int] = None
    ) -> List[RetrievalResult]:
        """Rank one result per context.

        The default runs :meth:`rank` per context in order, so any strategy
        is batch-callable; schemes whose scoring vectorises across queries
        (e.g. :class:`~repro.feedback.euclidean.EuclideanFeedback`) override
        this to fold the whole batch into one index/dense-scan pass.
        """
        return [self.rank(context, top_k=top_k) for context in contexts]

    # ------------------------------------------------------------ shared bits
    @staticmethod
    def _fallback_scores(context: FeedbackContext) -> np.ndarray:
        """Prototype-based fallback when an SVM cannot be trained.

        With only one feedback class (e.g. the user marked everything
        relevant) a discriminative model is undefined; we fall back to the
        negative distance to the mean of the positive examples (or, lacking
        positives, the positive distance to the mean of the negatives).
        """
        features = context.database.features
        positives = context.positive_indices
        negatives = context.negative_indices
        if positives.size > 0:
            prototype = context.database.features_of(positives).mean(axis=0)
            return -np.linalg.norm(features - prototype, axis=1)
        prototype = context.database.features_of(negatives).mean(axis=0)
        return np.linalg.norm(features - prototype, axis=1)
