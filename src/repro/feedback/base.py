"""Base class and shared context for relevance-feedback algorithms."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.cbir.database import ImageDatabase
from repro.cbir.query import Query, RetrievalResult
from repro.exceptions import ValidationError

__all__ = ["FeedbackContext", "RelevanceFeedbackAlgorithm"]


@dataclass(frozen=True)
class FeedbackContext:
    """Everything an algorithm needs for one feedback round.

    Attributes
    ----------
    database:
        The image database (visual features + feedback log).
    query:
        The query being refined.
    labeled_indices:
        Database indices of the images the user has judged this round.
    labels:
        ±1 relevance judgements aligned with *labeled_indices*.
    """

    database: ImageDatabase
    query: Query
    labeled_indices: np.ndarray
    labels: np.ndarray

    def __post_init__(self) -> None:
        indices = np.asarray(self.labeled_indices, dtype=np.int64).ravel()
        labels = np.asarray(self.labels, dtype=np.float64).ravel()
        if indices.shape[0] != labels.shape[0]:
            raise ValidationError(
                f"labeled_indices ({indices.shape[0]}) and labels ({labels.shape[0]}) "
                "must have equal length"
            )
        if indices.shape[0] == 0:
            raise ValidationError("a feedback round needs at least one labelled image")
        if not np.all(np.isin(labels, (-1.0, 1.0))):
            raise ValidationError("labels must be +1 or -1")
        object.__setattr__(self, "labeled_indices", indices)
        object.__setattr__(self, "labels", labels)

    @property
    def num_labeled(self) -> int:
        """Number of labelled images in this round."""
        return int(self.labeled_indices.shape[0])

    @property
    def positive_indices(self) -> np.ndarray:
        """Labelled images judged relevant."""
        return self.labeled_indices[self.labels > 0]

    @property
    def negative_indices(self) -> np.ndarray:
        """Labelled images judged irrelevant."""
        return self.labeled_indices[self.labels < 0]

    @property
    def has_both_classes(self) -> bool:
        """Whether the feedback contains both relevant and irrelevant images."""
        return self.positive_indices.size > 0 and self.negative_indices.size > 0

    def labeled_features(self) -> np.ndarray:
        """Visual feature matrix of the labelled images."""
        return self.database.features_of(self.labeled_indices)

    def labeled_log_vectors(self) -> np.ndarray:
        """User-log vectors of the labelled images."""
        return self.database.log_vectors_of(self.labeled_indices)


class RelevanceFeedbackAlgorithm(abc.ABC):
    """Interface shared by every retrieval / relevance-feedback scheme."""

    #: Registry name of the algorithm, e.g. ``"rf-svm"``.
    name: str = "feedback"

    @abc.abstractmethod
    def score(self, context: FeedbackContext) -> np.ndarray:
        """Relevance score of **every** database image (higher = more relevant)."""

    def rank(self, context: FeedbackContext, *, top_k: Optional[int] = None) -> RetrievalResult:
        """Rank all database images by decreasing relevance score."""
        scores = np.asarray(self.score(context), dtype=np.float64).ravel()
        if scores.shape[0] != context.database.num_images:
            raise ValidationError(
                f"{self.name}: score() must return one score per database image "
                f"({context.database.num_images}), got {scores.shape[0]}"
            )
        ranking = np.argsort(-scores, kind="stable")
        if top_k is not None:
            ranking = ranking[: int(top_k)]
        return RetrievalResult(
            image_indices=ranking,
            scores=scores[ranking],
            query=context.query,
            algorithm=self.name,
        )

    # ------------------------------------------------------------ shared bits
    @staticmethod
    def _fallback_scores(context: FeedbackContext) -> np.ndarray:
        """Prototype-based fallback when an SVM cannot be trained.

        With only one feedback class (e.g. the user marked everything
        relevant) a discriminative model is undefined; we fall back to the
        negative distance to the mean of the positive examples (or, lacking
        positives, the positive distance to the mean of the negatives).
        """
        features = context.database.features
        positives = context.positive_indices
        negatives = context.negative_indices
        if positives.size > 0:
            prototype = context.database.features_of(positives).mean(axis=0)
            return -np.linalg.norm(features - prototype, axis=1)
        prototype = context.database.features_of(negatives).mean(axis=0)
        return np.linalg.norm(features - prototype, axis=1)
