"""Log-based relevance feedback by two independent SVMs (LRF-2SVMs).

The "straightforward approach" of Section 4.1: train one SVM on the visual
features and one on the user-log vectors of the labelled images, then sum the
two decision values.  The coupled SVM is compared against this scheme to show
the value of enforcing consistency between the modalities.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.feedback.base import FeedbackContext, RelevanceFeedbackAlgorithm
from repro.svm.kernels import Kernel
from repro.svm.svc import SVC

__all__ = ["LRF2SVMs"]


class LRF2SVMs(RelevanceFeedbackAlgorithm):
    """Independent visual SVM + log SVM with summed decision values.

    The visual SVM uses the paper's Gaussian RBF kernel; the log SVM defaults
    to a linear kernel, matching the primal formulation of Section 4 where
    the log modality scores images by ``u^T r`` (a learned weight per log
    session), and to a smaller ``C`` — the log vectors are sparse ternary
    patterns, so a wider margin generalises across correlated sessions much
    better than a near-hard-margin fit.  Both kernels are configurable.
    """

    name = "lrf-2svms"

    def __init__(
        self,
        *,
        C_visual: float = 10.0,
        C_log: float = 0.5,
        kernel: Union[str, Kernel] = "rbf",
        gamma: Union[float, str] = "scale",
        log_kernel: Union[str, Kernel] = "linear",
    ) -> None:
        self.C_visual = float(C_visual)
        self.C_log = float(C_log)
        self.kernel = kernel
        self.gamma = gamma
        self.log_kernel = log_kernel

    def score(self, context: FeedbackContext) -> np.ndarray:
        if not context.has_both_classes:
            return self._fallback_scores(context)

        visual_svm = SVC(C=self.C_visual, kernel=self.kernel, gamma=self.gamma)
        visual_svm.fit(context.labeled_features(), context.labels)
        visual_scores = visual_svm.decision_function(context.database.features)

        # One snapshot for the whole round: the log-SVM's training rows and
        # the scored pool read the same R even under concurrent appends.
        snapshot = context.log_snapshot()
        if snapshot.is_empty:
            # Cold start: no log information exists yet, degrade gracefully to
            # the visual-only baseline.
            return visual_scores

        log_matrix = snapshot.log_vectors()
        labeled_log = log_matrix[context.labeled_indices]
        if not _log_vectors_informative(labeled_log):
            return visual_scores

        log_svm = SVC(C=self.C_log, kernel=self.log_kernel, gamma=self.gamma)
        log_svm.fit(labeled_log, context.labels)
        log_scores = log_svm.decision_function(log_matrix)
        return visual_scores + log_scores


def _log_vectors_informative(log_vectors: np.ndarray) -> bool:
    """Whether the labelled log vectors carry any signal to learn from."""
    if log_vectors.size == 0 or log_vectors.shape[1] == 0:
        return False
    return bool(np.any(np.abs(log_vectors).sum(axis=1) > 0))
