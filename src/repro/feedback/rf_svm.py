"""Regular SVM-based relevance feedback (RF-SVM), the paper's baseline.

One SVM is trained on the visual features of the images the user labelled in
the current round (Tong & Chang style); all database images are then ranked
by the SVM decision value.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.feedback.base import FeedbackContext, RelevanceFeedbackAlgorithm
from repro.svm.kernels import Kernel
from repro.svm.svc import SVC

__all__ = ["RFSVM"]


class RFSVM(RelevanceFeedbackAlgorithm):
    """Relevance feedback with a single SVM on low-level visual features."""

    name = "rf-svm"

    def __init__(
        self,
        *,
        C: float = 10.0,
        kernel: Union[str, Kernel] = "rbf",
        gamma: Union[float, str] = "scale",
    ) -> None:
        self.C = float(C)
        self.kernel = kernel
        self.gamma = gamma

    def _make_svc(self) -> SVC:
        return SVC(C=self.C, kernel=self.kernel, gamma=self.gamma)

    def score(self, context: FeedbackContext) -> np.ndarray:
        if not context.has_both_classes:
            return self._fallback_scores(context)
        classifier = self._make_svc()
        classifier.fit(context.labeled_features(), context.labels)
        return classifier.decision_function(context.database.features)
