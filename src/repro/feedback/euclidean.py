"""The no-learning Euclidean reference scheme."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.cbir.query import RetrievalResult
from repro.cbir.search import SearchEngine
from repro.feedback.base import FeedbackContext, RelevanceFeedbackAlgorithm

__all__ = ["EuclideanFeedback"]


class EuclideanFeedback(RelevanceFeedbackAlgorithm):
    """Rank by Euclidean distance to the query, ignoring all feedback.

    This reproduces the "Euclidean" reference curve of Figures 3 and 4: it is
    what the CBIR system returns before any learning happens.
    """

    name = "euclidean"

    def __init__(self, *, distance: str = "euclidean") -> None:
        self.distance = distance

    def score(self, context: FeedbackContext) -> np.ndarray:
        engine = SearchEngine(context.database, distance=self.distance)
        query_features = engine.query_features(context.query)[None, :]
        distances = engine.distance(query_features, context.database.features)[0]
        return -distances

    def rank_batch(
        self, contexts: Sequence[FeedbackContext], *, top_k: Optional[int] = None
    ) -> List[RetrievalResult]:
        """Fold the whole batch into one :meth:`SearchEngine.batch_search`.

        Distance-only scoring is embarrassingly batchable: all queries over
        the same database are served by a single index
        :meth:`~repro.index.VectorIndex.batch_search` (or one blocked dense
        scan), instead of one pass per context.  The baseline is *defined*
        as the exact distance ranking, so an approximate attached index is
        bypassed (``exact_only``) — batching must never change this curve.
        Mixed-database batches fall back to the per-context default.
        """
        if not contexts:
            return []
        database = contexts[0].database
        if any(context.database is not database for context in contexts):
            return super().rank_batch(contexts, top_k=top_k)
        engine = SearchEngine(database, distance=self.distance)
        batched = engine.batch_search(
            [context.query for context in contexts], top_k=top_k, exact_only=True
        )
        return [
            RetrievalResult(
                image_indices=result.image_indices,
                scores=result.scores,
                query=context.query,
                algorithm=self.name,
            )
            for context, result in zip(contexts, batched)
        ]
