"""The no-learning Euclidean reference scheme."""

from __future__ import annotations

import numpy as np

from repro.cbir.search import SearchEngine
from repro.feedback.base import FeedbackContext, RelevanceFeedbackAlgorithm

__all__ = ["EuclideanFeedback"]


class EuclideanFeedback(RelevanceFeedbackAlgorithm):
    """Rank by Euclidean distance to the query, ignoring all feedback.

    This reproduces the "Euclidean" reference curve of Figures 3 and 4: it is
    what the CBIR system returns before any learning happens.
    """

    name = "euclidean"

    def __init__(self, *, distance: str = "euclidean") -> None:
        self.distance = distance

    def score(self, context: FeedbackContext) -> np.ndarray:
        engine = SearchEngine(context.database, distance=self.distance)
        query_features = engine.query_features(context.query)[None, :]
        distances = engine.distance(query_features, context.database.features)[0]
        return -distances
