"""Registry / factory for the retrieval schemes compared in the paper."""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.exceptions import ValidationError
from repro.feedback.base import RelevanceFeedbackAlgorithm
from repro.feedback.euclidean import EuclideanFeedback
from repro.feedback.lrf_2svms import LRF2SVMs
from repro.feedback.rf_svm import RFSVM

__all__ = ["make_algorithm", "available_algorithms"]


def _make_lrf_csvm(**kwargs) -> RelevanceFeedbackAlgorithm:
    # Imported lazily: repro.core depends on repro.feedback.base, so importing
    # it at module load time would create a cycle.
    from repro.core.lrf_csvm import LRFCSVM

    return LRFCSVM(**kwargs)


def _make_lrf_graph(**kwargs) -> RelevanceFeedbackAlgorithm:
    # Imported lazily: repro.graph depends on repro.feedback.base, so importing
    # it at module load time would create a cycle.
    from repro.graph.feedback import LabelPropagationFeedback

    return LabelPropagationFeedback(**kwargs)


_FACTORIES: Dict[str, Callable[..., RelevanceFeedbackAlgorithm]] = {
    "euclidean": EuclideanFeedback,
    "rf-svm": RFSVM,
    "lrf-2svms": LRF2SVMs,
    "lrf-csvm": _make_lrf_csvm,
    "lrf-graph": _make_lrf_graph,
}


def available_algorithms() -> List[str]:
    """Names of every registered retrieval / feedback scheme."""
    return sorted(_FACTORIES)


def make_algorithm(name: str, **kwargs) -> RelevanceFeedbackAlgorithm:
    """Instantiate a scheme by name, forwarding *kwargs* to its constructor."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ValidationError(
            f"unknown algorithm '{name}', expected one of {available_algorithms()}"
        ) from None
    return factory(**kwargs)
