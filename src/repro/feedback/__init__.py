"""Relevance-feedback algorithms compared in the paper (Section 6.4).

* :class:`EuclideanFeedback` — no learning; the initial similarity ranking
  (the "Euclidean" reference curve).
* :class:`RFSVM` — regular relevance feedback: one SVM on the visual features
  of the labelled images (the baseline the improvements are measured against).
* :class:`LRF2SVMs` — the straightforward log-based approach: one SVM per
  modality trained independently, decision values summed.
* :class:`~repro.core.lrf_csvm.LRFCSVM` — the paper's coupled-SVM algorithm
  (lives in :mod:`repro.core`, registered here for convenience).
"""

from __future__ import annotations

from repro.feedback.base import (
    FeedbackContext,
    FeedbackMemory,
    RelevanceFeedbackAlgorithm,
)
from repro.feedback.euclidean import EuclideanFeedback
from repro.feedback.lrf_2svms import LRF2SVMs
from repro.feedback.registry import available_algorithms, make_algorithm
from repro.feedback.rf_svm import RFSVM

__all__ = [
    "RelevanceFeedbackAlgorithm",
    "FeedbackContext",
    "FeedbackMemory",
    "EuclideanFeedback",
    "RFSVM",
    "LRF2SVMs",
    "make_algorithm",
    "available_algorithms",
]
