"""Discrete wavelet transform with the Daubechies-4 filter bank.

The paper's texture feature performs a 3-level 2-D DWT with the Daubechies-4
wavelet and summarises the detail sub-bands by their entropy (Section 6.2).
This module provides the separable 2-D DWT and the multi-level decomposition.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "DAUBECHIES4_LOWPASS",
    "DAUBECHIES4_HIGHPASS",
    "dwt2",
    "wavedec2",
    "WaveletDecomposition",
]

# Daubechies-4 (db2 in pywt naming: 4 taps) analysis filters.
_SQRT3 = np.sqrt(3.0)
_NORM = 4.0 * np.sqrt(2.0)

#: Low-pass (scaling) analysis filter of the Daubechies-4 wavelet.
DAUBECHIES4_LOWPASS = np.array(
    [
        (1.0 + _SQRT3) / _NORM,
        (3.0 + _SQRT3) / _NORM,
        (3.0 - _SQRT3) / _NORM,
        (1.0 - _SQRT3) / _NORM,
    ],
    dtype=np.float64,
)

#: High-pass (wavelet) analysis filter (quadrature mirror of the low pass).
DAUBECHIES4_HIGHPASS = np.array(
    [
        DAUBECHIES4_LOWPASS[3],
        -DAUBECHIES4_LOWPASS[2],
        DAUBECHIES4_LOWPASS[1],
        -DAUBECHIES4_LOWPASS[0],
    ],
    dtype=np.float64,
)


@dataclass(frozen=True)
class WaveletDecomposition:
    """A multi-level 2-D wavelet decomposition.

    Attributes
    ----------
    approximation:
        The final low-pass (LL) sub-band after the last level.
    details:
        One ``(horizontal, vertical, diagonal)`` triple per level, ordered
        from the finest (first) to the coarsest (last) level.
    """

    approximation: np.ndarray
    details: Tuple[Tuple[np.ndarray, np.ndarray, np.ndarray], ...]

    @property
    def levels(self) -> int:
        """Number of decomposition levels."""
        return len(self.details)

    def detail_subbands(self) -> List[np.ndarray]:
        """Flatten all detail sub-bands, finest level first (H, V, D order)."""
        flattened: List[np.ndarray] = []
        for horizontal, vertical, diagonal in self.details:
            flattened.extend([horizontal, vertical, diagonal])
        return flattened


def _analysis_1d(signal: np.ndarray, filter_taps: np.ndarray) -> np.ndarray:
    """Filter a 1-D signal (periodic extension) and downsample by two."""
    length = signal.shape[0]
    taps = filter_taps.shape[0]
    # Periodic extension keeps the transform critically sampled for even lengths.
    extended = np.concatenate([signal, signal[: taps - 1]])
    filtered = np.convolve(extended, filter_taps[::-1], mode="valid")
    return filtered[:length:2]


def _dwt_rows(matrix: np.ndarray, filter_taps: np.ndarray) -> np.ndarray:
    return np.stack([_analysis_1d(row, filter_taps) for row in matrix], axis=0)


def dwt2(image: np.ndarray) -> Tuple[np.ndarray, Tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Single-level 2-D DWT returning ``(LL, (LH, HL, HH))``.

    ``LH`` carries horizontal detail, ``HL`` vertical detail and ``HH``
    diagonal detail.  The input must have even height and width of at least 4
    pixels (the filter length); odd inputs are truncated by one row/column.
    """
    data = np.asarray(image, dtype=np.float64)
    if data.ndim != 2:
        raise ValidationError(f"dwt2 expects a 2-D image, got shape {data.shape}")
    height, width = data.shape
    if height < 4 or width < 4:
        raise ValidationError(f"dwt2 requires at least a 4x4 image, got {data.shape}")
    data = data[: height - height % 2, : width - width % 2]

    # Rows first: low-pass and high-pass, each downsampled by two.
    low_rows = _dwt_rows(data, DAUBECHIES4_LOWPASS)
    high_rows = _dwt_rows(data, DAUBECHIES4_HIGHPASS)

    # Then columns of each half.
    ll = _dwt_rows(low_rows.T, DAUBECHIES4_LOWPASS).T
    lh = _dwt_rows(low_rows.T, DAUBECHIES4_HIGHPASS).T
    hl = _dwt_rows(high_rows.T, DAUBECHIES4_LOWPASS).T
    hh = _dwt_rows(high_rows.T, DAUBECHIES4_HIGHPASS).T
    return ll, (lh, hl, hh)


def wavedec2(image: np.ndarray, levels: int = 3) -> WaveletDecomposition:
    """Multi-level 2-D DWT of *image* with *levels* decomposition levels.

    Levels that would shrink a sub-band below 4x4 pixels are skipped, so the
    returned decomposition may contain fewer levels than requested for very
    small images.
    """
    if levels < 1:
        raise ValidationError(f"levels must be >= 1, got {levels}")
    current = np.asarray(image, dtype=np.float64)
    detail_levels: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for _ in range(levels):
        if min(current.shape) < 8:
            break
        current, details = dwt2(current)
        detail_levels.append(details)
    if not detail_levels:
        # The image was too small for even one level; perform one anyway if we
        # can, otherwise raise a clear error.
        if min(current.shape) >= 4:
            current, details = dwt2(current)
            detail_levels.append(details)
        else:
            raise ValidationError(
                f"image of shape {np.asarray(image).shape} is too small for a wavelet "
                "decomposition (needs at least 4x4)"
            )
    return WaveletDecomposition(approximation=current, details=tuple(detail_levels))
