"""Histogram utilities shared by the feature extractors."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["normalized_histogram", "histogram_entropy"]


def normalized_histogram(
    values: np.ndarray,
    *,
    bins: int,
    value_range: Optional[Tuple[float, float]] = None,
) -> np.ndarray:
    """Histogram of *values* normalised to sum to one.

    An empty input yields a uniform histogram, which keeps downstream feature
    vectors well-defined for degenerate images (e.g. a constant image with no
    edges).
    """
    if bins < 1:
        raise ValidationError(f"bins must be >= 1, got {bins}")
    flat = np.asarray(values, dtype=np.float64).ravel()
    if flat.size == 0:
        return np.full(bins, 1.0 / bins)
    counts, _ = np.histogram(flat, bins=bins, range=value_range)
    total = counts.sum()
    if total == 0:
        return np.full(bins, 1.0 / bins)
    return counts.astype(np.float64) / total


def histogram_entropy(histogram: np.ndarray, *, eps: float = 1e-12) -> float:
    """Shannon entropy (nats) of a normalised histogram."""
    prob = np.asarray(histogram, dtype=np.float64).ravel()
    prob = prob[prob > eps]
    if prob.size == 0:
        return 0.0
    return float(-np.sum(prob * np.log(prob)))
