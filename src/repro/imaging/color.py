"""Colour-space conversions (RGB ↔ HSV, RGB → luminance).

The colour-moment feature in the paper is computed in the HSV colour space
(Section 6.2), so we need a vectorised RGB→HSV conversion.  Hue is expressed
in ``[0, 1)`` (i.e. degrees / 360) to keep all three channels on the same
scale.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["rgb_to_hsv", "hsv_to_rgb", "rgb_to_grayscale"]


def _check_rgb(pixels: np.ndarray) -> np.ndarray:
    array = np.asarray(pixels, dtype=np.float64)
    if array.ndim != 3 or array.shape[2] != 3:
        raise ValidationError(f"expected an (H, W, 3) array, got shape {array.shape}")
    return np.clip(array, 0.0, 1.0)


def rgb_to_hsv(pixels: np.ndarray) -> np.ndarray:
    """Convert an RGB image in ``[0, 1]`` to HSV with all channels in ``[0, 1]``."""
    rgb = _check_rgb(pixels)
    r, g, b = rgb[..., 0], rgb[..., 1], rgb[..., 2]

    maxc = np.max(rgb, axis=-1)
    minc = np.min(rgb, axis=-1)
    delta = maxc - minc

    value = maxc
    saturation = np.where(maxc > 0, delta / np.maximum(maxc, 1e-12), 0.0)

    # Hue: piecewise definition depending on which channel is the maximum.
    hue = np.zeros_like(maxc)
    safe_delta = np.maximum(delta, 1e-12)
    red_max = (maxc == r) & (delta > 0)
    green_max = (maxc == g) & (delta > 0) & ~red_max
    blue_max = (delta > 0) & ~red_max & ~green_max

    hue = np.where(red_max, ((g - b) / safe_delta) % 6.0, hue)
    hue = np.where(green_max, (b - r) / safe_delta + 2.0, hue)
    hue = np.where(blue_max, (r - g) / safe_delta + 4.0, hue)
    hue = hue / 6.0

    return np.stack([hue, saturation, value], axis=-1)


def hsv_to_rgb(pixels: np.ndarray) -> np.ndarray:
    """Convert an HSV image with channels in ``[0, 1]`` back to RGB."""
    hsv = np.asarray(pixels, dtype=np.float64)
    if hsv.ndim != 3 or hsv.shape[2] != 3:
        raise ValidationError(f"expected an (H, W, 3) array, got shape {hsv.shape}")
    h = np.clip(hsv[..., 0], 0.0, 1.0) * 6.0
    s = np.clip(hsv[..., 1], 0.0, 1.0)
    v = np.clip(hsv[..., 2], 0.0, 1.0)

    sector = np.floor(h).astype(int) % 6
    fraction = h - np.floor(h)
    p = v * (1.0 - s)
    q = v * (1.0 - s * fraction)
    t = v * (1.0 - s * (1.0 - fraction))

    r = np.choose(sector, [v, q, p, p, t, v])
    g = np.choose(sector, [t, v, v, q, p, p])
    b = np.choose(sector, [p, p, t, v, v, q])
    return np.stack([r, g, b], axis=-1)


def rgb_to_grayscale(pixels: np.ndarray) -> np.ndarray:
    """Convert an RGB image to luminance using the ITU-R BT.601 weights."""
    rgb = _check_rgb(pixels)
    return 0.299 * rgb[..., 0] + 0.587 * rgb[..., 1] + 0.114 * rgb[..., 2]
