"""The :class:`Image` value type used throughout the library.

Images are stored as float64 arrays in ``[0, 1]`` with shape ``(H, W, 3)``
(RGB).  The class is a thin wrapper that validates shape/range once at the
boundary so downstream code can assume well-formed data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["Image"]


@dataclass(frozen=True)
class Image:
    """An RGB image with pixel values in ``[0, 1]``.

    Attributes
    ----------
    pixels:
        ``(H, W, 3)`` float64 array of RGB values in ``[0, 1]``.
    image_id:
        Optional integer identifier (index in its dataset).
    category:
        Optional integer category label (semantic class).
    category_name:
        Optional human-readable category name.
    """

    pixels: np.ndarray
    image_id: Optional[int] = None
    category: Optional[int] = None
    category_name: Optional[str] = None

    def __post_init__(self) -> None:
        pixels = np.asarray(self.pixels, dtype=np.float64)
        if pixels.ndim != 3 or pixels.shape[2] != 3:
            raise ValidationError(
                f"Image pixels must have shape (H, W, 3), got {pixels.shape}"
            )
        if pixels.shape[0] < 2 or pixels.shape[1] < 2:
            raise ValidationError(
                f"Image must be at least 2x2 pixels, got {pixels.shape[:2]}"
            )
        if not np.all(np.isfinite(pixels)):
            raise ValidationError("Image pixels contain NaN or infinite values")
        pixels = np.clip(pixels, 0.0, 1.0)
        object.__setattr__(self, "pixels", pixels)

    @property
    def height(self) -> int:
        """Image height in pixels."""
        return int(self.pixels.shape[0])

    @property
    def width(self) -> int:
        """Image width in pixels."""
        return int(self.pixels.shape[1])

    @property
    def shape(self) -> tuple[int, int, int]:
        """Full ``(H, W, 3)`` shape."""
        return tuple(self.pixels.shape)  # type: ignore[return-value]

    def grayscale(self) -> np.ndarray:
        """Return the luminance image as an ``(H, W)`` float array."""
        from repro.imaging.color import rgb_to_grayscale

        return rgb_to_grayscale(self.pixels)

    def hsv(self) -> np.ndarray:
        """Return the HSV representation as an ``(H, W, 3)`` float array."""
        from repro.imaging.color import rgb_to_hsv

        return rgb_to_hsv(self.pixels)

    def with_metadata(
        self,
        *,
        image_id: Optional[int] = None,
        category: Optional[int] = None,
        category_name: Optional[str] = None,
    ) -> "Image":
        """Return a copy of this image with updated metadata fields."""
        return Image(
            pixels=self.pixels,
            image_id=image_id if image_id is not None else self.image_id,
            category=category if category is not None else self.category,
            category_name=(
                category_name if category_name is not None else self.category_name
            ),
        )

    @staticmethod
    def from_uint8(pixels: np.ndarray, **metadata) -> "Image":
        """Build an :class:`Image` from a ``uint8`` array in ``[0, 255]``."""
        array = np.asarray(pixels)
        return Image(pixels=array.astype(np.float64) / 255.0, **metadata)
