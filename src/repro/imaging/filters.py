"""Spatial filtering primitives: 2-D convolution, Gaussian blur, Sobel gradients."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import ValidationError

__all__ = ["convolve2d", "gaussian_kernel", "gaussian_blur", "sobel_gradients"]


def convolve2d(image: np.ndarray, kernel: np.ndarray, *, mode: str = "reflect") -> np.ndarray:
    """Convolve a 2-D *image* with a 2-D *kernel*.

    The border is handled by padding with the strategy named in *mode*
    (any mode understood by :func:`numpy.pad`, default ``"reflect"``).
    The output has the same shape as the input.
    """
    data = np.asarray(image, dtype=np.float64)
    kern = np.asarray(kernel, dtype=np.float64)
    if data.ndim != 2:
        raise ValidationError(f"convolve2d expects a 2-D image, got shape {data.shape}")
    if kern.ndim != 2:
        raise ValidationError(f"convolve2d expects a 2-D kernel, got shape {kern.shape}")
    kh, kw = kern.shape
    pad_top, pad_bottom = kh // 2, kh - kh // 2 - 1
    pad_left, pad_right = kw // 2, kw - kw // 2 - 1
    padded = np.pad(data, ((pad_top, pad_bottom), (pad_left, pad_right)), mode=mode)

    # Convolution flips the kernel; build the output via a strided window sum.
    flipped = kern[::-1, ::-1]
    windows = np.lib.stride_tricks.sliding_window_view(padded, (kh, kw))
    return np.einsum("ijkl,kl->ij", windows, flipped)


def gaussian_kernel(sigma: float, *, truncate: float = 3.0) -> np.ndarray:
    """Build a normalised 2-D Gaussian kernel with standard deviation *sigma*."""
    if sigma <= 0:
        raise ValidationError(f"sigma must be > 0, got {sigma}")
    radius = max(int(truncate * sigma + 0.5), 1)
    coords = np.arange(-radius, radius + 1, dtype=np.float64)
    one_d = np.exp(-(coords**2) / (2.0 * sigma**2))
    kernel = np.outer(one_d, one_d)
    return kernel / kernel.sum()


def gaussian_blur(image: np.ndarray, sigma: float = 1.0) -> np.ndarray:
    """Smooth a 2-D image with a Gaussian of standard deviation *sigma*."""
    return convolve2d(image, gaussian_kernel(sigma))


def sobel_gradients(image: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Return the Sobel gradients ``(gx, gy)`` of a 2-D image.

    ``gx`` responds to horizontal intensity change (vertical edges) and
    ``gy`` to vertical change (horizontal edges).
    """
    sobel_x = np.array(
        [[-1.0, 0.0, 1.0], [-2.0, 0.0, 2.0], [-1.0, 0.0, 1.0]], dtype=np.float64
    )
    sobel_y = np.array(
        [[-1.0, -2.0, -1.0], [0.0, 0.0, 0.0], [1.0, 2.0, 1.0]], dtype=np.float64
    )
    gx = convolve2d(image, sobel_x)
    gy = convolve2d(image, sobel_y)
    return gx, gy
