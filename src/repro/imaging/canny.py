"""A from-scratch Canny edge detector.

The paper's edge feature is an 18-bin edge-direction histogram computed on
the output of a Canny detector (Section 6.2).  This module implements the
standard pipeline: Gaussian smoothing → Sobel gradients → non-maximum
suppression → double-threshold hysteresis.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from repro.exceptions import ValidationError
from repro.imaging.filters import gaussian_blur, sobel_gradients

__all__ = ["CannyResult", "canny_edges"]


@dataclass(frozen=True)
class CannyResult:
    """Output of the Canny detector.

    Attributes
    ----------
    edges:
        Boolean ``(H, W)`` edge mask.
    magnitude:
        Gradient magnitude at every pixel.
    direction:
        Gradient direction in radians in ``[-pi, pi]`` at every pixel.
    """

    edges: np.ndarray
    magnitude: np.ndarray
    direction: np.ndarray

    @property
    def edge_count(self) -> int:
        """Number of edge pixels found."""
        return int(np.count_nonzero(self.edges))

    def edge_directions(self) -> np.ndarray:
        """Gradient directions (radians) of the edge pixels only."""
        return self.direction[self.edges]


def _non_maximum_suppression(magnitude: np.ndarray, direction: np.ndarray) -> np.ndarray:
    """Thin edges by keeping only local maxima along the gradient direction."""
    height, width = magnitude.shape
    suppressed = np.zeros_like(magnitude)
    # Quantise direction to one of 4 neighbour axes: 0, 45, 90, 135 degrees.
    angle = np.rad2deg(direction) % 180.0

    padded = np.pad(magnitude, 1, mode="constant")
    center = padded[1:-1, 1:-1]

    east_west = np.maximum(padded[1:-1, 2:], padded[1:-1, :-2])
    north_south = np.maximum(padded[2:, 1:-1], padded[:-2, 1:-1])
    diag_ne = np.maximum(padded[2:, :-2], padded[:-2, 2:])
    diag_nw = np.maximum(padded[2:, 2:], padded[:-2, :-2])

    bin0 = (angle < 22.5) | (angle >= 157.5)
    bin45 = (angle >= 22.5) & (angle < 67.5)
    bin90 = (angle >= 67.5) & (angle < 112.5)
    bin135 = (angle >= 112.5) & (angle < 157.5)

    keep = (
        (bin0 & (center >= east_west))
        | (bin45 & (center >= diag_ne))
        | (bin90 & (center >= north_south))
        | (bin135 & (center >= diag_nw))
    )
    suppressed[keep] = magnitude[keep]
    return suppressed


def _hysteresis(strong: np.ndarray, weak: np.ndarray) -> np.ndarray:
    """Keep weak edges only when connected (8-neighbourhood) to a strong edge."""
    candidates = strong | weak
    labels, count = ndimage.label(candidates, structure=np.ones((3, 3), dtype=int))
    if count == 0:
        return np.zeros_like(strong, dtype=bool)
    has_strong = ndimage.labeled_comprehension(
        strong, labels, index=np.arange(1, count + 1), func=np.any, out_dtype=bool, default=False
    )
    keep_labels = np.zeros(count + 1, dtype=bool)
    keep_labels[1:] = has_strong
    return keep_labels[labels]


def canny_edges(
    image: np.ndarray,
    *,
    sigma: float = 1.0,
    low_threshold: float = 0.1,
    high_threshold: float = 0.2,
) -> CannyResult:
    """Run the Canny edge detector on a 2-D grayscale image in ``[0, 1]``.

    Parameters
    ----------
    image:
        ``(H, W)`` grayscale image.
    sigma:
        Standard deviation of the Gaussian pre-smoothing.
    low_threshold, high_threshold:
        Hysteresis thresholds expressed as fractions of the maximum gradient
        magnitude; ``low_threshold`` must not exceed ``high_threshold``.
    """
    data = np.asarray(image, dtype=np.float64)
    if data.ndim != 2:
        raise ValidationError(f"canny_edges expects a 2-D image, got shape {data.shape}")
    if low_threshold > high_threshold:
        raise ValidationError(
            f"low_threshold ({low_threshold}) must be <= high_threshold ({high_threshold})"
        )

    smoothed = gaussian_blur(data, sigma)
    gx, gy = sobel_gradients(smoothed)
    magnitude = np.hypot(gx, gy)
    direction = np.arctan2(gy, gx)

    thinned = _non_maximum_suppression(magnitude, direction)
    peak = thinned.max()
    if peak <= 0:
        edges = np.zeros_like(data, dtype=bool)
        return CannyResult(edges=edges, magnitude=magnitude, direction=direction)

    strong = thinned >= high_threshold * peak
    weak = (thinned >= low_threshold * peak) & ~strong
    edges = _hysteresis(strong, weak)
    return CannyResult(edges=edges, magnitude=magnitude, direction=direction)
