"""Image-processing substrate.

The paper's feature extractors (Section 6.2) need a small stack of classic
image-processing operations: RGB→HSV conversion, greyscale conversion,
Gaussian smoothing, Sobel gradients, a Canny edge detector, a Daubechies-4
discrete wavelet transform and histogram/entropy utilities.  This package
implements all of them from scratch on top of numpy so the library has no
dependency on OpenCV/PIL/scikit-image.
"""

from __future__ import annotations

from repro.imaging.canny import CannyResult, canny_edges
from repro.imaging.color import hsv_to_rgb, rgb_to_grayscale, rgb_to_hsv
from repro.imaging.filters import (
    convolve2d,
    gaussian_blur,
    gaussian_kernel,
    sobel_gradients,
)
from repro.imaging.histogram import histogram_entropy, normalized_histogram
from repro.imaging.image import Image
from repro.imaging.wavelet import (
    DAUBECHIES4_HIGHPASS,
    DAUBECHIES4_LOWPASS,
    WaveletDecomposition,
    dwt2,
    wavedec2,
)

__all__ = [
    "Image",
    "rgb_to_hsv",
    "hsv_to_rgb",
    "rgb_to_grayscale",
    "convolve2d",
    "gaussian_kernel",
    "gaussian_blur",
    "sobel_gradients",
    "canny_edges",
    "CannyResult",
    "dwt2",
    "wavedec2",
    "WaveletDecomposition",
    "DAUBECHIES4_LOWPASS",
    "DAUBECHIES4_HIGHPASS",
    "normalized_histogram",
    "histogram_entropy",
]
