"""A minimal, dependency-free progress reporter for long experiments."""

from __future__ import annotations

import sys
import time
from typing import Iterable, Iterator, Optional, TypeVar

__all__ = ["ProgressReporter", "track"]

T = TypeVar("T")


class ProgressReporter:
    """Periodically prints progress for a fixed-length unit of work.

    The reporter is intentionally simple (single line, updated at most once
    per ``min_interval`` seconds) so that it is safe to use from benchmark
    harnesses and batch jobs where a full progress-bar library would be noise.
    """

    def __init__(
        self,
        total: int,
        *,
        label: str = "progress",
        stream=None,
        min_interval: float = 0.5,
        enabled: bool = True,
    ) -> None:
        self.total = max(int(total), 1)
        self.label = label
        self.stream = stream if stream is not None else sys.stderr
        self.min_interval = float(min_interval)
        self.enabled = bool(enabled)
        self._count = 0
        self._last_emit = 0.0
        self._started = time.monotonic()

    def update(self, increment: int = 1) -> None:
        """Advance the counter by *increment* and maybe emit a status line."""
        self._count += increment
        now = time.monotonic()
        finished = self._count >= self.total
        if not self.enabled:
            return
        if not finished and (now - self._last_emit) < self.min_interval:
            return
        self._last_emit = now
        elapsed = now - self._started
        fraction = min(self._count / self.total, 1.0)
        self.stream.write(
            f"\r{self.label}: {self._count}/{self.total} "
            f"({fraction:5.1%}, {elapsed:6.1f}s)"
        )
        if finished:
            self.stream.write("\n")
        self.stream.flush()

    def close(self) -> None:
        """Force a final status line if the loop ended early."""
        if self.enabled and self._count < self.total:
            self.stream.write("\n")
            self.stream.flush()


def track(items: Iterable[T], *, label: str = "progress", enabled: bool = True) -> Iterator[T]:
    """Iterate over *items* while reporting progress (requires ``len(items)``)."""
    sequence = list(items)
    reporter = ProgressReporter(len(sequence), label=label, enabled=enabled)
    for item in sequence:
        yield item
        reporter.update()
    reporter.close()
