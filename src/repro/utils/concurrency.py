"""Concurrency primitives for true parallel serving.

Three small, dependency-free building blocks used by the service layer (and
usable standalone):

* :class:`StripedLockMap` — a fixed pool of re-entrant locks addressed by
  hashable key.  The service maps every session id onto a stripe, so
  per-session mutual exclusion costs O(stripes) memory for an unbounded key
  space; :meth:`StripedLockMap.all_of` acquires a whole wave's stripes in a
  canonical order (deadlock-free between concurrent waves), and
  :meth:`StripedLockMap.try_lock` is the non-blocking probe TTL eviction
  uses so it can never stall — or race — a live feedback round.
* :class:`ReadWriteLock` — a writer-preferring shared/exclusive lock.  The
  service holds it shared while serving (searches and feedback only *read*
  the database, the index and the log vectors) and exclusively while
  mutating the attachment (attach/detach/build, deferred KD-tree rebuilds).
* :data:`Lock ordering <LOCK_ORDER>` — the documented acquisition order the
  service layer follows; any code extending the service should respect it.

None of these primitives know anything about sessions or indexes; they are
plain synchronisation tools with deterministic, test-friendly behaviour.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Callable, Hashable, Iterable, Iterator, Optional

from repro.exceptions import ValidationError

__all__ = ["StripedLockMap", "ReadWriteLock", "WaitCallback", "LOCK_ORDER"]

#: Signature of the optional lock-wait accounting hook both primitives
#: accept: called as ``callback(mode, waited_seconds)`` after every
#: *blocking* acquisition, where ``mode`` names the acquisition kind
#: (``"stripe"``/``"wave"`` for :class:`StripedLockMap`,
#: ``"read"``/``"write"`` for :class:`ReadWriteLock`).  ``None`` (the
#: default) skips the timing entirely, so un-hooked locks pay nothing.
#: :func:`repro.obs.lock_wait_recorder` builds a metrics-backed callback.
WaitCallback = Callable[[str, float], None]

#: The single lock-acquisition order of the serving stack.  A thread may
#: only acquire locks *downward* through this list (skipping levels freely);
#: acquiring upward is a deadlock waiting to happen.
#:
#: 1. session stripes  (``StripedLockMap.all_of`` — sorted stripe order)
#: 2. attachment read/write lock (``ReadWriteLock``)
#: 3. scheduler wave mutex (``MicroBatchScheduler.exclusive``)
#: 4. store mutex / per-file atomic replace (internal to the stores)
#: 5. log append lock (innermost: the ``LogStore`` backend's batch mutex —
#:    or its cross-process file lock — plus the ``LogDatabase`` façade's
#:    matrix-cache lock)
#:
#: TTL eviction sits outside the order: it only ever *try-locks* a stripe
#: and skips busy sessions, so it can run at any level without deadlocking.
LOCK_ORDER = (
    "session-stripes",
    "attachment-rwlock",
    "scheduler-mutex",
    "store-mutex",
    "logdb-lock",
)


class StripedLockMap:
    """A fixed pool of re-entrant locks addressed by hashable key.

    Keys are mapped onto ``num_stripes`` :class:`threading.RLock` objects by
    hash, so mutual exclusion over an unbounded key space (session ids)
    costs constant memory.  Two keys sharing a stripe exclude each other —
    that is the accepted trade-off of striping; raise ``num_stripes`` to
    lower the collision rate.

    Parameters
    ----------
    num_stripes:
        Number of locks in the pool (default 64).
    wait_callback:
        Optional :data:`WaitCallback` invoked after each blocking
        acquisition with ``("stripe", waited)`` for :meth:`holding` and
        ``("wave", waited)`` for :meth:`all_of`; ``None`` disables wait
        timing altogether.

    Notes
    -----
    The locks are re-entrant, so a thread holding a key's stripe may lock
    the same key (or a colliding one) again without deadlocking — which is
    what lets :meth:`all_of` and nested per-key operations compose.
    """

    def __init__(
        self, num_stripes: int = 64, *, wait_callback: Optional[WaitCallback] = None
    ) -> None:
        if num_stripes < 1:
            raise ValidationError(f"num_stripes must be >= 1, got {num_stripes}")
        self._stripes = tuple(threading.RLock() for _ in range(num_stripes))
        self._wait_callback = wait_callback

    @property
    def num_stripes(self) -> int:
        """Number of locks in the pool."""
        return len(self._stripes)

    def stripe_of(self, key: Hashable) -> int:
        """The stripe index *key* maps to (stable for the map's lifetime)."""
        return hash(key) % len(self._stripes)

    def lock_for(self, key: Hashable) -> threading.RLock:
        """The re-entrant lock guarding *key* (shared with colliding keys)."""
        return self._stripes[self.stripe_of(key)]

    @contextmanager
    def holding(self, key: Hashable) -> Iterator[None]:
        """Context manager: hold *key*'s stripe for the block."""
        lock = self.lock_for(key)
        if self._wait_callback is None:
            lock.acquire()
        else:
            started = time.perf_counter()
            lock.acquire()
            self._wait_callback("stripe", time.perf_counter() - started)
        try:
            yield
        finally:
            lock.release()

    @contextmanager
    def all_of(self, keys: Iterable[Hashable]) -> Iterator[None]:
        """Hold the stripes of every key in *keys* for the block.

        Distinct stripes are acquired in ascending stripe order — the
        canonical order — so two threads locking overlapping waves can
        never deadlock against each other.
        """
        stripes = sorted({self.stripe_of(key) for key in keys})
        acquired = []
        started = None if self._wait_callback is None else time.perf_counter()
        try:
            for stripe in stripes:
                self._stripes[stripe].acquire()
                acquired.append(stripe)
            if started is not None:
                self._wait_callback("wave", time.perf_counter() - started)
            yield
        finally:
            for stripe in reversed(acquired):
                self._stripes[stripe].release()

    @contextmanager
    def try_lock(self, key: Hashable) -> Iterator[bool]:
        """Non-blocking probe: yields ``True`` iff *key*'s stripe was free.

        The stripe is held for the block when acquired; when the yield is
        ``False`` the caller must skip the key (this is how TTL eviction
        steps around sessions that are mid-round).
        """
        lock = self.lock_for(key)
        held = lock.acquire(blocking=False)
        try:
            yield held
        finally:
            if held:
                lock.release()


class ReadWriteLock:
    """A writer-preferring shared/exclusive (readers-writer) lock.

    Any number of readers may hold the lock together; a writer holds it
    alone.  Arriving writers block *new* readers (writer preference), so a
    steady stream of searches cannot starve an index rebuild.

    The lock is **not** re-entrant and not upgradable: a thread holding the
    read side must release it before acquiring the write side.

    Parameters
    ----------
    wait_callback:
        Optional :data:`WaitCallback` invoked after each acquisition with
        ``("read", waited)`` or ``("write", waited)``; ``None`` disables
        wait timing altogether.

    Examples
    --------
    >>> lock = ReadWriteLock()
    >>> with lock.read_locked():
    ...     pass  # shared critical section
    >>> with lock.write_locked():
    ...     pass  # exclusive critical section
    """

    def __init__(self, *, wait_callback: Optional[WaitCallback] = None) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer_active = False
        self._writers_waiting = 0
        self._wait_callback = wait_callback

    def acquire_read(self) -> None:
        """Acquire the lock shared; blocks while a writer holds or waits."""
        started = None if self._wait_callback is None else time.perf_counter()
        with self._cond:
            while self._writer_active or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        if started is not None:
            self._wait_callback("read", time.perf_counter() - started)

    def release_read(self) -> None:
        """Release one shared hold."""
        with self._cond:
            if self._readers <= 0:
                raise RuntimeError("release_read() without a matching acquire_read()")
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    def acquire_write(self) -> None:
        """Acquire the lock exclusively; blocks until all readers drain."""
        started = None if self._wait_callback is None else time.perf_counter()
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer_active or self._readers:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer_active = True
        if started is not None:
            self._wait_callback("write", time.perf_counter() - started)

    def release_write(self) -> None:
        """Release the exclusive hold."""
        with self._cond:
            if not self._writer_active:
                raise RuntimeError("release_write() without a matching acquire_write()")
            self._writer_active = False
            self._cond.notify_all()

    @contextmanager
    def read_locked(self) -> Iterator[None]:
        """Context manager for a shared critical section."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self) -> Iterator[None]:
        """Context manager for an exclusive critical section."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()
