"""Argument-validation helpers used across the library.

These helpers raise :class:`repro.exceptions.ValidationError` with readable
messages instead of letting numpy broadcast errors surface deep inside the
solvers.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError

__all__ = [
    "check_array",
    "check_labels",
    "check_positive",
    "check_in_range",
    "check_probability",
    "check_consistent_length",
]


def check_array(
    value,
    *,
    name: str = "array",
    ndim: Optional[int] = None,
    dtype=np.float64,
    allow_empty: bool = False,
) -> np.ndarray:
    """Convert *value* to a numpy array and validate its shape.

    Parameters
    ----------
    value:
        Array-like input.
    name:
        Name used in error messages.
    ndim:
        Required number of dimensions, or ``None`` to accept any.
    dtype:
        Target dtype of the returned array (``None`` keeps the input dtype).
    allow_empty:
        Whether a zero-sized array is acceptable.
    """
    array = np.asarray(value, dtype=dtype)
    if ndim is not None and array.ndim != ndim:
        raise ValidationError(
            f"{name} must have {ndim} dimension(s), got shape {array.shape}"
        )
    if not allow_empty and array.size == 0:
        raise ValidationError(f"{name} must not be empty")
    if array.dtype.kind == "f" and not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} contains NaN or infinite values")
    return array


def check_labels(labels, *, name: str = "y") -> np.ndarray:
    """Validate a vector of binary labels in ``{-1, +1}``."""
    array = np.asarray(labels, dtype=np.float64).ravel()
    if array.size == 0:
        raise ValidationError(f"{name} must not be empty")
    values = np.unique(array)
    if not np.all(np.isin(values, (-1.0, 1.0))):
        raise ValidationError(
            f"{name} must contain only -1 and +1 labels, got values {values}"
        )
    return array


def check_positive(value: float, *, name: str = "value", strict: bool = True) -> float:
    """Validate that *value* is positive (strictly by default)."""
    number = float(value)
    if strict and number <= 0:
        raise ValidationError(f"{name} must be > 0, got {number}")
    if not strict and number < 0:
        raise ValidationError(f"{name} must be >= 0, got {number}")
    return number


def check_in_range(
    value: float,
    low: float,
    high: float,
    *,
    name: str = "value",
    inclusive: bool = True,
) -> float:
    """Validate that *value* lies in ``[low, high]`` (or ``(low, high)``)."""
    number = float(value)
    if inclusive:
        ok = low <= number <= high
    else:
        ok = low < number < high
    if not ok:
        bounds = f"[{low}, {high}]" if inclusive else f"({low}, {high})"
        raise ValidationError(f"{name} must be in {bounds}, got {number}")
    return number


def check_probability(value: float, *, name: str = "probability") -> float:
    """Validate that *value* is a probability in ``[0, 1]``."""
    return check_in_range(value, 0.0, 1.0, name=name)


def check_consistent_length(*arrays, names: Optional[Sequence[str]] = None) -> None:
    """Validate that all array-likes share the same first-dimension length."""
    lengths = [len(array) for array in arrays]
    if len(set(lengths)) > 1:
        labels = names if names is not None else [f"array{i}" for i in range(len(arrays))]
        detail = ", ".join(f"{label}={length}" for label, length in zip(labels, lengths))
        raise ValidationError(f"inconsistent lengths: {detail}")
