"""Lightweight persistence helpers (JSON documents and numpy bundles)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

__all__ = ["save_json", "load_json", "save_array_bundle", "load_array_bundle"]

PathLike = Union[str, Path]


class _NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that understands numpy scalars and arrays."""

    def default(self, obj):  # noqa: D102 - inherited contract
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        return super().default(obj)


def save_json(document: Mapping[str, Any], path: PathLike) -> Path:
    """Serialise *document* to *path* as pretty-printed JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True, cls=_NumpyJSONEncoder)
        handle.write("\n")
    return target


def load_json(path: PathLike) -> Dict[str, Any]:
    """Load a JSON document from *path*."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def save_array_bundle(arrays: Mapping[str, np.ndarray], path: PathLike) -> Path:
    """Save a named bundle of arrays to a compressed ``.npz`` file.

    Returns the path actually written: ``numpy`` appends ``.npz`` to any
    path not already carrying that suffix (it appends to — not replaces —
    an existing suffix, e.g. ``corel.index`` → ``corel.index.npz``).
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(target, **{key: np.asarray(value) for key, value in arrays.items()})
    return target if target.suffix == ".npz" else target.with_name(target.name + ".npz")


def load_array_bundle(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a bundle previously written by :func:`save_array_bundle`."""
    with np.load(Path(path), allow_pickle=False) as data:
        return {key: np.array(data[key]) for key in data.files}
