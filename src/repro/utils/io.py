"""Lightweight persistence helpers (JSON documents, numpy bundles, file locks).

Both savers are **atomic**: the payload is written to a same-directory
temporary file and moved into place with :func:`os.replace`, so a reader (or
a crash, or a parallel writer of a *different* file) can never observe a
truncated document — it sees either the previous complete file or the new
complete file.  Concurrent writers of the *same* path still need external
serialisation (the session stores provide it); atomicity here is
last-writer-wins, never torn bytes.

:func:`file_lock` supplies that external serialisation **across OS
processes**: an exclusive advisory lock on a dedicated lock file, used by
the on-disk log store so many worker processes can ship log segments into
one directory without losing or duplicating a record.
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Union

import numpy as np

__all__ = [
    "save_json",
    "load_json",
    "save_array_bundle",
    "load_array_bundle",
    "file_lock",
]

try:  # POSIX advisory locks: released by the kernel even on process death.
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback below
    fcntl = None

PathLike = Union[str, Path]


def _temp_sibling(target: Path, suffix: str = "") -> Path:
    """A same-directory temp path unique to this process and thread.

    Same directory ⇒ same filesystem ⇒ :func:`os.replace` is an atomic
    rename.  ``suffix`` lets numpy's savez (which appends ``.npz`` to alien
    suffixes) write exactly where we expect.
    """
    tag = f".tmp-{os.getpid()}-{threading.get_ident()}"
    return target.with_name(target.name + tag + suffix)


class _NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that understands numpy scalars and arrays."""

    def default(self, obj):  # noqa: D102 - inherited contract
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        return super().default(obj)


def save_json(document: Mapping[str, Any], path: PathLike) -> Path:
    """Serialise *document* to *path* as pretty-printed JSON, atomically.

    The document is written to a same-directory temporary file and renamed
    over *path* with :func:`os.replace`; a failure mid-write (crash, killed
    process, serialisation error) leaves any previous file at *path* intact.

    Parameters
    ----------
    document:
        JSON-serialisable mapping (numpy scalars/arrays are converted).
    path:
        Destination file; parent directories are created as needed.

    Returns
    -------
    Path
        The path actually written.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    temp = _temp_sibling(target)
    try:
        with temp.open("w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True, cls=_NumpyJSONEncoder)
            handle.write("\n")
        os.replace(temp, target)
    except BaseException:
        temp.unlink(missing_ok=True)
        raise
    return target


def load_json(path: PathLike) -> Dict[str, Any]:
    """Load a JSON document from *path*."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def save_array_bundle(arrays: Mapping[str, np.ndarray], path: PathLike) -> Path:
    """Save a named bundle of arrays to a compressed ``.npz`` file, atomically.

    Like :func:`save_json`, the bundle lands via write-temp-then-
    :func:`os.replace`, so a crash mid-save never leaves a truncated
    archive behind.

    Returns
    -------
    Path
        The path actually written: ``numpy`` appends ``.npz`` to any path
        not already carrying that suffix (it appends to — not replaces —
        an existing suffix, e.g. ``corel.index`` → ``corel.index.npz``).
    """
    target = Path(path)
    if target.suffix != ".npz":
        target = target.with_name(target.name + ".npz")
    target.parent.mkdir(parents=True, exist_ok=True)
    temp = _temp_sibling(target, suffix=".npz")
    try:
        np.savez_compressed(
            temp, **{key: np.asarray(value) for key, value in arrays.items()}
        )
        os.replace(temp, target)
    except BaseException:
        temp.unlink(missing_ok=True)
        raise
    return target


def load_array_bundle(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a bundle previously written by :func:`save_array_bundle`."""
    with np.load(Path(path), allow_pickle=False) as data:
        return {key: np.array(data[key]) for key in data.files}


@contextmanager
def file_lock(path: PathLike, *, timeout: float = 30.0) -> Iterator[None]:
    """Hold an exclusive cross-process lock on *path* for the ``with`` body.

    The mutual-exclusion primitive of the on-disk log store's append
    protocol (:class:`repro.logdb.file_store.FileLogStore`): any number of
    OS processes may contend on the same lock file, and exactly one at a
    time runs its critical section.  On POSIX the lock is an
    :func:`fcntl.flock` on an open handle — the kernel releases it when the
    holder exits *or dies*, so a crashed writer can never wedge the store.
    Where ``fcntl`` is unavailable the lock degrades to an
    exclusive-create spin file with an age-based stale-lock breaker.

    Parameters
    ----------
    path:
        Lock-file path; created (empty) if missing, never deleted on the
        POSIX path.  Parent directories are created as needed.
    timeout:
        Seconds to wait for the lock before raising ``TimeoutError``
        (only enforceable on the fallback path; ``flock`` waits in the
        kernel and is expected to be held for milliseconds).

    Raises
    ------
    TimeoutError
        Fallback path only: the lock stayed busy longer than *timeout*.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    if fcntl is not None:
        with target.open("a+b") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        return
    # Fallback: O_CREAT|O_EXCL spin lock (best effort — POSIX hosts never
    # take this path).  A lock file more than 10 timeouts old is presumed
    # orphaned by a crashed holder and broken; the wide margin keeps the
    # breaker from sniping a merely-slow live holder, and the deadline is
    # honoured on every iteration so the wait can never spin forever.
    spin = target.with_name(target.name + ".spin")
    deadline = time.monotonic() + timeout
    while True:
        try:
            descriptor = os.open(spin, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            os.close(descriptor)
            break
        except FileExistsError:
            if time.monotonic() > deadline:
                raise TimeoutError(f"could not acquire file lock {target}")
            try:
                if time.time() - spin.stat().st_mtime > 10 * timeout:
                    spin.unlink(missing_ok=True)
                    continue
            except OSError:
                pass  # holder released (or stat raced) — retry the create
            time.sleep(0.002)
    try:
        yield
    finally:
        spin.unlink(missing_ok=True)
