"""Lightweight persistence helpers (JSON documents and numpy bundles).

Both savers are **atomic**: the payload is written to a same-directory
temporary file and moved into place with :func:`os.replace`, so a reader (or
a crash, or a parallel writer of a *different* file) can never observe a
truncated document — it sees either the previous complete file or the new
complete file.  Concurrent writers of the *same* path still need external
serialisation (the session stores provide it); atomicity here is
last-writer-wins, never torn bytes.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, Mapping, Union

import numpy as np

__all__ = ["save_json", "load_json", "save_array_bundle", "load_array_bundle"]

PathLike = Union[str, Path]


def _temp_sibling(target: Path, suffix: str = "") -> Path:
    """A same-directory temp path unique to this process and thread.

    Same directory ⇒ same filesystem ⇒ :func:`os.replace` is an atomic
    rename.  ``suffix`` lets numpy's savez (which appends ``.npz`` to alien
    suffixes) write exactly where we expect.
    """
    tag = f".tmp-{os.getpid()}-{threading.get_ident()}"
    return target.with_name(target.name + tag + suffix)


class _NumpyJSONEncoder(json.JSONEncoder):
    """JSON encoder that understands numpy scalars and arrays."""

    def default(self, obj):  # noqa: D102 - inherited contract
        if isinstance(obj, np.integer):
            return int(obj)
        if isinstance(obj, np.floating):
            return float(obj)
        if isinstance(obj, np.ndarray):
            return obj.tolist()
        return super().default(obj)


def save_json(document: Mapping[str, Any], path: PathLike) -> Path:
    """Serialise *document* to *path* as pretty-printed JSON, atomically.

    The document is written to a same-directory temporary file and renamed
    over *path* with :func:`os.replace`; a failure mid-write (crash, killed
    process, serialisation error) leaves any previous file at *path* intact.

    Parameters
    ----------
    document:
        JSON-serialisable mapping (numpy scalars/arrays are converted).
    path:
        Destination file; parent directories are created as needed.

    Returns
    -------
    Path
        The path actually written.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    temp = _temp_sibling(target)
    try:
        with temp.open("w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True, cls=_NumpyJSONEncoder)
            handle.write("\n")
        os.replace(temp, target)
    except BaseException:
        temp.unlink(missing_ok=True)
        raise
    return target


def load_json(path: PathLike) -> Dict[str, Any]:
    """Load a JSON document from *path*."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return json.load(handle)


def save_array_bundle(arrays: Mapping[str, np.ndarray], path: PathLike) -> Path:
    """Save a named bundle of arrays to a compressed ``.npz`` file, atomically.

    Like :func:`save_json`, the bundle lands via write-temp-then-
    :func:`os.replace`, so a crash mid-save never leaves a truncated
    archive behind.

    Returns
    -------
    Path
        The path actually written: ``numpy`` appends ``.npz`` to any path
        not already carrying that suffix (it appends to — not replaces —
        an existing suffix, e.g. ``corel.index`` → ``corel.index.npz``).
    """
    target = Path(path)
    if target.suffix != ".npz":
        target = target.with_name(target.name + ".npz")
    target.parent.mkdir(parents=True, exist_ok=True)
    temp = _temp_sibling(target, suffix=".npz")
    try:
        np.savez_compressed(
            temp, **{key: np.asarray(value) for key, value in arrays.items()}
        )
        os.replace(temp, target)
    except BaseException:
        temp.unlink(missing_ok=True)
        raise
    return target


def load_array_bundle(path: PathLike) -> Dict[str, np.ndarray]:
    """Load a bundle previously written by :func:`save_array_bundle`."""
    with np.load(Path(path), allow_pickle=False) as data:
        return {key: np.array(data[key]) for key in data.files}
