"""Small numerical helpers shared by feature extraction and evaluation."""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

__all__ = [
    "zscore",
    "minmax_scale",
    "l2_normalize_rows",
    "pairwise_squared_distances",
    "stable_entropy",
]


def zscore(
    matrix: np.ndarray,
    *,
    mean: Optional[np.ndarray] = None,
    std: Optional[np.ndarray] = None,
    eps: float = 1e-12,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Standardise columns of *matrix* to zero mean and unit variance.

    Returns ``(scaled, mean, std)`` so the same statistics can be re-applied
    to out-of-sample data (query images).
    """
    data = np.asarray(matrix, dtype=np.float64)
    if mean is None:
        mean = data.mean(axis=0)
    if std is None:
        std = data.std(axis=0)
    safe_std = np.where(std < eps, 1.0, std)
    return (data - mean) / safe_std, mean, std


def minmax_scale(
    matrix: np.ndarray,
    *,
    low: Optional[np.ndarray] = None,
    high: Optional[np.ndarray] = None,
    eps: float = 1e-12,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Scale columns of *matrix* to ``[0, 1]``; returns ``(scaled, low, high)``."""
    data = np.asarray(matrix, dtype=np.float64)
    if low is None:
        low = data.min(axis=0)
    if high is None:
        high = data.max(axis=0)
    span = np.where((high - low) < eps, 1.0, high - low)
    return (data - low) / span, low, high


def l2_normalize_rows(matrix: np.ndarray, *, eps: float = 1e-12) -> np.ndarray:
    """Normalise each row of *matrix* to unit Euclidean norm."""
    data = np.asarray(matrix, dtype=np.float64)
    norms = np.linalg.norm(data, axis=-1, keepdims=True)
    return data / np.maximum(norms, eps)


def pairwise_squared_distances(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Squared Euclidean distances between rows of *a* and rows of *b*.

    Uses the ``|a|^2 + |b|^2 - 2 a.b`` expansion, clipped at zero to guard
    against tiny negative values from floating-point cancellation.
    """
    a = np.atleast_2d(np.asarray(a, dtype=np.float64))
    b = np.atleast_2d(np.asarray(b, dtype=np.float64))
    a_sq = np.sum(a * a, axis=1)[:, None]
    b_sq = np.sum(b * b, axis=1)[None, :]
    # In-place updates keep the accumulation order of the naive
    # ``a_sq + b_sq - 2ab`` expression (bit-identical results) while
    # avoiding two full (Q, N) temporaries — on serving-sized batches the
    # extra allocations used to dominate the matmul itself.
    squared = a_sq + b_sq
    product = a @ b.T
    product *= 2.0
    squared -= product
    np.maximum(squared, 0.0, out=squared)
    return squared


def stable_entropy(values: np.ndarray, *, bins: int = 64, eps: float = 1e-12) -> float:
    """Shannon entropy (nats) of the empirical distribution of *values*.

    Used for the wavelet-texture feature: the entropy of each sub-band's
    coefficient histogram summarises its texture energy distribution.
    """
    flat = np.asarray(values, dtype=np.float64).ravel()
    if flat.size == 0:
        return 0.0
    hist, _ = np.histogram(flat, bins=bins)
    total = hist.sum()
    if total == 0:
        return 0.0
    prob = hist.astype(np.float64) / total
    prob = prob[prob > eps]
    return float(-np.sum(prob * np.log(prob)))
