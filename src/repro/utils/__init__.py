"""Small shared utilities: RNG, validation, arrays, atomic IO, concurrency,
and the deterministic fault-injection seam."""

from __future__ import annotations

from repro.utils.arrays import l2_normalize_rows, minmax_scale, zscore
from repro.utils.concurrency import LOCK_ORDER, ReadWriteLock, StripedLockMap, WaitCallback
from repro.utils.faults import FaultPlan, FaultRule
from repro.utils.io import load_array_bundle, load_json, save_array_bundle, save_json
from repro.utils.rng import derive_seed, ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_array,
    check_in_range,
    check_labels,
    check_positive,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "derive_seed",
    "spawn_rngs",
    "check_array",
    "check_labels",
    "check_positive",
    "check_in_range",
    "check_probability",
    "zscore",
    "minmax_scale",
    "l2_normalize_rows",
    "save_json",
    "load_json",
    "save_array_bundle",
    "load_array_bundle",
    "StripedLockMap",
    "ReadWriteLock",
    "WaitCallback",
    "LOCK_ORDER",
    "FaultPlan",
    "FaultRule",
]
