"""Deterministic random-number-generator helpers.

Every stochastic component in the library accepts either a seed or an
already-constructed :class:`numpy.random.Generator`.  The helpers here
normalise both forms and derive reproducible child generators so that
independent subsystems (dataset generation, log simulation, query sampling,
solver initialisation) do not interfere with each other's streams.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Union

import numpy as np

__all__ = ["RandomState", "ensure_rng", "derive_seed", "spawn_rngs"]

#: Acceptable "seed-like" argument accepted throughout the library.
RandomState = Union[None, int, np.random.Generator]


def ensure_rng(random_state: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *random_state*.

    Parameters
    ----------
    random_state:
        ``None`` for nondeterministic entropy, an ``int`` seed, or an
        existing generator (returned unchanged).
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        "random_state must be None, an int, or a numpy Generator, "
        f"got {type(random_state).__name__}"
    )


def derive_seed(base_seed: int, *tokens: Union[int, str]) -> int:
    """Derive a reproducible child seed from *base_seed* and a token path.

    The derivation hashes the tokens through :class:`numpy.random.SeedSequence`
    so that, e.g., ``derive_seed(7, "corel20", 3)`` is stable across runs and
    independent of ``derive_seed(7, "corel20", 4)``.
    """
    digest = 0
    for token in tokens:
        text = str(token)
        for char in text:
            digest = (digest * 131 + ord(char)) % (2**31 - 1)
    seq = np.random.SeedSequence([int(base_seed), digest])
    return int(seq.generate_state(1, dtype=np.uint32)[0])


def spawn_rngs(random_state: RandomState, count: int) -> list[np.random.Generator]:
    """Spawn *count* independent child generators from *random_state*."""
    if count < 0:
        raise ValueError("count must be non-negative")
    parent = ensure_rng(random_state)
    seeds = parent.integers(0, 2**31 - 1, size=count)
    return [np.random.default_rng(int(seed)) for seed in seeds]
