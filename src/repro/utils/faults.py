"""Deterministic fault injection: the cluster's crash-test seam.

Chaos tests that SIGKILL a worker "mid-wave" race wall-clock sleeps
against scheduler jitter; they prove the recovery path works *sometimes*.
This module replaces the race with a deterministic seam: production code
calls :func:`trip` at **named fault points** (``"close.before_log_flush"``,
``"worker.mid_wave_kill"``, ...), and a test installs a :class:`FaultPlan`
that fires a chosen action on the N-th matching hit of a chosen point —
same step, same process, every run.

The seam costs one module-global ``is None`` check per call when no plan
is installed, so it stays in production builds; the full catalogue of
points the cluster tier trips lives in :mod:`repro.cluster.faults`.

Three actions ship:

* ``"raise"`` — raise :class:`~repro.exceptions.FaultInjectedError`
  (exercises error propagation without killing anything);
* ``"exit"``  — ``os._exit`` the process immediately (the deterministic
  equivalent of a SIGKILL landing exactly at this protocol step: no
  ``finally`` blocks, no flushes, no cleanup);
* ``"drop"``  — raise :class:`ConnectionResetError` (models a transport
  connection loss; flows through the same ``OSError`` handling a real
  broken socket or closed queue takes).

Plans are plain frozen dataclasses, so a :class:`FaultPlan` travels into
worker processes inside the pickled/forked ``ClusterConfig``; hit counters
are **per process** (installed state, not plan state), so every worker
counts its own hits and ``worker_id``-scoped rules only arm in the worker
they name.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from repro.exceptions import FaultInjectedError, ValidationError

__all__ = [
    "FaultRule",
    "FaultPlan",
    "install_plan",
    "clear_plan",
    "active_plan",
    "installed",
    "trip",
    "FAULT_ACTIONS",
]

#: The actions a :class:`FaultRule` may fire (see module docstring).
FAULT_ACTIONS = ("raise", "exit", "drop")

#: Process exit code used by the ``"exit"`` action — distinctive enough
#: that a test watching worker exits can tell an injected death from a
#: genuine crash.
_EXIT_CODE = 86


@dataclass(frozen=True)
class FaultRule:
    """One armed fault: *point* + optional filters → *action* on hit *at*.

    Attributes
    ----------
    point:
        Fault-point name this rule listens on (exact match).
    action:
        One of :data:`FAULT_ACTIONS`.
    at:
        1-based index of the first **matching** hit that fires (``at=2``
        lets the first hit pass and fires on the second).
    times:
        How many consecutive matching hits fire from *at* on; ``0`` means
        every hit from *at* onwards (a permanently broken step).
    worker_id:
        Only arm in the process installed with this worker id (``None``
        arms everywhere, including the router process).
    match:
        Extra equality filters against the keyword context a
        :func:`trip` call supplies — e.g. ``{"op": "close"}`` scopes a
        ``worker.before_wave`` rule to close waves only.
    """

    point: str
    action: str = "raise"
    at: int = 1
    times: int = 1
    worker_id: Optional[int] = None
    match: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.point:
            raise ValidationError("a FaultRule needs a non-empty point name")
        if self.action not in FAULT_ACTIONS:
            raise ValidationError(
                f"action must be one of {FAULT_ACTIONS}, got {self.action!r}"
            )
        if int(self.at) < 1:
            raise ValidationError(f"at must be >= 1, got {self.at}")
        if int(self.times) < 0:
            raise ValidationError(f"times must be >= 0, got {self.times}")
        object.__setattr__(self, "match", dict(self.match))

    def applies(self, worker_id: Optional[int], info: Mapping[str, Any]) -> bool:
        """Whether this rule listens to a hit in *worker_id* with *info*."""
        if self.worker_id is not None and self.worker_id != worker_id:
            return False
        return all(info.get(key) == value for key, value in self.match.items())

    def fires(self, hit: int) -> bool:
        """Whether the *hit*-th matching hit (1-based) triggers the action."""
        if hit < self.at:
            return False
        return self.times == 0 or hit < self.at + self.times


@dataclass(frozen=True)
class FaultPlan:
    """An immutable bundle of :class:`FaultRule`\\ s (picklable, fork-safe)."""

    rules: Tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise ValidationError(
                    f"FaultPlan rules must be FaultRule instances, got {rule!r}"
                )

    @classmethod
    def single(cls, point: str, **kwargs: Any) -> "FaultPlan":
        """Convenience: a plan with one rule (kwargs as for :class:`FaultRule`)."""
        return cls(rules=(FaultRule(point=point, **kwargs),))


class _ActivePlan:
    """Per-process installed state: the plan plus its private hit counters."""

    __slots__ = ("plan", "worker_id", "_hits", "_lock")

    def __init__(self, plan: FaultPlan, worker_id: Optional[int]) -> None:
        self.plan = plan
        self.worker_id = worker_id
        self._hits: Dict[int, int] = {}
        self._lock = threading.Lock()

    def trip(self, point: str, info: Mapping[str, Any]) -> None:
        for index, rule in enumerate(self.plan.rules):
            if rule.point != point or not rule.applies(self.worker_id, info):
                continue
            with self._lock:
                hit = self._hits.get(index, 0) + 1
                self._hits[index] = hit
            if rule.fires(hit):
                _fire(rule, point)


def _fire(rule: FaultRule, point: str) -> None:
    if rule.action == "exit":
        os._exit(_EXIT_CODE)
    if rule.action == "drop":
        raise ConnectionResetError(f"injected connection drop at {point!r}")
    raise FaultInjectedError(f"injected fault at {point!r}")


#: The one installed plan of this process (``None`` = seam disabled).
_active: Optional[_ActivePlan] = None


def install_plan(plan: FaultPlan, worker_id: Optional[int] = None) -> None:
    """Arm *plan* in this process (fresh hit counters; replaces any plan).

    ``worker_id`` identifies this process for ``FaultRule.worker_id``
    scoping — cluster workers pass their own id, tests installing in the
    router process usually pass ``None``.
    """
    global _active
    _active = _ActivePlan(plan, worker_id)


def clear_plan() -> None:
    """Disarm the seam in this process (idempotent)."""
    global _active
    _active = None


def active_plan() -> Optional[FaultPlan]:
    """The currently installed plan, or ``None``."""
    active = _active
    return None if active is None else active.plan


@contextmanager
def installed(plan: FaultPlan, worker_id: Optional[int] = None) -> Iterator[None]:
    """Context manager: arm *plan* for the block, disarm on exit.

    The test-side idiom — guarantees a plan installed in the test process
    never leaks into the next test.
    """
    install_plan(plan, worker_id)
    try:
        yield
    finally:
        clear_plan()


def trip(point: str, **info: Any) -> None:
    """Production-side hook: fire any armed rule listening on *point*.

    A no-op (one global load + ``is None`` check) when no plan is
    installed.  Keyword arguments become the context that
    ``FaultRule.match`` filters against.
    """
    active = _active
    if active is not None:
        active.trip(point, info)
