"""Category recipes for the synthetic COREL-like corpus.

Each category is a :class:`CategorySpec`: a named recipe combining a colour
palette, a dominant texture programme and a shape programme, plus per-image
jitter amplitudes.  The 50 categories reuse a smaller number of visual
archetypes (animals share earthy palettes and blob silhouettes, man-made
objects share geometric shapes, sceneries share gradients, ...) so that —
exactly as with the real COREL categories the paper uses — some categories
are easy to separate by low-level features and others overlap substantially.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import ValidationError
from repro.synth.palettes import Palette

__all__ = ["CategorySpec", "corel_category_specs", "COREL_CATEGORY_NAMES"]


@dataclass(frozen=True)
class CategorySpec:
    """Parametric recipe used to render every image of one category.

    Attributes
    ----------
    name:
        Human-readable category name (mirrors COREL category semantics).
    palette:
        HSV colour palette for backgrounds and foreground objects.
    texture:
        Texture programme: one of ``"noise"``, ``"sinusoid"``, ``"checker"``,
        ``"gradient"``.
    texture_scale:
        Texture frequency/scale parameter (cycles or base-grid size).
    texture_strength:
        Blend weight of the texture over the flat background colour.
    shape:
        Shape programme: one of ``"blob"``, ``"ellipse"``, ``"polygon"``,
        ``"stripes"``, ``"none"``.
    shape_count:
        Number of foreground shapes drawn per image.
    shape_scale:
        Typical normalised radius of each foreground shape.
    edge_contrast:
        Brightness offset of foreground objects against the background,
        controlling how strongly the Canny detector fires on their contours.
    jitter:
        Global geometric jitter (position/size variability) per image.
    """

    name: str
    palette: Palette
    texture: str = "noise"
    texture_scale: float = 4.0
    texture_strength: float = 0.5
    shape: str = "blob"
    shape_count: int = 2
    shape_scale: float = 0.25
    edge_contrast: float = 0.35
    jitter: float = 0.15

    _VALID_TEXTURES = ("noise", "sinusoid", "checker", "gradient")
    _VALID_SHAPES = ("blob", "ellipse", "polygon", "stripes", "none")

    def __post_init__(self) -> None:
        if self.texture not in self._VALID_TEXTURES:
            raise ValidationError(
                f"unknown texture '{self.texture}', expected one of {self._VALID_TEXTURES}"
            )
        if self.shape not in self._VALID_SHAPES:
            raise ValidationError(
                f"unknown shape '{self.shape}', expected one of {self._VALID_SHAPES}"
            )
        if self.shape_count < 0:
            raise ValidationError("shape_count must be non-negative")
        if not 0.0 <= self.texture_strength <= 1.0:
            raise ValidationError("texture_strength must be in [0, 1]")


def _palette(*anchors: Tuple[float, float, float], hue_jitter: float = 0.02) -> Palette:
    return Palette(anchors=tuple(anchors), hue_jitter=hue_jitter)


#: The 50 category names, ordered; the first 20 form the 20-Category dataset
#: (mirroring the paper's nesting of the two datasets drawn from COREL CDs).
COREL_CATEGORY_NAMES: Tuple[str, ...] = (
    "antique", "antelope", "aviation", "balloon", "botany",
    "butterfly", "car", "cat", "dog", "firework",
    "horse", "lizard", "sunset", "beach", "mountain",
    "flower", "fish", "architecture", "waterfall", "desert",
    "eagle", "elephant", "forest", "fruit", "glacier",
    "harbor", "island", "jewelry", "kangaroo", "lake",
    "lion", "model", "night_scene", "ocean", "orchid",
    "owl", "penguin", "pyramid", "rose", "sailboat",
    "ski", "stamp", "steam_train", "surfing", "texture_pattern",
    "tiger", "tulip", "waterfowl", "windmill", "zebra",
)


def _build_specs() -> Dict[str, CategorySpec]:
    """Build the full library of 50 category recipes."""
    specs: Dict[str, CategorySpec] = {}

    def add(name: str, **kwargs) -> None:
        specs[name] = CategorySpec(name=name, **kwargs)

    # --- animals: earthy/warm palettes, blob silhouettes, moderate noise ---
    add("antelope", palette=_palette((0.08, 0.55, 0.55), (0.10, 0.45, 0.70), (0.26, 0.40, 0.45)),
        texture="noise", texture_scale=5, texture_strength=0.45,
        shape="blob", shape_count=2, shape_scale=0.22, edge_contrast=0.30)
    add("horse", palette=_palette((0.06, 0.60, 0.45), (0.08, 0.50, 0.60), (0.30, 0.35, 0.50)),
        texture="noise", texture_scale=4, texture_strength=0.40,
        shape="blob", shape_count=1, shape_scale=0.30, edge_contrast=0.35)
    add("cat", palette=_palette((0.09, 0.35, 0.65), (0.05, 0.25, 0.80), (0.07, 0.45, 0.40)),
        texture="noise", texture_scale=6, texture_strength=0.50,
        shape="blob", shape_count=1, shape_scale=0.32, edge_contrast=0.28)
    add("dog", palette=_palette((0.07, 0.40, 0.55), (0.10, 0.30, 0.70), (0.33, 0.30, 0.45)),
        texture="noise", texture_scale=5, texture_strength=0.45,
        shape="blob", shape_count=1, shape_scale=0.30, edge_contrast=0.30)
    add("elephant", palette=_palette((0.08, 0.15, 0.45), (0.10, 0.20, 0.55), (0.25, 0.30, 0.40)),
        texture="noise", texture_scale=4, texture_strength=0.35,
        shape="blob", shape_count=1, shape_scale=0.38, edge_contrast=0.25)
    add("lion", palette=_palette((0.09, 0.65, 0.60), (0.11, 0.55, 0.70), (0.08, 0.45, 0.50)),
        texture="noise", texture_scale=5, texture_strength=0.50,
        shape="blob", shape_count=1, shape_scale=0.33, edge_contrast=0.32)
    add("tiger", palette=_palette((0.07, 0.75, 0.65), (0.09, 0.65, 0.70), (0.05, 0.60, 0.55)),
        texture="sinusoid", texture_scale=9, texture_strength=0.55,
        shape="blob", shape_count=1, shape_scale=0.34, edge_contrast=0.40)
    add("zebra", palette=_palette((0.0, 0.02, 0.85), (0.0, 0.05, 0.25), (0.25, 0.15, 0.60)),
        texture="sinusoid", texture_scale=11, texture_strength=0.70,
        shape="stripes", shape_count=1, shape_scale=0.30, edge_contrast=0.55)
    add("kangaroo", palette=_palette((0.07, 0.50, 0.50), (0.09, 0.40, 0.65), (0.12, 0.35, 0.55)),
        texture="noise", texture_scale=5, texture_strength=0.40,
        shape="blob", shape_count=2, shape_scale=0.25, edge_contrast=0.30)
    add("lizard", palette=_palette((0.28, 0.60, 0.45), (0.22, 0.55, 0.55), (0.17, 0.50, 0.50)),
        texture="noise", texture_scale=7, texture_strength=0.55,
        shape="blob", shape_count=1, shape_scale=0.28, edge_contrast=0.30)
    add("cat_family_owl", palette=_palette((0.08, 0.35, 0.45), (0.10, 0.30, 0.60), (0.06, 0.40, 0.35)),
        texture="noise", texture_scale=6, texture_strength=0.50,
        shape="ellipse", shape_count=2, shape_scale=0.24, edge_contrast=0.32)
    specs["owl"] = CategorySpec(
        name="owl", palette=specs["cat_family_owl"].palette, texture="noise",
        texture_scale=6, texture_strength=0.50, shape="ellipse", shape_count=2,
        shape_scale=0.24, edge_contrast=0.32)
    del specs["cat_family_owl"]
    add("penguin", palette=_palette((0.58, 0.30, 0.35), (0.0, 0.02, 0.90), (0.60, 0.45, 0.55)),
        texture="gradient", texture_scale=2, texture_strength=0.35,
        shape="ellipse", shape_count=3, shape_scale=0.20, edge_contrast=0.45)
    add("eagle", palette=_palette((0.55, 0.25, 0.75), (0.08, 0.45, 0.40), (0.58, 0.20, 0.85)),
        texture="gradient", texture_scale=2, texture_strength=0.30,
        shape="blob", shape_count=1, shape_scale=0.26, edge_contrast=0.40)
    add("waterfowl", palette=_palette((0.55, 0.45, 0.60), (0.52, 0.40, 0.50), (0.10, 0.30, 0.70)),
        texture="noise", texture_scale=4, texture_strength=0.35,
        shape="blob", shape_count=2, shape_scale=0.20, edge_contrast=0.35)
    add("fish", palette=_palette((0.55, 0.65, 0.55), (0.50, 0.60, 0.65), (0.02, 0.70, 0.75)),
        texture="noise", texture_scale=5, texture_strength=0.40,
        shape="ellipse", shape_count=3, shape_scale=0.18, edge_contrast=0.40)
    add("butterfly", palette=_palette((0.85, 0.65, 0.75), (0.12, 0.75, 0.80), (0.60, 0.55, 0.70)),
        texture="noise", texture_scale=6, texture_strength=0.40,
        shape="polygon", shape_count=2, shape_scale=0.24, edge_contrast=0.45)

    # --- plants / botany: green-dominant, organic shapes ---
    add("botany", palette=_palette((0.30, 0.60, 0.45), (0.26, 0.65, 0.55), (0.34, 0.50, 0.40)),
        texture="noise", texture_scale=7, texture_strength=0.55,
        shape="blob", shape_count=3, shape_scale=0.20, edge_contrast=0.25)
    add("forest", palette=_palette((0.31, 0.65, 0.35), (0.28, 0.60, 0.45), (0.35, 0.55, 0.30)),
        texture="noise", texture_scale=8, texture_strength=0.65,
        shape="none", shape_count=0, shape_scale=0.0, edge_contrast=0.20)
    add("flower", palette=_palette((0.92, 0.70, 0.80), (0.95, 0.60, 0.85), (0.30, 0.55, 0.45)),
        texture="noise", texture_scale=5, texture_strength=0.40,
        shape="polygon", shape_count=3, shape_scale=0.20, edge_contrast=0.40)
    add("rose", palette=_palette((0.98, 0.80, 0.65), (0.96, 0.75, 0.55), (0.30, 0.50, 0.40)),
        texture="noise", texture_scale=5, texture_strength=0.40,
        shape="blob", shape_count=2, shape_scale=0.25, edge_contrast=0.38)
    add("tulip", palette=_palette((0.95, 0.75, 0.75), (0.13, 0.80, 0.80), (0.32, 0.55, 0.45)),
        texture="gradient", texture_scale=2, texture_strength=0.30,
        shape="ellipse", shape_count=4, shape_scale=0.16, edge_contrast=0.42)
    add("orchid", palette=_palette((0.80, 0.45, 0.80), (0.83, 0.55, 0.75), (0.30, 0.40, 0.45)),
        texture="noise", texture_scale=4, texture_strength=0.35,
        shape="polygon", shape_count=2, shape_scale=0.22, edge_contrast=0.40)
    add("fruit", palette=_palette((0.02, 0.75, 0.80), (0.12, 0.80, 0.85), (0.30, 0.60, 0.55)),
        texture="gradient", texture_scale=2, texture_strength=0.25,
        shape="ellipse", shape_count=4, shape_scale=0.18, edge_contrast=0.40)

    # --- sceneries: smooth gradients, few edges, characteristic hues ---
    add("sunset", palette=_palette((0.04, 0.80, 0.85), (0.08, 0.70, 0.75), (0.95, 0.60, 0.65)),
        texture="gradient", texture_scale=1, texture_strength=0.70,
        shape="ellipse", shape_count=1, shape_scale=0.12, edge_contrast=0.25)
    add("beach", palette=_palette((0.55, 0.55, 0.80), (0.12, 0.35, 0.85), (0.52, 0.45, 0.70)),
        texture="gradient", texture_scale=1, texture_strength=0.55,
        shape="none", shape_count=0, shape_scale=0.0, edge_contrast=0.15)
    add("mountain", palette=_palette((0.58, 0.30, 0.60), (0.60, 0.20, 0.75), (0.30, 0.25, 0.45)),
        texture="noise", texture_scale=3, texture_strength=0.45,
        shape="polygon", shape_count=2, shape_scale=0.35, edge_contrast=0.35)
    add("waterfall", palette=_palette((0.55, 0.25, 0.80), (0.52, 0.35, 0.65), (0.32, 0.45, 0.40)),
        texture="sinusoid", texture_scale=7, texture_strength=0.45,
        shape="stripes", shape_count=1, shape_scale=0.25, edge_contrast=0.30)
    add("desert", palette=_palette((0.10, 0.55, 0.80), (0.09, 0.50, 0.70), (0.56, 0.45, 0.80)),
        texture="gradient", texture_scale=1, texture_strength=0.50,
        shape="none", shape_count=0, shape_scale=0.0, edge_contrast=0.15)
    add("glacier", palette=_palette((0.55, 0.15, 0.90), (0.58, 0.10, 0.85), (0.60, 0.25, 0.75)),
        texture="noise", texture_scale=3, texture_strength=0.35,
        shape="polygon", shape_count=2, shape_scale=0.30, edge_contrast=0.30)
    add("lake", palette=_palette((0.55, 0.50, 0.60), (0.53, 0.45, 0.55), (0.33, 0.40, 0.45)),
        texture="gradient", texture_scale=1, texture_strength=0.45,
        shape="none", shape_count=0, shape_scale=0.0, edge_contrast=0.18)
    add("ocean", palette=_palette((0.57, 0.70, 0.55), (0.55, 0.65, 0.60), (0.58, 0.55, 0.70)),
        texture="sinusoid", texture_scale=5, texture_strength=0.40,
        shape="none", shape_count=0, shape_scale=0.0, edge_contrast=0.18)
    add("island", palette=_palette((0.50, 0.60, 0.65), (0.30, 0.55, 0.50), (0.55, 0.50, 0.75)),
        texture="noise", texture_scale=4, texture_strength=0.40,
        shape="blob", shape_count=1, shape_scale=0.30, edge_contrast=0.28)
    add("night_scene", palette=_palette((0.65, 0.55, 0.20), (0.62, 0.45, 0.30), (0.13, 0.60, 0.70)),
        texture="noise", texture_scale=6, texture_strength=0.40,
        shape="ellipse", shape_count=4, shape_scale=0.08, edge_contrast=0.50)
    add("firework", palette=_palette((0.0, 0.0, 0.08), (0.95, 0.85, 0.80), (0.15, 0.85, 0.85)),
        texture="noise", texture_scale=8, texture_strength=0.30,
        shape="polygon", shape_count=4, shape_scale=0.14, edge_contrast=0.65)

    # --- man-made: saturated palettes, geometric shapes, strong edges ---
    add("antique", palette=_palette((0.09, 0.45, 0.55), (0.07, 0.55, 0.45), (0.11, 0.35, 0.65)),
        texture="checker", texture_scale=6, texture_strength=0.30,
        shape="polygon", shape_count=2, shape_scale=0.26, edge_contrast=0.40)
    add("aviation", palette=_palette((0.56, 0.45, 0.80), (0.58, 0.35, 0.85), (0.0, 0.05, 0.80)),
        texture="gradient", texture_scale=1, texture_strength=0.35,
        shape="ellipse", shape_count=2, shape_scale=0.22, edge_contrast=0.50)
    add("balloon", palette=_palette((0.98, 0.75, 0.85), (0.15, 0.80, 0.85), (0.55, 0.60, 0.85)),
        texture="gradient", texture_scale=1, texture_strength=0.30,
        shape="ellipse", shape_count=3, shape_scale=0.22, edge_contrast=0.50)
    add("car", palette=_palette((0.0, 0.75, 0.70), (0.62, 0.65, 0.60), (0.0, 0.05, 0.70)),
        texture="checker", texture_scale=4, texture_strength=0.25,
        shape="polygon", shape_count=2, shape_scale=0.28, edge_contrast=0.50)
    add("architecture", palette=_palette((0.10, 0.20, 0.70), (0.08, 0.15, 0.60), (0.55, 0.30, 0.70)),
        texture="checker", texture_scale=8, texture_strength=0.45,
        shape="polygon", shape_count=3, shape_scale=0.30, edge_contrast=0.45)
    add("harbor", palette=_palette((0.56, 0.50, 0.60), (0.07, 0.40, 0.60), (0.0, 0.05, 0.75)),
        texture="sinusoid", texture_scale=6, texture_strength=0.35,
        shape="polygon", shape_count=3, shape_scale=0.22, edge_contrast=0.45)
    add("jewelry", palette=_palette((0.13, 0.55, 0.90), (0.0, 0.02, 0.95), (0.58, 0.40, 0.85)),
        texture="noise", texture_scale=6, texture_strength=0.30,
        shape="ellipse", shape_count=4, shape_scale=0.12, edge_contrast=0.55)
    add("model", palette=_palette((0.05, 0.35, 0.80), (0.95, 0.30, 0.75), (0.08, 0.25, 0.70)),
        texture="gradient", texture_scale=1, texture_strength=0.30,
        shape="blob", shape_count=1, shape_scale=0.32, edge_contrast=0.35)
    add("pyramid", palette=_palette((0.11, 0.55, 0.75), (0.10, 0.50, 0.65), (0.56, 0.40, 0.80)),
        texture="noise", texture_scale=3, texture_strength=0.35,
        shape="polygon", shape_count=1, shape_scale=0.38, edge_contrast=0.45)
    add("sailboat", palette=_palette((0.56, 0.60, 0.70), (0.0, 0.03, 0.90), (0.58, 0.50, 0.60)),
        texture="gradient", texture_scale=1, texture_strength=0.40,
        shape="polygon", shape_count=2, shape_scale=0.24, edge_contrast=0.50)
    add("ski", palette=_palette((0.58, 0.10, 0.92), (0.55, 0.15, 0.85), (0.60, 0.45, 0.70)),
        texture="noise", texture_scale=3, texture_strength=0.30,
        shape="polygon", shape_count=2, shape_scale=0.20, edge_contrast=0.40)
    add("stamp", palette=_palette((0.13, 0.50, 0.80), (0.90, 0.55, 0.75), (0.45, 0.50, 0.70)),
        texture="checker", texture_scale=10, texture_strength=0.40,
        shape="polygon", shape_count=1, shape_scale=0.36, edge_contrast=0.45)
    add("steam_train", palette=_palette((0.0, 0.05, 0.30), (0.05, 0.40, 0.40), (0.08, 0.20, 0.55)),
        texture="noise", texture_scale=5, texture_strength=0.45,
        shape="polygon", shape_count=2, shape_scale=0.28, edge_contrast=0.40)
    add("surfing", palette=_palette((0.55, 0.70, 0.65), (0.53, 0.60, 0.75), (0.0, 0.04, 0.90)),
        texture="sinusoid", texture_scale=6, texture_strength=0.45,
        shape="ellipse", shape_count=1, shape_scale=0.16, edge_contrast=0.40)
    add("texture_pattern", palette=_palette((0.45, 0.50, 0.60), (0.75, 0.45, 0.55), (0.20, 0.55, 0.65)),
        texture="checker", texture_scale=12, texture_strength=0.80,
        shape="stripes", shape_count=1, shape_scale=0.25, edge_contrast=0.50)
    add("windmill", palette=_palette((0.56, 0.40, 0.80), (0.30, 0.45, 0.55), (0.0, 0.04, 0.85)),
        texture="gradient", texture_scale=1, texture_strength=0.35,
        shape="polygon", shape_count=3, shape_scale=0.22, edge_contrast=0.50)

    return specs


_SPEC_LIBRARY = _build_specs()


def corel_category_specs(num_categories: int = 20) -> List[CategorySpec]:
    """Return the first *num_categories* category recipes.

    The first 20 names form the 20-Category dataset and the full 50 form the
    50-Category dataset, mirroring the two COREL subsets in the paper.
    """
    if not 1 <= num_categories <= len(COREL_CATEGORY_NAMES):
        raise ValidationError(
            f"num_categories must be in [1, {len(COREL_CATEGORY_NAMES)}], got {num_categories}"
        )
    return [_SPEC_LIBRARY[name] for name in COREL_CATEGORY_NAMES[:num_categories]]
