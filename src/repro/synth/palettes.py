"""Colour palettes for the synthetic category recipes.

A palette is a small set of HSV anchor colours plus jitter amplitudes.  Each
rendered image samples its dominant colours from its category palette, which
is what makes the 9-dimensional HSV colour-moment feature cluster by
category while still overlapping between visually similar categories
(e.g. "horse" and "antelope" share earthy palettes, like in COREL).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.imaging.color import hsv_to_rgb
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["Palette", "sample_palette_color"]


@dataclass(frozen=True)
class Palette:
    """A category colour palette in HSV space.

    Attributes
    ----------
    anchors:
        Sequence of ``(h, s, v)`` anchor colours with components in ``[0, 1]``.
    hue_jitter, saturation_jitter, value_jitter:
        Standard deviation of the Gaussian jitter applied per sample.
    """

    anchors: Tuple[Tuple[float, float, float], ...]
    hue_jitter: float = 0.02
    saturation_jitter: float = 0.08
    value_jitter: float = 0.08

    def __post_init__(self) -> None:
        if not self.anchors:
            raise ValidationError("a palette needs at least one anchor colour")
        for anchor in self.anchors:
            if len(anchor) != 3:
                raise ValidationError(f"palette anchors must be (h, s, v), got {anchor}")

    def sample_hsv(self, rng: np.random.Generator, count: int = 1) -> np.ndarray:
        """Sample *count* jittered HSV colours from the palette."""
        anchors = np.asarray(self.anchors, dtype=np.float64)
        indices = rng.integers(0, len(anchors), size=count)
        base = anchors[indices]
        jitter = np.stack(
            [
                rng.normal(0.0, self.hue_jitter, size=count),
                rng.normal(0.0, self.saturation_jitter, size=count),
                rng.normal(0.0, self.value_jitter, size=count),
            ],
            axis=1,
        )
        sampled = base + jitter
        sampled[:, 0] = np.mod(sampled[:, 0], 1.0)
        sampled[:, 1:] = np.clip(sampled[:, 1:], 0.0, 1.0)
        return sampled

    def sample_rgb(self, rng: np.random.Generator, count: int = 1) -> np.ndarray:
        """Sample *count* jittered colours converted to RGB."""
        hsv = self.sample_hsv(rng, count)
        # hsv_to_rgb expects an image-shaped array; use a 1-pixel-high image.
        rgb = hsv_to_rgb(hsv[None, :, :])[0]
        return rgb


def sample_palette_color(
    palette: Palette, random_state: RandomState = None
) -> Tuple[float, float, float]:
    """Convenience helper returning a single RGB colour from *palette*."""
    rng = ensure_rng(random_state)
    rgb = palette.sample_rgb(rng, 1)[0]
    return float(rgb[0]), float(rgb[1]), float(rgb[2])
