"""Procedural texture fields for the synthetic corpus.

Textures control the wavelet-entropy feature: smooth gradients yield low
sub-band entropy, band-limited sinusoids concentrate energy at particular
scales/orientations, and value noise produces broadband texture.  Each
category recipe mixes these primitives with characteristic frequencies.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import RandomState, ensure_rng

__all__ = [
    "sinusoidal_texture",
    "noise_texture",
    "checkerboard_texture",
    "gradient_texture",
]


def _grid(height: int, width: int) -> tuple[np.ndarray, np.ndarray]:
    if height < 1 or width < 1:
        raise ValidationError(f"texture size must be positive, got {(height, width)}")
    ys = np.linspace(0.0, 1.0, height, endpoint=False)
    xs = np.linspace(0.0, 1.0, width, endpoint=False)
    return np.meshgrid(ys, xs, indexing="ij")


def sinusoidal_texture(
    height: int,
    width: int,
    *,
    frequency: float = 6.0,
    orientation: float = 0.0,
    phase: float = 0.0,
) -> np.ndarray:
    """A sinusoidal grating in ``[0, 1]`` with the given frequency/orientation.

    Parameters
    ----------
    frequency:
        Number of cycles across the image.
    orientation:
        Grating orientation in radians (0 = vertical stripes).
    phase:
        Phase offset in radians.
    """
    yy, xx = _grid(height, width)
    axis = np.cos(orientation) * xx + np.sin(orientation) * yy
    wave = np.sin(2.0 * np.pi * frequency * axis + phase)
    return 0.5 * (wave + 1.0)


def noise_texture(
    height: int,
    width: int,
    *,
    scale: int = 4,
    octaves: int = 3,
    random_state: RandomState = None,
) -> np.ndarray:
    """Multi-octave value noise in ``[0, 1]``.

    Coarse random grids are upsampled bilinearly and summed with halving
    amplitudes, producing natural-looking blotchy texture whose roughness is
    controlled by *scale* (base grid resolution) and *octaves*.
    """
    if scale < 1 or octaves < 1:
        raise ValidationError("scale and octaves must be >= 1")
    rng = ensure_rng(random_state)
    result = np.zeros((height, width), dtype=np.float64)
    amplitude = 1.0
    total_amplitude = 0.0
    for octave in range(octaves):
        grid_size = max(scale * (2**octave), 2)
        coarse = rng.random((grid_size, grid_size))
        result += amplitude * _bilinear_upsample(coarse, height, width)
        total_amplitude += amplitude
        amplitude *= 0.5
    result /= total_amplitude
    low, high = result.min(), result.max()
    if high - low < 1e-12:
        return np.full_like(result, 0.5)
    return (result - low) / (high - low)


def _bilinear_upsample(grid: np.ndarray, height: int, width: int) -> np.ndarray:
    """Bilinearly resample *grid* to ``(height, width)``."""
    src_h, src_w = grid.shape
    ys = np.linspace(0.0, src_h - 1.0, height)
    xs = np.linspace(0.0, src_w - 1.0, width)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, src_h - 1)
    x1 = np.minimum(x0 + 1, src_w - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]
    top = grid[np.ix_(y0, x0)] * (1.0 - wx) + grid[np.ix_(y0, x1)] * wx
    bottom = grid[np.ix_(y1, x0)] * (1.0 - wx) + grid[np.ix_(y1, x1)] * wx
    return top * (1.0 - wy) + bottom * wy


def checkerboard_texture(height: int, width: int, *, cells: int = 8) -> np.ndarray:
    """A checkerboard pattern in ``{0, 1}`` with *cells* cells per side."""
    if cells < 1:
        raise ValidationError(f"cells must be >= 1, got {cells}")
    yy, xx = _grid(height, width)
    board = (np.floor(yy * cells) + np.floor(xx * cells)) % 2
    return board.astype(np.float64)


def gradient_texture(height: int, width: int, *, orientation: float = 0.0) -> np.ndarray:
    """A smooth linear gradient in ``[0, 1]`` along *orientation* radians."""
    yy, xx = _grid(height, width)
    axis = np.cos(orientation) * xx + np.sin(orientation) * yy
    low, high = axis.min(), axis.max()
    if high - low < 1e-12:
        return np.full((height, width), 0.5)
    return (axis - low) / (high - low)
