"""Procedural shape rasterisers for the synthetic corpus.

Shapes control the edge-direction-histogram feature: ellipses produce smooth
distributions over all directions, polygons concentrate edge energy at their
side orientations, stripes produce strongly peaked histograms, and random
blobs produce irregular contours.  Each function returns a boolean mask that
the generator fills with a palette colour.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["draw_ellipse", "draw_polygon", "draw_blob", "draw_stripes"]


def _pixel_grid(height: int, width: int) -> Tuple[np.ndarray, np.ndarray]:
    if height < 1 or width < 1:
        raise ValidationError(f"shape canvas must be positive, got {(height, width)}")
    ys = np.arange(height, dtype=np.float64)[:, None] / max(height - 1, 1)
    xs = np.arange(width, dtype=np.float64)[None, :] / max(width - 1, 1)
    yy = np.broadcast_to(ys, (height, width))
    xx = np.broadcast_to(xs, (height, width))
    return yy, xx


def draw_ellipse(
    height: int,
    width: int,
    *,
    center: Tuple[float, float] = (0.5, 0.5),
    radii: Tuple[float, float] = (0.3, 0.2),
    rotation: float = 0.0,
) -> np.ndarray:
    """Boolean mask of an ellipse given in normalised image coordinates."""
    if min(radii) <= 0:
        raise ValidationError(f"ellipse radii must be positive, got {radii}")
    yy, xx = _pixel_grid(height, width)
    dy = yy - center[0]
    dx = xx - center[1]
    cos_r, sin_r = np.cos(rotation), np.sin(rotation)
    u = cos_r * dx + sin_r * dy
    v = -sin_r * dx + cos_r * dy
    return (u / radii[1]) ** 2 + (v / radii[0]) ** 2 <= 1.0


def draw_polygon(
    height: int,
    width: int,
    vertices: Sequence[Tuple[float, float]],
) -> np.ndarray:
    """Boolean mask of a filled polygon (vertices in normalised ``(y, x)``).

    Uses the even-odd (ray casting) rule evaluated vectorially over the pixel
    grid, which is robust for the small convex/star polygons the generator
    draws.
    """
    points = np.asarray(vertices, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2 or points.shape[0] < 3:
        raise ValidationError("a polygon needs at least three (y, x) vertices")
    yy, xx = _pixel_grid(height, width)
    inside = np.zeros((height, width), dtype=bool)
    count = points.shape[0]
    for i in range(count):
        y1, x1 = points[i]
        y2, x2 = points[(i + 1) % count]
        crosses = (yy < y1) != (yy < y2)
        denom = np.where(np.abs(y2 - y1) < 1e-12, 1e-12, y2 - y1)
        x_at_y = x1 + (yy - y1) / denom * (x2 - x1)
        inside ^= crosses & (xx < x_at_y)
    return inside


def draw_blob(
    height: int,
    width: int,
    *,
    center: Tuple[float, float] = (0.5, 0.5),
    mean_radius: float = 0.28,
    irregularity: float = 0.35,
    lobes: int = 5,
    random_state: RandomState = None,
) -> np.ndarray:
    """Boolean mask of an irregular star-convex blob.

    The blob boundary radius is modulated by a random low-order Fourier
    series around the circle, producing organic silhouettes (animals, plants)
    rather than geometric ones.
    """
    if mean_radius <= 0:
        raise ValidationError(f"mean_radius must be positive, got {mean_radius}")
    rng = ensure_rng(random_state)
    yy, xx = _pixel_grid(height, width)
    dy = yy - center[0]
    dx = xx - center[1]
    radius = np.hypot(dy, dx)
    angle = np.arctan2(dy, dx)

    boundary = np.full_like(angle, mean_radius)
    for order in range(1, max(lobes, 1) + 1):
        amplitude = irregularity * mean_radius * rng.normal(0.0, 1.0) / order
        phase = rng.uniform(0.0, 2.0 * np.pi)
        boundary = boundary + amplitude * np.cos(order * angle + phase)
    boundary = np.maximum(boundary, 0.05 * mean_radius)
    return radius <= boundary


def draw_stripes(
    height: int,
    width: int,
    *,
    count: int = 6,
    orientation: float = 0.0,
    duty_cycle: float = 0.5,
) -> np.ndarray:
    """Boolean mask of parallel stripes covering *duty_cycle* of each period."""
    if count < 1:
        raise ValidationError(f"count must be >= 1, got {count}")
    if not 0.0 < duty_cycle < 1.0:
        raise ValidationError(f"duty_cycle must be in (0, 1), got {duty_cycle}")
    yy, xx = _pixel_grid(height, width)
    axis = np.cos(orientation) * xx + np.sin(orientation) * yy
    phase = np.mod(axis * count, 1.0)
    return phase < duty_cycle
