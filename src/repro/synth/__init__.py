"""Procedural COREL-like corpus generator.

The original paper evaluates on subsets of the COREL image CDs (20 and 50
semantic categories, 100 images each).  COREL is proprietary and unavailable
here, so this package synthesises a corpus with the same *statistical
structure*: each category is defined by a parametric recipe (hue palette,
procedural texture, shape program) and every image is an independently
jittered render of its category recipe.  Under the paper's colour-moment /
edge-histogram / wavelet-texture features the categories form noisy,
partially overlapping clusters — which is the only property the relevance
feedback algorithms actually depend on.
"""

from __future__ import annotations

from repro.synth.categories import CategorySpec, corel_category_specs
from repro.synth.generator import CorelLikeGenerator
from repro.synth.palettes import Palette, sample_palette_color
from repro.synth.shapes import draw_blob, draw_ellipse, draw_polygon, draw_stripes
from repro.synth.textures import (
    checkerboard_texture,
    gradient_texture,
    noise_texture,
    sinusoidal_texture,
)

__all__ = [
    "CategorySpec",
    "corel_category_specs",
    "CorelLikeGenerator",
    "Palette",
    "sample_palette_color",
    "sinusoidal_texture",
    "noise_texture",
    "checkerboard_texture",
    "gradient_texture",
    "draw_ellipse",
    "draw_polygon",
    "draw_blob",
    "draw_stripes",
]
