"""Renderer turning :class:`CategorySpec` recipes into images.

The generator draws, for each image: a background filled with a palette
colour blended with the category texture, plus a small number of foreground
shapes filled with contrasting palette colours.  All geometric and photometric
parameters receive per-image jitter so images within a category are similar
but never identical, and categories sharing archetypes overlap in feature
space — the property the relevance-feedback experiments rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.exceptions import ValidationError
from repro.imaging.image import Image
from repro.synth.categories import CategorySpec
from repro.synth.shapes import draw_blob, draw_ellipse, draw_polygon, draw_stripes
from repro.synth.textures import (
    checkerboard_texture,
    gradient_texture,
    noise_texture,
    sinusoidal_texture,
)
from repro.utils.rng import RandomState, ensure_rng

__all__ = ["CorelLikeGenerator"]


class CorelLikeGenerator:
    """Render synthetic COREL-like images from category recipes.

    Parameters
    ----------
    image_size:
        Side length in pixels of the square images produced.
    random_state:
        Seed or generator controlling every random decision of the renderer.
    """

    def __init__(self, *, image_size: int = 48, random_state: RandomState = None) -> None:
        if image_size < 16:
            raise ValidationError(f"image_size must be >= 16, got {image_size}")
        self.image_size = int(image_size)
        self._rng = ensure_rng(random_state)

    # ------------------------------------------------------------------ API
    def generate_image(
        self,
        spec: CategorySpec,
        *,
        image_id: Optional[int] = None,
        category: Optional[int] = None,
    ) -> Image:
        """Render a single image for category recipe *spec*."""
        pixels = self._render(spec)
        return Image(
            pixels=pixels,
            image_id=image_id,
            category=category,
            category_name=spec.name,
        )

    def generate_category(
        self,
        spec: CategorySpec,
        count: int,
        *,
        category: Optional[int] = None,
        start_id: int = 0,
    ) -> List[Image]:
        """Render *count* images of one category."""
        if count < 1:
            raise ValidationError(f"count must be >= 1, got {count}")
        return [
            self.generate_image(spec, image_id=start_id + index, category=category)
            for index in range(count)
        ]

    def generate_corpus(
        self, specs: Sequence[CategorySpec], images_per_category: int
    ) -> List[Image]:
        """Render a full corpus: *images_per_category* images for every spec."""
        corpus: List[Image] = []
        for category_index, spec in enumerate(specs):
            corpus.extend(
                self.generate_category(
                    spec,
                    images_per_category,
                    category=category_index,
                    start_id=len(corpus),
                )
            )
        return corpus

    # ------------------------------------------------------------ rendering
    def _render(self, spec: CategorySpec) -> np.ndarray:
        size = self.image_size
        rng = self._rng

        background_rgb = spec.palette.sample_rgb(rng, 1)[0]
        texture = self._render_texture(spec, rng)
        strength = float(
            np.clip(spec.texture_strength + rng.normal(0.0, 0.1 * spec.jitter), 0.0, 1.0)
        )

        # Background = flat palette colour modulated by the grayscale texture.
        canvas = np.empty((size, size, 3), dtype=np.float64)
        modulation = 1.0 - strength + strength * texture
        for channel in range(3):
            canvas[..., channel] = background_rgb[channel] * modulation

        # Foreground shapes with contrasting palette colours.
        shape_count = self._jittered_count(spec.shape_count, rng, spec.jitter)
        for _ in range(shape_count):
            mask = self._render_shape(spec, rng)
            if mask is None or not mask.any():
                continue
            fg_rgb = spec.palette.sample_rgb(rng, 1)[0]
            contrast = spec.edge_contrast * (1.0 + rng.normal(0.0, spec.jitter))
            fg_rgb = np.clip(fg_rgb + np.sign(rng.normal()) * contrast, 0.0, 1.0)
            canvas[mask] = 0.25 * canvas[mask] + 0.75 * fg_rgb

        # Global photometric jitter (illumination) plus mild pixel noise.
        gain = 1.0 + rng.normal(0.0, 0.08 * (1.0 + spec.jitter))
        bias = rng.normal(0.0, 0.04)
        canvas = canvas * gain + bias
        canvas += rng.normal(0.0, 0.015, size=canvas.shape)
        return np.clip(canvas, 0.0, 1.0)

    def _render_texture(self, spec: CategorySpec, rng: np.random.Generator) -> np.ndarray:
        size = self.image_size
        scale_jitter = 1.0 + rng.normal(0.0, spec.jitter)
        scale = max(spec.texture_scale * scale_jitter, 1.0)
        orientation = rng.uniform(0.0, np.pi)
        if spec.texture == "noise":
            return noise_texture(
                size, size, scale=max(int(round(scale)), 2), octaves=3, random_state=rng
            )
        if spec.texture == "sinusoid":
            return sinusoidal_texture(
                size, size, frequency=scale, orientation=orientation,
                phase=rng.uniform(0.0, 2.0 * np.pi),
            )
        if spec.texture == "checker":
            return checkerboard_texture(size, size, cells=max(int(round(scale)), 2))
        # "gradient"
        return gradient_texture(size, size, orientation=orientation)

    def _render_shape(
        self, spec: CategorySpec, rng: np.random.Generator
    ) -> Optional[np.ndarray]:
        size = self.image_size
        if spec.shape == "none":
            return None
        center = (
            float(np.clip(0.5 + rng.normal(0.0, spec.jitter), 0.15, 0.85)),
            float(np.clip(0.5 + rng.normal(0.0, spec.jitter), 0.15, 0.85)),
        )
        scale = max(spec.shape_scale * (1.0 + rng.normal(0.0, spec.jitter)), 0.05)
        if spec.shape == "blob":
            return draw_blob(
                size, size, center=center, mean_radius=scale,
                irregularity=0.35, lobes=5, random_state=rng,
            )
        if spec.shape == "ellipse":
            aspect = rng.uniform(0.5, 1.0)
            return draw_ellipse(
                size, size, center=center,
                radii=(scale, scale * aspect), rotation=rng.uniform(0.0, np.pi),
            )
        if spec.shape == "polygon":
            sides = int(rng.integers(3, 7))
            angles = np.sort(rng.uniform(0.0, 2.0 * np.pi, size=sides))
            radii = scale * rng.uniform(0.7, 1.0, size=sides)
            vertices = [
                (center[0] + r * np.sin(a), center[1] + r * np.cos(a))
                for r, a in zip(radii, angles)
            ]
            return draw_polygon(size, size, vertices)
        # "stripes"
        return draw_stripes(
            size, size,
            count=max(int(round(4 + 8 * scale)), 2),
            orientation=rng.uniform(0.0, np.pi),
            duty_cycle=float(np.clip(rng.normal(0.5, 0.1), 0.2, 0.8)),
        )

    @staticmethod
    def _jittered_count(base: int, rng: np.random.Generator, jitter: float) -> int:
        if base <= 0:
            return 0
        delta = int(rng.integers(-1, 2)) if jitter > 0.1 else 0
        return max(base + delta, 0)
