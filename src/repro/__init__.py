"""repro — log-based relevance feedback by coupled SVM for CBIR.

A from-scratch reproduction of Hoi, Lyu & Jin, *"Integrating User Feedback
Log into Relevance Feedback by Coupled SVM for Content-Based Image
Retrieval"* (ICDE 2005): the coupled support vector machine, the LRF-CSVM
relevance-feedback algorithm, every baseline it is compared against, and all
the substrates the evaluation needs (synthetic COREL-like corpus, feature
extraction, an SMO-based SVM, the user-feedback log database, a CBIR engine
and the evaluation harness).

Quick start (the session-oriented service API)::

    from repro import (
        CorelDatasetConfig, build_corel_dataset, collect_feedback_log,
        ImageDatabase, RetrievalService,
    )

    dataset = build_corel_dataset(CorelDatasetConfig(num_categories=20,
                                                     images_per_category=20))
    log = collect_feedback_log(dataset)
    database = ImageDatabase(dataset, log_database=log)
    service = RetrievalService(database, default_algorithm="lrf-csvm")
    initial = service.open_session(0, top_k=20)
    refined = service.submit_feedback(
        initial.session_id,
        {int(i): (+1 if dataset.category_of(int(i)) ==
                  dataset.category_of(0) else -1)
         for i in initial.image_indices})
    service.close_session(initial.session_id)   # rounds land in the log

(:class:`CBIREngine` remains as a deprecated single-session adapter over
the service.)
"""

from __future__ import annotations

from repro.cbir import CBIREngine, ImageDatabase, Query, RetrievalResult, SearchEngine
from repro.cluster import ClusterConfig, ClusterRouter, ClusterWorker
from repro.core import CoupledSVM, CoupledSVMConfig, LRFCSVM
from repro.datasets import (
    CorelDatasetConfig,
    FeatureCache,
    ImageDataset,
    QuerySampler,
    build_corel_dataset,
)
from repro.evaluation import (
    EvaluationProtocol,
    ExperimentRunner,
    ProtocolConfig,
    ResultsTable,
    render_improvement_table,
    render_series,
)
from repro.exceptions import ReproError
from repro.feedback import (
    EuclideanFeedback,
    FeedbackContext,
    LRF2SVMs,
    RelevanceFeedbackAlgorithm,
    RFSVM,
    available_algorithms,
    make_algorithm,
)
from repro.features import CompositeExtractor, FeatureNormalizer
from repro.graph import (
    AffinityGraph,
    GraphCache,
    KNNGraphBuilder,
    LabelPropagationFeedback,
)
from repro.index import (
    BruteForceIndex,
    IVFIndex,
    KDTreeIndex,
    LSHIndex,
    ShardedVectorIndex,
    VectorIndex,
    available_indexes,
    make_index,
)
from repro.logdb import (
    FileLogStore,
    InMemoryLogStore,
    LogDatabase,
    LogSession,
    LogSimulationConfig,
    LogSnapshot,
    LogStore,
    RelevanceMatrix,
    SimulatedUser,
    available_log_stores,
    collect_feedback_log,
    make_log_store,
)
from repro.service import (
    FeedbackRequest,
    FileSessionStore,
    InMemorySessionStore,
    MicroBatchScheduler,
    ParallelScheduler,
    RankingResponse,
    RetrievalService,
    SearchRequest,
    SessionState,
    SessionStore,
    SessionView,
)
from repro.svm import SVC
from repro.version import __version__

__all__ = [
    "__version__",
    "ReproError",
    # datasets
    "ImageDataset",
    "CorelDatasetConfig",
    "build_corel_dataset",
    "FeatureCache",
    "QuerySampler",
    # features
    "CompositeExtractor",
    "FeatureNormalizer",
    # svm
    "SVC",
    # log database
    "LogSession",
    "LogDatabase",
    "LogSnapshot",
    "LogStore",
    "InMemoryLogStore",
    "FileLogStore",
    "make_log_store",
    "available_log_stores",
    "RelevanceMatrix",
    "SimulatedUser",
    "LogSimulationConfig",
    "collect_feedback_log",
    # cbir
    "ImageDatabase",
    "SearchEngine",
    "Query",
    "RetrievalResult",
    "CBIREngine",
    # index
    "VectorIndex",
    "BruteForceIndex",
    "KDTreeIndex",
    "LSHIndex",
    "IVFIndex",
    "ShardedVectorIndex",
    "make_index",
    "available_indexes",
    # core contribution
    "CoupledSVM",
    "CoupledSVMConfig",
    "LRFCSVM",
    # baselines
    "RelevanceFeedbackAlgorithm",
    "FeedbackContext",
    "EuclideanFeedback",
    "RFSVM",
    "LRF2SVMs",
    "make_algorithm",
    "available_algorithms",
    # graph feedback family
    "AffinityGraph",
    "KNNGraphBuilder",
    "GraphCache",
    "LabelPropagationFeedback",
    # service
    "RetrievalService",
    "SearchRequest",
    "FeedbackRequest",
    "RankingResponse",
    "SessionView",
    "SessionState",
    "SessionStore",
    "InMemorySessionStore",
    "FileSessionStore",
    "MicroBatchScheduler",
    "ParallelScheduler",
    # cluster
    "ClusterConfig",
    "ClusterRouter",
    "ClusterWorker",
    # evaluation
    "ProtocolConfig",
    "EvaluationProtocol",
    "ExperimentRunner",
    "ResultsTable",
    "render_improvement_table",
    "render_series",
]
