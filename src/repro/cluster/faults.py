"""The cluster tier's fault-point catalogue (re-exporting the seam).

The injection machinery itself lives in :mod:`repro.utils.faults` (it has
no dependencies, so the service and store layers can trip points without
importing the cluster package).  This module is the cluster-facing entry:
it re-exports the seam and names every point the serving stack trips, so
tests build plans against documented constants instead of free strings.

Fault points, by protocol step
------------------------------

**Durable close protocol** (see ``docs/cluster.md``), in execution order —
each one is a distinct crash window the protocol must survive:

========================== ====================================================
``CLOSE_BEFORE_INTENT``    close wave validated, nothing persisted yet
``STORE_AFTER_INTENT``     per session, right after its intent file commits
``CLOSE_BEFORE_FLUSH``     intents durable, log flush not started (the old
                           delete-to-flush loss window now sits *behind*
                           the intent)
``CLOSE_AFTER_FLUSH``      log records committed, sessions still stored
``STORE_BEFORE_DELETE``    per session, right before its state is deleted
``CLOSE_AFTER_DELETE``     per session, state gone, intent still present
``STORE_BEFORE_INTENT_CLEAR`` per session, right before its intent clears
========================== ====================================================

**Worker wave execution:**

========================== ====================================================
``WORKER_BEFORE_WAVE``     envelope received, service not yet called
                           (``match={"op": ...}`` scopes to one op)
``WORKER_MID_WAVE``        service call committed, response not yet sent —
                           the classic "work done, reply lost" window
========================== ====================================================

**Router and transport:**

========================== ====================================================
``ROUTER_BEFORE_SHIP``     wave grouped and booked outstanding, not yet sent
``STORE_BEFORE_PUT``       per session-state write (any op that persists)
``TRANSPORT_SOCKET_DROP``  inside socket send/recv (``match={"side": ...}``
                           scopes to the router or worker end)
========================== ====================================================

The ``"exit"`` action at any of these points is the deterministic
equivalent of a SIGKILL landing exactly there; the fault-matrix test in
``tests/test_cluster_fault_matrix.py`` walks the full protocol-step ×
fault-point grid and asserts exactly-once log records at every cell.
"""

from __future__ import annotations

from repro.utils.faults import (
    FAULT_ACTIONS,
    FaultPlan,
    FaultRule,
    active_plan,
    clear_plan,
    install_plan,
    installed,
    trip,
)

__all__ = [
    "FaultPlan",
    "FaultRule",
    "FAULT_ACTIONS",
    "install_plan",
    "clear_plan",
    "active_plan",
    "installed",
    "trip",
    "CLOSE_BEFORE_INTENT",
    "CLOSE_BEFORE_FLUSH",
    "CLOSE_AFTER_FLUSH",
    "CLOSE_AFTER_DELETE",
    "STORE_BEFORE_PUT",
    "STORE_BEFORE_DELETE",
    "STORE_AFTER_INTENT",
    "STORE_BEFORE_INTENT_CLEAR",
    "WORKER_BEFORE_WAVE",
    "WORKER_MID_WAVE",
    "ROUTER_BEFORE_SHIP",
    "TRANSPORT_SOCKET_DROP",
    "ALL_POINTS",
]

# --- durable close protocol (service layer) -------------------------------
CLOSE_BEFORE_INTENT = "close.before_intent_write"
CLOSE_BEFORE_FLUSH = "close.before_log_flush"
CLOSE_AFTER_FLUSH = "close.after_log_flush"
CLOSE_AFTER_DELETE = "close.after_delete"

# --- session store commit points ------------------------------------------
STORE_BEFORE_PUT = "store.before_put"
STORE_BEFORE_DELETE = "store.before_delete"
STORE_AFTER_INTENT = "store.after_intent_write"
STORE_BEFORE_INTENT_CLEAR = "store.before_intent_clear"

# --- worker wave execution -------------------------------------------------
WORKER_BEFORE_WAVE = "worker.before_wave"
WORKER_MID_WAVE = "worker.mid_wave_kill"

# --- router dispatch and transport ----------------------------------------
ROUTER_BEFORE_SHIP = "router.before_ship"
TRANSPORT_SOCKET_DROP = "transport.socket_drop"

#: Every named point, in rough protocol order (the matrix test iterates it).
ALL_POINTS = (
    ROUTER_BEFORE_SHIP,
    TRANSPORT_SOCKET_DROP,
    WORKER_BEFORE_WAVE,
    CLOSE_BEFORE_INTENT,
    STORE_AFTER_INTENT,
    CLOSE_BEFORE_FLUSH,
    CLOSE_AFTER_FLUSH,
    STORE_BEFORE_DELETE,
    CLOSE_AFTER_DELETE,
    STORE_BEFORE_INTENT_CLEAR,
    STORE_BEFORE_PUT,
    WORKER_MID_WAVE,
)
