"""Sharded scatter-gather serving: one logical service over N processes.

The :mod:`repro.cluster` package turns the single-process
:class:`~repro.service.RetrievalService` into a multi-process cluster
without changing the client surface:

* :class:`~repro.cluster.messages.ClusterConfig` — one frozen config
  object describing the fleet (worker count, shared store directories,
  index backend, coalescing window, failure policy).
* :class:`~repro.cluster.worker.ClusterWorker` /
  :func:`~repro.cluster.worker.run_worker` — each worker process hosts a
  complete service stack over the shared on-disk session and log stores
  and serves request waves from a queue pair.
* :class:`~repro.cluster.router.ClusterRouter` — the front-end: shards
  sessions over workers by rendezvous hashing, coalesces concurrent
  per-call clients into batched waves, and reconciles worker deaths
  against the shared stores so every feedback round applies exactly once.

The companion index backend — process-internal sharding with a
bit-identical scatter-gather merge — lives in
:class:`repro.index.ShardedVectorIndex`; the two compose (workers shard
the *sessions*, the index shards the *pool*).  See ``docs/cluster.md``
for topology, failure semantics and the soak benchmark.
"""

from repro.cluster.messages import (
    ClusterConfig,
    ItemOutcome,
    WorkerRequest,
    WorkerResponse,
)
from repro.cluster.router import ClusterRouter
from repro.cluster.worker import ClusterWorker, build_worker_service, run_worker

__all__ = [
    "ClusterConfig",
    "ClusterRouter",
    "ClusterWorker",
    "ItemOutcome",
    "WorkerRequest",
    "WorkerResponse",
    "build_worker_service",
    "run_worker",
]
