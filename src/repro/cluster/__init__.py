"""Sharded scatter-gather serving: one logical service over N processes.

The :mod:`repro.cluster` package turns the single-process
:class:`~repro.service.RetrievalService` into a multi-process cluster
without changing the client surface:

* :class:`~repro.cluster.messages.ClusterConfig` — one frozen config
  object describing the fleet (worker count, shared store directories,
  index backend, coalescing window, transport, stealing and failure
  policy).
* :class:`~repro.cluster.worker.ClusterWorker` /
  :func:`~repro.cluster.worker.run_worker` — each worker process hosts a
  complete service stack over the shared on-disk session and log stores
  and serves request waves from a queue pair — or, with
  ``transport="socket"``, over the length-prefixed TCP framing of
  :mod:`repro.cluster.transport`.
* :class:`~repro.cluster.router.ClusterRouter` — the front-end: shards
  sessions over workers by rendezvous hashing
  (:func:`~repro.cluster.router.rendezvous_owner`), coalesces concurrent
  per-call clients into batched waves, steals work off saturated workers
  when ``steal_threshold`` is set, and reconciles worker deaths against
  the shared stores so every feedback round — and every close — applies
  exactly once.
* :mod:`repro.cluster.faults` — the deterministic fault-injection seam
  (:class:`~repro.utils.faults.FaultPlan` rules armed at named protocol
  points) that the chaos and fault-matrix tests drive.

The companion index backend — process-internal sharding with a
bit-identical scatter-gather merge — lives in
:class:`repro.index.ShardedVectorIndex`; the two compose (workers shard
the *sessions*, the index shards the *pool*).  See ``docs/cluster.md``
for topology, failure semantics and the soak benchmark.
"""

from repro.cluster.faults import ALL_POINTS
from repro.cluster.messages import (
    TRANSPORTS,
    ClusterConfig,
    ItemOutcome,
    WorkerRequest,
    WorkerResponse,
)
from repro.cluster.router import ClusterRouter, rendezvous_owner
from repro.cluster.worker import ClusterWorker, build_worker_service, run_worker
from repro.utils.faults import FaultPlan, FaultRule

__all__ = [
    "ALL_POINTS",
    "ClusterConfig",
    "ClusterRouter",
    "ClusterWorker",
    "FaultPlan",
    "FaultRule",
    "ItemOutcome",
    "TRANSPORTS",
    "WorkerRequest",
    "WorkerResponse",
    "build_worker_service",
    "rendezvous_owner",
    "run_worker",
]
