"""Typed wire messages and configuration of the cluster serving tier.

Router and workers speak a tiny envelope protocol over one
``multiprocessing.Queue`` pair per worker: a :class:`WorkerRequest` carries
one operation code plus a tuple of per-item payloads (the service's own
frozen DTOs — :class:`~repro.service.dtos.SearchRequest`,
:class:`~repro.service.dtos.FeedbackRequest`, session-id strings), and the
worker answers with a :class:`WorkerResponse` of per-item
:class:`ItemOutcome` envelopes.  Outcomes are **per item** even though the
worker serves the batch through the service's wave APIs: when a wave aborts
(one bad request fails service-side batch validation), the worker falls
back to serving the items individually, so one client's malformed round can
never fail an innocent session that merely coalesced into the same wave.

Everything on the wire is picklable by construction — the DTOs are frozen
dataclasses over numpy arrays and primitives, and failures travel as the
library's own exception instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional, Tuple, Union

from repro.exceptions import ValidationError
from repro.service.service import LOG_POLICIES, SCHEDULERS
from repro.utils.faults import FaultPlan

__all__ = [
    "ClusterConfig",
    "WorkerRequest",
    "WorkerResponse",
    "ItemOutcome",
    "TRANSPORTS",
    "OP_OPEN",
    "OP_FEEDBACK",
    "OP_CLOSE",
    "OP_VIEW",
    "OP_LAST",
    "OP_DISCARD",
    "OP_RECOVER",
    "OP_STATS",
    "OP_PING",
    "OP_SHUTDOWN",
]

PathLike = Union[str, Path]

#: Operation codes of the router→worker protocol.
OP_OPEN = "open"
OP_FEEDBACK = "feedback"
OP_CLOSE = "close"
OP_VIEW = "view"
OP_LAST = "last"
OP_DISCARD = "discard"
OP_RECOVER = "recover"
OP_STATS = "stats"
OP_PING = "ping"
OP_SHUTDOWN = "shutdown"

_ALL_OPS = (
    OP_OPEN,
    OP_FEEDBACK,
    OP_CLOSE,
    OP_VIEW,
    OP_LAST,
    OP_DISCARD,
    OP_RECOVER,
    OP_STATS,
    OP_PING,
    OP_SHUTDOWN,
)

#: Transport choices: ``queue`` is the default local ``mp.Queue`` pair,
#: ``socket`` a length-prefixed TCP framing (see :mod:`repro.cluster.transport`)
#: that generalises to workers on other hosts.
TRANSPORTS = ("queue", "socket")


@dataclass(frozen=True)
class ClusterConfig:
    """Everything a :class:`~repro.cluster.router.ClusterRouter` needs.

    Attributes
    ----------
    session_dir, log_dir:
        Directories of the **shared** :class:`~repro.service.FileSessionStore`
        and :class:`~repro.logdb.FileLogStore`.  Every worker mounts both, so
        any worker can serve (and recover) any session — workers hold no
        per-session state of their own.
    num_workers:
        Worker processes to spawn.
    index:
        Registry name of the index each worker builds over the pool
        (``sharded`` composes naturally: processes shard the sessions,
        the index shards the pool).
    index_params:
        Constructor parameters for that index backend.
    default_algorithm, log_policy, distance, scheduler:
        Forwarded to each worker's :class:`~repro.service.RetrievalService`.
    session_ttl, sweep_interval:
        TTL configuration of the shared session store (the sweep throttle
        matters under load — see :class:`~repro.service.SessionStore`).
    coalesce_window:
        Seconds the router's dispatcher lingers after the first queued
        request before shipping a wave, so concurrent per-call clients
        coalesce into batched worker waves (the cluster's main throughput
        lever).  ``0.0`` dispatches immediately.
    max_wave:
        Maximum requests shipped per dispatch cycle.
    request_timeout:
        Seconds a client call waits for its worker response before raising
        :class:`~repro.exceptions.ClusterTimeoutError` (the no-hang bound).
    retry_limit:
        How many times a client call is retried/re-routed after a worker
        death before the error surfaces.
    auto_restart:
        Whether the monitor respawns dead workers.
    poll_interval:
        Seconds between the monitor's liveness sweeps.
    observability:
        Enable the :mod:`repro.obs` hub inside each worker process (the
        router instruments itself against the ambient hub regardless).
    transport:
        One of :data:`TRANSPORTS`.  ``queue`` (default) wires each worker
        over a local ``multiprocessing.Queue`` pair; ``socket`` runs the
        same envelope protocol over a length-prefixed TCP connection —
        identical client surface and failure types, but the seam workers
        on other hosts would attach through.
    steal_threshold:
        Work stealing: when a worker's in-flight item count reaches this
        threshold, further waves routed to it divert to a shared overflow
        queue that under-loaded workers drain (session affinity is only
        a placement preference — state lives in the shared store, so any
        worker serves any session correctly).  ``0`` (default) disables
        stealing.
    fault_plan:
        Deterministic fault injection (tests only): a
        :class:`~repro.utils.faults.FaultPlan` installed inside every
        worker process with its worker id, arming the named fault points
        of :mod:`repro.cluster.faults`.  ``None`` disables the seam.
    debug_feedback_delay:
        Test hook: seconds each worker sleeps before serving a feedback
        wave, giving crash tests a deterministic in-flight window.  Leave
        at ``0.0`` in production.
    """

    session_dir: PathLike
    log_dir: PathLike
    num_workers: int = 2
    index: str = "brute-force"
    index_params: Mapping[str, Any] = field(default_factory=dict)
    default_algorithm: str = "lrf-csvm"
    log_policy: str = "on_close"
    distance: str = "euclidean"
    scheduler: str = "micro-batch"
    session_ttl: Optional[float] = None
    sweep_interval: float = 0.0
    coalesce_window: float = 0.003
    max_wave: int = 64
    request_timeout: float = 30.0
    retry_limit: int = 2
    auto_restart: bool = False
    poll_interval: float = 0.05
    observability: bool = False
    transport: str = "queue"
    steal_threshold: int = 0
    fault_plan: Optional[FaultPlan] = None
    debug_feedback_delay: float = 0.0

    def __post_init__(self) -> None:
        if int(self.num_workers) < 1:
            raise ValidationError(
                f"num_workers must be >= 1, got {self.num_workers}"
            )
        if self.log_policy not in LOG_POLICIES:
            raise ValidationError(
                f"log_policy must be one of {LOG_POLICIES}, got {self.log_policy!r}"
            )
        if self.scheduler not in SCHEDULERS:
            raise ValidationError(
                f"scheduler must be one of {SCHEDULERS}, got {self.scheduler!r}"
            )
        if self.coalesce_window < 0:
            raise ValidationError(
                f"coalesce_window must be >= 0, got {self.coalesce_window}"
            )
        if int(self.max_wave) < 1:
            raise ValidationError(f"max_wave must be >= 1, got {self.max_wave}")
        if self.request_timeout <= 0:
            raise ValidationError(
                f"request_timeout must be positive, got {self.request_timeout}"
            )
        if int(self.retry_limit) < 0:
            raise ValidationError(
                f"retry_limit must be >= 0, got {self.retry_limit}"
            )
        if self.poll_interval <= 0:
            raise ValidationError(
                f"poll_interval must be positive, got {self.poll_interval}"
            )
        if self.transport not in TRANSPORTS:
            raise ValidationError(
                f"transport must be one of {TRANSPORTS}, got {self.transport!r}"
            )
        if int(self.steal_threshold) < 0:
            raise ValidationError(
                f"steal_threshold must be >= 0, got {self.steal_threshold}"
            )
        if self.fault_plan is not None and not isinstance(self.fault_plan, FaultPlan):
            raise ValidationError(
                f"fault_plan must be a FaultPlan or None, got {self.fault_plan!r}"
            )
        object.__setattr__(self, "index_params", dict(self.index_params))


@dataclass(frozen=True)
class WorkerRequest:
    """One router→worker envelope: an operation over a tuple of payloads."""

    request_id: int
    op: str
    items: Tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        if self.op not in _ALL_OPS:
            raise ValidationError(f"unknown cluster op {self.op!r}")


@dataclass(frozen=True)
class ItemOutcome:
    """One payload's result: ``value`` is a response DTO, or the exception
    the service raised for it when ``ok`` is ``False``."""

    ok: bool
    value: Any = None


@dataclass(frozen=True)
class WorkerResponse:
    """One worker→router envelope: per-item outcomes, aligned with the
    request's payload order."""

    request_id: int
    outcomes: Tuple[ItemOutcome, ...]
